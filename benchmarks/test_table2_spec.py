"""Table II — SPEC CPU2017 applications and their regions of interest.

Regenerates the provenance table and benchmarks simulating one SPEC
proxy end to end on both core models.
"""

from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.simulator import SnipeSim
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_PROFILES, get_spec_benchmark


def test_table2_rows(benchmark):
    def build_table():
        rows = []
        by_name = {p.name: p for p in SPEC_PROFILES}
        for wl in SPEC_BENCHMARKS:
            profile = by_name[wl.name]
            rows.append([
                wl.name,
                f"{profile.paper_file}, line {profile.paper_line}",
                profile.paper_instructions,
                len(wl.trace()),
            ])
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(render_table(
        ["benchmark", "paper ROI (file, line)", "paper instr.", "ours (scaled)"],
        rows,
        title="Table II — SPEC CPU2017 workloads",
    ))
    assert len(rows) == 11


def test_spec_simulation_throughput_inorder(benchmark):
    trace = get_spec_benchmark("gcc").trace()
    sim = SnipeSim(cortex_a53_public_config())
    stats = benchmark(lambda: sim.run(trace))
    assert stats.instructions == len(trace)


def test_spec_simulation_throughput_ooo(benchmark):
    trace = get_spec_benchmark("gcc").trace()
    sim = SnipeSim(cortex_a72_public_config())
    stats = benchmark(lambda: sim.run(trace))
    assert stats.instructions == len(trace)
