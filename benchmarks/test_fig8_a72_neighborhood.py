"""Figure 8 — close-to-optimum but inaccurate A72 parameter settings.

Paper: the controlled one-step deviation triples the out-of-order
model's average error (15% -> ~45%).
"""

from benchmarks.neighborhood_common import run_neighborhood_study
from repro.analysis.figures import bar_chart
from repro.analysis.metrics import summarize_errors


def test_fig8_near_optimum_damage(board, a72_campaign, benchmark):
    result = benchmark.pedantic(
        lambda: run_neighborhood_study(board, "a72", a72_campaign, seed=8),
        rounds=1,
        iterations=1,
    )
    print()
    print(bar_chart(
        result.per_benchmark,
        title="Figure 8 — CPI error, near-optimum-but-wrong A72 parameters",
        clip=1.0,
    ))
    print(result.summary())
    summary = summarize_errors(result.per_benchmark)

    assert result.worst_mean_error > 1.8 * result.tuned_mean_error
    assert summary.mean > 1.8 * a72_campaign.tuned_mean_error
    assert len(result.deviated_params) >= 3
