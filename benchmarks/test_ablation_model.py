"""Ablations on the simulator model (§IV design choices).

1. **Contention model** — §IV-A argues dual-issue pairing rules matter;
   removing them inflates predicted throughput on execution kernels.
2. **Decoder-library bug** — §IV-B's Capstone finding: lost FP source
   operands silently deflate dependence-bound CPI.
3. **Simulator throughput** — the speed/abstraction trade-off that makes
   racing affordable at all.
"""

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.simulator import SnipeSim
from repro.workloads.microbench import get_microbenchmark


def test_dual_issue_pairing_rules_matter(benchmark):
    """Interleaved integer-multiply and FP work: the A53-style pairing
    restriction (no MUL-class + FP-class in one issue cycle) caps this
    mix at one instruction per cycle; dropping the rule doubles it."""
    from repro.frontend.builder import ProgramBuilder
    from repro.frontend.interpreter import trace_program
    from repro.frontend.program import PatternTaken
    from repro.isa.opclasses import OpClass
    from repro.isa.registers import fp_reg, int_reg

    b = ProgramBuilder("mul-fp-mix")
    b.label("top")
    for k in range(6):
        b.op(OpClass.IMUL, int_reg(6 + k % 4), int_reg(1), int_reg(2))
        b.op(OpClass.FPALU, fp_reg(2 + k % 4), fp_reg(0), fp_reg(1))
    b.branch("top", PatternTaken("T" * 99 + "N"), cond_reg=int_reg(2))
    trace = trace_program(b.build())
    config = cortex_a53_public_config()

    def run_both():
        with_rules = SnipeSim(config).run(trace).cpi
        without = SnipeSim(
            config.with_updates({"pipeline.dual_issue_rules": False})
        ).run(trace).cpi
        return with_rules, without

    with_rules, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nIMUL/FP mix CPI with pairing rules {with_rules:.3f}, without {without:.3f}")
    assert with_rules > 1.3 * without  # ignoring contention flatters the core


def test_decoder_bug_deflates_dependent_fp(benchmark):
    from repro.frontend.builder import ProgramBuilder
    from repro.frontend.interpreter import trace_program
    from repro.frontend.program import PatternTaken
    from repro.isa.opclasses import OpClass
    from repro.isa.registers import fp_reg, int_reg

    b = ProgramBuilder("fp-chain-bench")
    b.label("top")
    for _ in range(10):
        b.op(OpClass.FPALU, fp_reg(1), fp_reg(0), fp_reg(1))
    b.branch("top", PatternTaken("T" * 99 + "N"), cond_reg=int_reg(2))
    trace = trace_program(b.build())
    config = cortex_a53_public_config()

    def run_both():
        return (
            SnipeSim(config, decoder=Decoder()).run(trace).cpi,
            SnipeSim(config, decoder=BuggyDecoder()).run(trace).cpi,
        )

    correct, buggy = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nFP-chain CPI: correct decoder {correct:.2f}, buggy decoder {buggy:.2f}")
    assert buggy < 0.5 * correct


def test_inorder_simulation_throughput(benchmark):
    trace = get_microbenchmark("MIP").trace()
    sim = SnipeSim(cortex_a53_public_config())
    stats = benchmark(lambda: sim.run(trace))
    assert stats.cycles > 0


def test_ooo_simulation_throughput(benchmark):
    trace = get_microbenchmark("MIP").trace()
    sim = SnipeSim(cortex_a72_public_config())
    stats = benchmark(lambda: sim.run(trace))
    assert stats.cycles > 0
