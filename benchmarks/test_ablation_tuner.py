"""Ablations on the tuner itself (§III-C design choices).

1. **Budget scaling** — more trials, lower error (the paper's 10K vs
   100K budget trade-off, scaled down).
2. **Racing vs random search** — statistical elimination spends the
   same budget better than uniform random sampling.
"""

import random

from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config
from repro.hardware.lmbench import apply_latency_estimates, lat_mem_rd
from repro.simulator import SnipeSim
from repro.tuning import IraceTuner
from repro.tuning.cost import cpi_error
from repro.tuning.sampling import ConfigSampler
from repro.validation.steps import inorder_param_space
from repro.workloads.microbench import get_microbenchmark

WORKLOADS = ["ED1", "EM1", "EF", "MD", "ML2", "MC", "CCh", "CCe", "CS1",
             "STc", "STL2b", "DPT"]


def _make_evaluator(board):
    base = apply_latency_estimates(
        cortex_a53_public_config(), lat_mem_rd(board.a53, 32 * 1024, 512 * 1024)
    )
    traces = {name: get_microbenchmark(name).trace() for name in WORKLOADS}
    hw = {name: board.a53.measure(t) for name, t in traces.items()}

    def evaluate(assignment, instance):
        config = base.with_updates(assignment)
        return min(cpi_error(SnipeSim(config).run(traces[instance]), hw[instance]), 3.0)

    return base, evaluate


def test_budget_scaling(board, benchmark):
    base, evaluate = _make_evaluator(board)
    space = inorder_param_space(stage=2)
    initial = space.default_assignment(base.flatten())

    def sweep():
        results = {}
        for budget in (150, 400, 900):
            tuner = IraceTuner(space, evaluate, instances=WORKLOADS, budget=budget,
                               seed=21, first_test=4, initial_assignments=[initial])
            results[budget] = tuner.run().best_cost
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["trial budget", "best mean CPI error"],
        [[b, f"{c:.3f}"] for b, c in results.items()],
        title="Ablation — tuning error vs irace budget (paper runs 10K-100K)",
    ))
    budgets = sorted(results)
    # The largest budget must beat the smallest; mid-size may tie.
    assert results[budgets[-1]] <= results[budgets[0]]


def test_racing_beats_random_search(board, benchmark):
    base, evaluate = _make_evaluator(board)
    space = inorder_param_space(stage=2)
    budget = 500
    initial = space.default_assignment(base.flatten())

    def random_search():
        """Uniform sampling, same budget, mean cost over a 5-instance probe."""
        rng = random.Random(33)
        sampler = ConfigSampler(space, seed=33)
        probe = WORKLOADS[:5]
        best, best_cost = None, float("inf")
        trials = 0
        while trials + len(probe) <= budget:
            assignment = sampler.sample_config()
            cost = sum(evaluate(assignment, w) for w in probe) / len(probe)
            trials += len(probe)
            if cost < best_cost:
                best, best_cost = assignment, cost
        del rng
        return sum(evaluate(best, w) for w in WORKLOADS) / len(WORKLOADS)

    def raced():
        tuner = IraceTuner(space, evaluate, instances=WORKLOADS, budget=budget,
                           seed=33, first_test=4, initial_assignments=[initial])
        return tuner.run().best_cost

    random_cost = benchmark.pedantic(random_search, rounds=1, iterations=1)
    raced_cost = raced()
    print(f"\nrandom search: {random_cost:.3f}   iterated racing: {raced_cost:.3f} "
          f"(budget {budget} trials each)")
    assert raced_cost < random_cost
