"""Figure 6 — tuned A72 model vs hardware on SPEC CPU2017.

Paper: 15% average absolute CPI error, a couple of outliers near 30%
(more than half the benchmarks under 10%); the out-of-order model is
harder to validate than the in-order one.
"""

from benchmarks.conftest import spec_errors
from repro.analysis.figures import bar_chart
from repro.analysis.metrics import summarize_errors


def test_fig6_spec_errors(board, a53_campaign, a72_campaign, benchmark):
    errors = benchmark.pedantic(
        lambda: spec_errors(board, "a72", a72_campaign.final_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(bar_chart(
        errors,
        title="Figure 6 — absolute CPI error, tuned Cortex-A72 model (paper: 15% avg)",
        clip=0.5,
    ))
    summary = summarize_errors(errors)
    a53_errors = spec_errors(board, "a53", a53_campaign.final_config)
    a53_mean = sum(a53_errors.values()) / len(a53_errors)
    print(f"=> {summary} (tuned A53 mean for comparison: {a53_mean:.1%})")

    assert summary.mean < 0.22          # paper: 0.15
    assert summary.maximum < 0.45       # paper outliers ~0.30
    # The OoO model validates worse than the in-order one (paper 15 vs 7).
    assert summary.mean > a53_mean
    # More than a third of the benchmarks should sit under 10% error.
    assert sum(1 for e in errors.values() if e < 0.10) >= 4
