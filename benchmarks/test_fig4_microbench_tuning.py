"""Figure 4 — micro-benchmark CPI error before and after tuning (A53).

The paper's shape: the untuned public-information model averages ~50%
error with multi-x outliers (ED1 at 5.6x; our uninitialised-array
kernels are even larger); staged tuning plus the step-5 model fixes
(indirect predictor, GHB options, array initialisation) bring the
average to ~10%.
"""

from repro.analysis.figures import paired_bar_chart
from repro.analysis.metrics import error_reduction_factor, summarize_errors


def test_fig4_before_after(board, a53_campaign, benchmark):
    result = a53_campaign

    # The benchmarked unit: regenerating the tuned-model error series.
    from repro.validation.campaign import ValidationCampaign

    campaign = ValidationCampaign(board, core="a53", profile="fast", seed=1)
    campaign.workload_overrides = {"MM": {"initialized": True},
                                   "M_Dyn": {"initialized": True}}
    series = benchmark.pedantic(
        lambda: campaign.evaluate(result.final_config), rounds=1, iterations=1
    )

    print()
    print(paired_bar_chart(
        result.untuned_errors,
        result.final_errors,
        title="Figure 4 — CPI error per micro-benchmark, A53 (not tuned vs tuned)",
    ))
    untuned = summarize_errors(result.untuned_errors)
    tuned = summarize_errors(result.final_errors)
    print(f"\nuntuned: {untuned}")
    print(f"tuned:   {tuned}")
    print(f"reduction factor: {error_reduction_factor(result.untuned_errors, result.final_errors):.1f}x")

    # Shape assertions (paper: ~50% -> ~10%, a >=4x reduction).
    assert untuned.mean > 0.30
    assert tuned.mean < 0.20
    assert tuned.mean < untuned.mean / 4
    # The untuned model must show at least one multi-x outlier (ED1-like).
    assert untuned.maximum > 1.0
    # Stage 1 cannot fix the anomalies stage 2's model fixes address.
    stage1 = result.stages[0]
    stage2 = result.stages[1]
    assert sum(stage2.errors.values()) < sum(stage1.errors.values())
    assert series  # regenerated series is non-empty
