"""Figure 2 — the iterated-racing loop itself.

Races a mid-size parameter space against the board and prints the
per-iteration telemetry (candidates sampled, trials spent, best cost,
survivors) — the sample/race/update cycle the figure sketches. Shape
assertions: the race eliminates candidates, and the final cost improves
substantially on the best-guess starting point.
"""

from repro.core.config import cortex_a53_public_config
from repro.hardware.lmbench import apply_latency_estimates, lat_mem_rd
from repro.simulator import SnipeSim
from repro.tuning import IraceTuner
from repro.tuning.cost import cpi_error
from repro.validation.steps import inorder_param_space
from repro.workloads.microbench import get_microbenchmark

WORKLOADS = ["ED1", "EM1", "EF", "MD", "ML2", "MC", "CCh", "CCe", "CS1",
             "STc", "STL2b", "DPT", "DP1d", "M_Dyn"]


def test_irace_convergence(board, benchmark):
    base = apply_latency_estimates(
        cortex_a53_public_config(), lat_mem_rd(board.a53, 32 * 1024, 512 * 1024)
    )
    space = inorder_param_space(stage=2)
    traces = {name: get_microbenchmark(name).trace() for name in WORKLOADS}
    measurements = {name: board.a53.measure(t) for name, t in traces.items()}

    def evaluate(assignment, instance):
        config = base.with_updates(assignment)
        return min(cpi_error(SnipeSim(config).run(traces[instance]), measurements[instance]), 3.0)

    initial = space.default_assignment(base.flatten())

    def tune():
        tuner = IraceTuner(
            space, evaluate, instances=WORKLOADS, budget=700, seed=9,
            first_test=5, initial_assignments=[initial],
        )
        return tuner.run()

    result = benchmark.pedantic(tune, rounds=1, iterations=1)

    print()
    print("Figure 2 — iterated racing telemetry")
    print(result.summary())

    initial_cost = sum(evaluate(initial, w) for w in WORKLOADS) / len(WORKLOADS)
    print(f"best-guess cost {initial_cost:.3f} -> tuned {result.best_cost:.3f}")
    assert result.best_cost < 0.6 * initial_cost
    assert result.total_evaluations <= 700 + len(WORKLOADS) * (len(result.history) + 3)
    assert len(result.history) >= 3
