"""Figure 7 — close-to-optimum but inaccurate A53 parameter settings.

Paper: deviating parameters by a single candidate step from the tuned
optimum (several simultaneously) quadruples the average error (7% ->
34%, individual applications up to 67%). Shape assertion: the worst
near-optimum configuration is several-fold worse than the tuned one.
"""

from benchmarks.neighborhood_common import run_neighborhood_study
from repro.analysis.figures import bar_chart
from repro.analysis.metrics import summarize_errors


def test_fig7_near_optimum_damage(board, a53_campaign, benchmark):
    result = benchmark.pedantic(
        lambda: run_neighborhood_study(board, "a53", a53_campaign, seed=7),
        rounds=1,
        iterations=1,
    )
    print()
    print(bar_chart(
        result.per_benchmark,
        title="Figure 7 — CPI error, near-optimum-but-wrong A53 parameters",
        clip=1.0,
    ))
    print(result.summary())
    summary = summarize_errors(result.per_benchmark)

    # Paper shape: worst-neighbourhood error several times the tuned one.
    assert result.worst_mean_error > 2.0 * result.tuned_mean_error
    assert summary.mean > 2.0 * a53_campaign.tuned_mean_error
    assert len(result.deviated_params) >= 3
