"""Table I — the 40 targeted micro-benchmarks.

Regenerates the table (name, category, paper dynamic instruction count,
our scaled count) and benchmarks the record-once trace path, whose
speed is what makes "evaluating tens of thousands of configurations
within a span of a few hours" possible (§III-B).
"""

from repro.analysis.tables import render_table
from repro.frontend.interpreter import trace_program
from repro.workloads.microbench import ALL_MICROBENCHMARKS, get_microbenchmark


def test_table1_rows(benchmark):
    def build_table():
        rows = []
        for wl in ALL_MICROBENCHMARKS:
            trace = wl.trace()
            rows.append([wl.name, wl.category, wl.paper_instructions, len(trace)])
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(render_table(
        ["benchmark", "category", "paper dyn. instr.", "ours (scaled)"],
        rows,
        title="Table I — micro-benchmark suite",
    ))
    assert len(rows) == 40
    categories = {row[1] for row in rows}
    assert categories == {"memory", "control", "dataparallel", "execution", "store"}


def test_trace_recording_throughput(benchmark):
    """DynamoRIO-substitute speed: dynamic instructions traced per second."""
    workload = get_microbenchmark("MIM")  # the largest kernel
    program = workload.program()

    result = benchmark(lambda: trace_program(program, max_instructions=12_000))
    assert len(result) > 5_000
