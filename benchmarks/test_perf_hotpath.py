"""Hot-path throughput benchmarks (the `repro bench` suite via pytest).

Drives the perf layer's deterministic quick scenarios through
pytest-benchmark so the simulator/trace/engine throughput trajectory is
measured alongside the paper's tables and figures. `repro bench`
remains the canonical recorder (it writes ``BENCH_<host>.json``); this
file makes regressions visible inside the benchmark suite itself.
"""

from __future__ import annotations

from repro.bench import run_scenario


def _bench_scenario(benchmark, scn):
    record = benchmark.pedantic(
        lambda: run_scenario(scn, repeats=1), rounds=1, iterations=1
    )
    assert record["instructions"] > 0
    rate = record["instructions_per_second"]
    print(f"\n{scn.name}: {rate:,.0f} instructions/s "
          f"({record['instructions']} instr in "
          f"{record['wall_seconds'] * 1e3:.1f} ms)")
    return record


def test_table1_inorder_throughput(benchmark, perf_scenarios):
    """Table-I kernels on the in-order (A53) core, steady state."""
    _bench_scenario(benchmark, perf_scenarios["table1-a53-quick"])


def test_table1_ooo_throughput(benchmark, perf_scenarios):
    """Table-I kernels on the out-of-order (A72) core, steady state."""
    _bench_scenario(benchmark, perf_scenarios["table1-a72-quick"])


def test_trace_recording_throughput(benchmark, perf_scenarios):
    """Front-end (interpreter) dynamic-instruction recording rate."""
    _bench_scenario(benchmark, perf_scenarios["trace-record-quick"])


def test_engine_batch_caching(benchmark, perf_scenarios):
    """Engine batch throughput; the warm resubmission must be all hits."""
    record = _bench_scenario(benchmark, perf_scenarios["engine-batch-quick"])
    telemetry = record["telemetry"]
    assert telemetry["unique_trials"] * 2 == telemetry["requested_trials"]
    assert telemetry["sim_cache_hits"] == telemetry["unique_trials"]
