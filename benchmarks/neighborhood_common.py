"""Shared machinery for the Figures 7/8 near-optimum worst-case benches."""

from __future__ import annotations

from repro.engine import EvaluationEngine
from repro.validation.neighborhood import worst_near_optimum
from repro.validation.steps import param_space_for
from repro.workloads.microbench import ALL_MICROBENCHMARKS

#: Probe sub-suite for the (expensive) search phases; the final report
#: is produced over the full suite.
PROBE = ["ED1", "EM1", "EF", "MD", "ML2", "MC", "CCh", "CCe", "CS1",
         "STc", "STL2b", "DPT", "ML2_BWld", "MM"]

#: The campaign's step-5 array-initialisation fix stays applied.
OVERRIDES = {"MM": {"initialized": True}, "M_Dyn": {"initialized": True}}

#: Per-probe cost saturation (matches the campaign's outlier guard).
SATURATION = 3.0


def run_neighborhood_study(board, core_name, campaign_result, seed=0, jobs=1):
    """Execute the Figures 7/8 experiment for one core."""
    final_config = campaign_result.final_config
    space = param_space_for(final_config.core_type, stage=2)
    tuned_assignment = campaign_result.stages[-1].irace.best_assignment

    engine = EvaluationEngine(
        hw=board.core(core_name),
        workloads=ALL_MICROBENCHMARKS,
        overrides=dict(OVERRIDES),
        jobs=jobs,
    )

    def mean_error_batch(assignments):
        """Phase-1 block scoring: all candidates x probes in one batch."""
        configs = [final_config.with_updates(a) for a in assignments]
        pairs = [(config, name) for config in configs for name in PROBE]
        costs = engine.evaluate_batch(pairs)
        n = len(PROBE)
        return [
            sum(min(c, SATURATION) for c in costs[i * n:(i + 1) * n]) / n
            for i in range(len(configs))
        ]

    def mean_error(assignment):
        return mean_error_batch([assignment])[0]

    def per_benchmark(assignment):
        config = final_config.with_updates(assignment)
        names = [wl.name for wl in ALL_MICROBENCHMARKS]
        costs = engine.evaluate_batch([(config, name) for name in names])
        return dict(zip(names, costs))

    try:
        return worst_near_optimum(
            space,
            tuned_assignment,
            mean_error,
            per_benchmark_error=per_benchmark,
            random_restarts=10,
            seed=seed,
            mean_error_batch=mean_error_batch,
        )
    finally:
        engine.close()
