"""Shared machinery for the Figures 7/8 near-optimum worst-case benches."""

from __future__ import annotations

from repro.simulator import SnipeSim
from repro.tuning.cost import cpi_error
from repro.validation.neighborhood import worst_near_optimum
from repro.validation.steps import param_space_for
from repro.workloads.microbench import ALL_MICROBENCHMARKS, get_microbenchmark

#: Probe sub-suite for the (expensive) search phases; the final report
#: is produced over the full suite.
PROBE = ["ED1", "EM1", "EF", "MD", "ML2", "MC", "CCh", "CCe", "CS1",
         "STc", "STL2b", "DPT", "ML2_BWld", "MM"]

#: The campaign's step-5 array-initialisation fix stays applied.
OVERRIDES = {"MM": {"initialized": True}, "M_Dyn": {"initialized": True}}


def _trace(name):
    return get_microbenchmark(name).trace(**OVERRIDES.get(name, {}))


def run_neighborhood_study(board, core_name, campaign_result, seed=0):
    """Execute the Figures 7/8 experiment for one core."""
    core = board.core(core_name)
    final_config = campaign_result.final_config
    space = param_space_for(final_config.core_type, stage=2)
    tuned_assignment = campaign_result.stages[-1].irace.best_assignment

    probe_traces = {name: _trace(name) for name in PROBE}
    probe_hw = {name: core.measure(t) for name, t in probe_traces.items()}

    def mean_error(assignment):
        config = final_config.with_updates(assignment)
        sim = SnipeSim(config)
        total = 0.0
        for name in PROBE:
            total += min(cpi_error(sim.run(probe_traces[name]), probe_hw[name]), 3.0)
        return total / len(PROBE)

    def per_benchmark(assignment):
        config = final_config.with_updates(assignment)
        sim = SnipeSim(config)
        out = {}
        for wl in ALL_MICROBENCHMARKS:
            trace = _trace(wl.name)
            out[wl.name] = cpi_error(sim.run(trace), core.measure(trace))
        return out

    return worst_near_optimum(
        space,
        tuned_assignment,
        mean_error,
        per_benchmark_error=per_benchmark,
        random_restarts=10,
        seed=seed,
    )
