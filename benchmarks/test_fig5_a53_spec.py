"""Figure 5 — tuned A53 model vs hardware on SPEC CPU2017.

Paper: 7% average absolute CPI error, at most 16% on any single
benchmark — the tuned-on-microbenchmarks model *generalises*.
"""

from benchmarks.conftest import spec_errors
from repro.analysis.figures import bar_chart
from repro.analysis.metrics import summarize_errors


def test_fig5_spec_errors(board, a53_campaign, benchmark):
    errors = benchmark.pedantic(
        lambda: spec_errors(board, "a53", a53_campaign.final_config),
        rounds=1,
        iterations=1,
    )
    print()
    print(bar_chart(
        errors,
        title="Figure 5 — absolute CPI error, tuned Cortex-A53 model (paper: 7% avg)",
        clip=0.5,
    ))
    summary = summarize_errors(errors)
    print(f"=> {summary}")

    assert summary.mean < 0.12          # paper: 0.07
    assert summary.maximum < 0.30       # paper: 0.16
    assert len(errors) == 11
