"""Benchmark-harness fixtures.

The expensive artefacts — the board and one tuned validation campaign
per core — are session-scoped and computed once; the figure benches
then regenerate each table/figure from them. Assertions check the
paper's *shape* (who wins, by roughly what factor), not absolute
numbers: the substrate is a synthetic board, not RK3399 silicon.
"""

from __future__ import annotations

import pytest

from repro.hardware.board import FireflyRK3399
from repro.simulator import SnipeSim
from repro.tuning.cost import cpi_error
from repro.validation.campaign import ValidationCampaign
from repro.workloads.spec import SPEC_BENCHMARKS


@pytest.fixture(scope="session")
def board() -> FireflyRK3399:
    return FireflyRK3399()


@pytest.fixture(scope="session")
def a53_campaign(board):
    """The tuned A53 model (Figure-1 methodology, two stages)."""
    campaign = ValidationCampaign(board, core="a53", profile="default", seed=1)
    return campaign.run(stages=2)


@pytest.fixture(scope="session")
def a72_campaign(board):
    """The tuned A72 model.

    The out-of-order model needs the larger "thorough" budget to tune
    well — consistent with the paper's observation that the A72 is the
    harder validation target.
    """
    campaign = ValidationCampaign(board, core="a72", profile="thorough", seed=3)
    return campaign.run(stages=2)


def spec_errors(board, core_name, config) -> dict:
    """Per-application CPI error of ``config`` on the SPEC proxies."""
    core = board.core(core_name)
    sim = SnipeSim(config)
    out = {}
    for workload in SPEC_BENCHMARKS:
        trace = workload.trace()
        out[workload.name] = cpi_error(sim.run(trace), core.measure(trace))
    return out
