"""Benchmark-harness fixtures.

The expensive artefacts — the board and one tuned validation campaign
per core — are session-scoped and computed once; the figure benches
then regenerate each table/figure from them. Assertions check the
paper's *shape* (who wins, by roughly what factor), not absolute
numbers: the substrate is a synthetic board, not RK3399 silicon.

Set ``REPRO_BENCH_STORE=/path/to/store.sqlite`` to back the campaigns
with a persistent experiment store: the first benchmark session pays
for the tuning, every later session (locally or via a CI cache
artifact) resumes both campaigns from their checkpoints in seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.hardware.board import FireflyRK3399
from repro.simulator import SnipeSim
from repro.store import open_store
from repro.tuning.cost import cpi_error
from repro.validation.campaign import ValidationCampaign
from repro.workloads.spec import SPEC_BENCHMARKS


@pytest.fixture(scope="session")
def board() -> FireflyRK3399:
    return FireflyRK3399()


@pytest.fixture(scope="session")
def perf_scenarios():
    """The perf layer's quick scenario suite (see ``repro.bench``).

    The same deterministic scenarios `repro bench --quick` runs; the
    perf benchmark file drives them through pytest-benchmark so the
    hot-path trajectory shows up alongside the paper's tables/figures.
    """
    from repro.bench import quick_suite

    return {scn.name: scn for scn in quick_suite()}


@pytest.fixture(scope="session")
def bench_store():
    """Optional shared store for the tuned-campaign fixtures."""
    path = os.environ.get("REPRO_BENCH_STORE")
    if not path:
        yield None
        return
    store = open_store(path)
    yield store
    store.close()


def _tuned_campaign(board, store, run_id, **campaign_kwargs):
    """Run (or resume) one campaign, registering it when store-backed.

    The run id is deterministic, so a re-run of the benchmark session
    against the same store resumes from the existing checkpoints.
    """
    resume = False
    if store is not None:
        try:
            store.registry.get(run_id)
            resume = True
        except KeyError:
            store.registry.create(
                run_id=run_id, kind="validate",
                core=campaign_kwargs["core"], profile=campaign_kwargs["profile"],
                seed=campaign_kwargs["seed"], params={"stages": 2, "bench": True},
            )
        campaign_kwargs.update(store=store, run_id=run_id)
    campaign = ValidationCampaign(board, **campaign_kwargs)
    try:
        result = campaign.run(stages=2, resume=resume)
        if store is not None:
            store.registry.finish(run_id)
        return result
    finally:
        campaign.close()


@pytest.fixture(scope="session")
def a53_campaign(board, bench_store):
    """The tuned A53 model (Figure-1 methodology, two stages)."""
    return _tuned_campaign(board, bench_store, "bench-a53-default-1",
                           core="a53", profile="default", seed=1)


@pytest.fixture(scope="session")
def a72_campaign(board, bench_store):
    """The tuned A72 model.

    The out-of-order model needs the larger "thorough" budget to tune
    well — consistent with the paper's observation that the A72 is the
    harder validation target.
    """
    return _tuned_campaign(board, bench_store, "bench-a72-thorough-3",
                           core="a72", profile="thorough", seed=3)


def spec_errors(board, core_name, config) -> dict:
    """Per-application CPI error of ``config`` on the SPEC proxies."""
    core = board.core(core_name)
    sim = SnipeSim(config)
    out = {}
    for workload in SPEC_BENCHMARKS:
        trace = workload.trace()
        out[workload.name] = cpi_error(sim.run(trace), core.measure(trace))
    return out
