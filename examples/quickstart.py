#!/usr/bin/env python
"""Quickstart: simulate a micro-benchmark and compare against "hardware".

Records a SIFT trace of one Table-I kernel, measures it on the board's
Cortex-A53 cluster, runs the public-information simulator model on the
same trace, and prints both sides — the basic loop everything else in
this repository is built from.

Run:  python examples/quickstart.py
"""

from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config
from repro.hardware import FireflyRK3399
from repro.simulator import SnipeSim
from repro.workloads.microbench import get_microbenchmark


def main() -> None:
    board = FireflyRK3399()
    workload = get_microbenchmark("ML2")
    trace = workload.trace()
    print(f"workload: {workload.name} — {workload.description.splitlines()[0]}")
    print(f"trace: {len(trace)} dynamic instructions "
          f"(paper ran {workload.paper_instructions})\n")

    hw = board.a53.measure(trace)
    sim = SnipeSim(cortex_a53_public_config()).run(trace)

    rows = [
        ["cycles", hw.cycles, sim.cycles],
        ["CPI", f"{hw.cpi:.3f}", f"{sim.cpi:.3f}"],
        ["branch misses", hw.counter("branch-misses"), sim.branch.mispredicts],
        ["L1D misses", hw.counter("L1-dcache-load-misses"), sim.l1d.misses],
        ["L2 misses", hw.counter("l2-misses"), sim.l2.misses],
    ]
    print(render_table(["metric", "hardware (A53)", "simulator (public cfg)"], rows))
    error = abs(sim.cpi - hw.cpi) / hw.cpi
    print(f"\nCPI prediction error of the untuned model: {error:.1%}")
    print("examples/validate_a53.py shows how the racing tuner removes it.")


if __name__ == "__main__":
    main()
