#!/usr/bin/env python
"""Tune a user-defined processor model with iterated racing directly.

The validation methodology is not tied to the A53/A72 models: this
example defines a small custom parameter space over the out-of-order
model, tunes it against the board's big cluster using only ten
micro-benchmarks, and prints the racing telemetry — the workflow a user
would follow to validate their own simulator configuration against
their own silicon.

Run:  python examples/tune_custom_core.py
"""

from repro.core.config import cortex_a72_public_config
from repro.hardware import FireflyRK3399
from repro.simulator import SnipeSim
from repro.tuning import CategoricalParam, IraceTuner, OrdinalParam, ParamSpace
from repro.tuning.cost import cpi_error
from repro.workloads.microbench import get_microbenchmark

WORKLOADS = ["ED1", "EM1", "EM5", "EF", "MD", "ML2", "CCh", "CCe", "STL2b", "DPT"]


def main() -> None:
    board = FireflyRK3399()
    base = cortex_a72_public_config()

    # A deliberately small space: the execution-unit unknowns only.
    space = ParamSpace([
        OrdinalParam("execute.imul_latency", [2, 3, 4, 5]),
        OrdinalParam("execute.idiv_latency", [4, 6, 8, 12, 16, 20]),
        OrdinalParam("execute.fpalu_latency", [2, 3, 4, 5]),
        OrdinalParam("execute.fpmul_latency", [3, 4, 5, 6]),
        OrdinalParam("pipeline.rob_size", [64, 96, 128, 160]),
        CategoricalParam("branch.predictor", ["bimodal", "gshare", "tournament"]),
    ])
    print(f"parameter space: {len(space)} parameters, "
          f"{space.total_combinations()} total combinations")

    traces = {name: get_microbenchmark(name).trace() for name in WORKLOADS}
    measurements = {name: board.a72.measure(trace) for name, trace in traces.items()}

    def evaluate(assignment: dict, instance: str) -> float:
        config = base.with_updates(assignment)
        return cpi_error(SnipeSim(config).run(traces[instance]), measurements[instance])

    tuner = IraceTuner(
        space,
        evaluate,
        instances=WORKLOADS,
        budget=300,
        seed=7,
        first_test=4,
        initial_assignments=[space.default_assignment(base.flatten())],
        verbose=True,
    )
    result = tuner.run()

    print()
    print(result.summary())
    print("\ntuned assignment:")
    for name, value in sorted(result.best_assignment.items()):
        print(f"  {name:<28}{value}")
    before = sum(evaluate(space.default_assignment(base.flatten()), w) for w in WORKLOADS)
    after = sum(evaluate(result.best_assignment, w) for w in WORKLOADS)
    print(f"\nmean CPI error: best-guess {before / len(WORKLOADS):.1%} "
          f"-> tuned {after / len(WORKLOADS):.1%}")


if __name__ == "__main__":
    main()
