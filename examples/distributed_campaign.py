"""Distributed execution: a campaign fanned out over fabric workers.

The paper's tuning rounds are embarrassingly parallel — every irace
iteration races dozens of independent candidate configurations. This
example runs a small validation campaign twice: serially, then
distributed over two in-process fabric workers sharing one SQLite
store file — and shows the results are identical.

In real use the workers are separate ``repro worker`` processes (any
count, any host sharing the store file)::

    python -m repro worker --store fab.sqlite --max-idle 120 &
    python -m repro worker --store fab.sqlite --max-idle 120 &
    python -m repro validate --core a53 --profile fast \\
        --executor fabric --store fab.sqlite

Run from the repository root::

    PYTHONPATH=src python examples/distributed_campaign.py
"""

import os
import tempfile
import threading

from repro.engine.executors import FabricExecutor
from repro.fabric import FabricWorker, status_snapshot
from repro.hardware.board import FireflyRK3399
from repro.store import open_store
from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import get_microbenchmark

# A small-but-real campaign: 8 kernels, tiny tuning budget.
PROFILE = BudgetProfile("example", 120, 120, first_test=4, n_elites=2,
                        microbench_scale=0.5)
WORKLOADS = [get_microbenchmark(n)
             for n in ("ED1", "EM1", "MD", "ML2", "CCh", "CS1", "STc", "DPT")]


def serial_run(board):
    campaign = ValidationCampaign(board, core="a53", profile=PROFILE,
                                  seed=3, workloads=WORKLOADS)
    try:
        return campaign.run(stages=1)
    finally:
        campaign.close()


def fabric_run(board, store_path):
    # Two workers drain the queue while the campaign drives it. In
    # production these are separate processes; threads keep the example
    # self-contained (each worker still talks to the file like a
    # stranger — own connections, leases, heartbeats).
    workers = [FabricWorker(store_path, lease=10.0, poll=0.02, max_idle=60)
               for _ in range(2)]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for t in threads:
        t.start()

    store = open_store(store_path)
    campaign = ValidationCampaign(
        board, core="a53", profile=PROFILE, seed=3, workloads=WORKLOADS,
        engine=None, store=store, executor="fabric",
    )
    try:
        result = campaign.run(stages=1)
    finally:
        campaign.close()
        for w in workers:
            w.stop()
        for t in threads:
            t.join(timeout=10)
        store.close()
    return result


def main():
    board = FireflyRK3399()
    print("serial campaign ...")
    serial = serial_run(board)
    print(f"  final mean CPI error: {serial.tuned_mean_error:.2%}")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "fab.sqlite")
        print("distributed campaign (2 workers) ...")
        fabric = fabric_run(board, store_path)
        print(f"  final mean CPI error: {fabric.tuned_mean_error:.2%}")

        assert fabric.final_errors == serial.final_errors, "runs diverged!"
        print("distributed == serial, per-workload errors identical")

        snap = status_snapshot(store_path)
        print(f"queue after the run: {snap['queue']}")
        for worker in snap["workers"]:
            print(f"  {worker['worker_id']}: {worker['tasks_done']} tasks, "
                  f"{worker['unique_trials']} unique trials, "
                  f"{worker['store_hits']} store hits")


if __name__ == "__main__":
    main()
