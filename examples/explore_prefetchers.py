#!/usr/bin/env python
"""Design-space exploration with the simulator as a research vehicle.

Once hardware-validated, the simulator's purpose is evaluating design
changes. This example sweeps the L1D prefetcher choice (none /
next-line / stride / GHB) and degree across the memory-bound workloads
and reports CPI — the kind of study §IV-A's configurable components
exist for. It also demonstrates the decoder-bug mode (§IV-B): the same
sweep under a buggy decoder silently mis-ranks the options.

Run:  python examples/explore_prefetchers.py
"""

from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config
from repro.isa.decoder import BuggyDecoder
from repro.simulator import SnipeSim
from repro.workloads.microbench import get_microbenchmark
from repro.workloads.spec import get_spec_benchmark

MEMORY_WORKLOADS = ["ML2", "ML2_BWld", "MM_st"]
SPEC_WORKLOADS = ["mcf", "x264", "imagick"]


def sweep(decoder=None) -> list:
    base = cortex_a53_public_config()
    rows = []
    for prefetcher in ("none", "nextline", "stride", "ghb"):
        degrees = [1] if prefetcher == "none" else [1, 2, 4]
        for degree in degrees:
            config = base.with_updates({
                "l1d.prefetcher": prefetcher,
                "l1d.prefetch_degree": degree,
                "l1d.prefetch_on_hit": prefetcher != "none",
            })
            sim = SnipeSim(config, decoder=decoder)
            row = [prefetcher, degree]
            for name in MEMORY_WORKLOADS:
                trace = get_microbenchmark(name).trace()
                row.append(f"{sim.run(trace).cpi:.2f}")
            for name in SPEC_WORKLOADS:
                trace = get_spec_benchmark(name).trace()
                row.append(f"{sim.run(trace).cpi:.2f}")
            rows.append(row)
    return rows


def main() -> None:
    headers = ["prefetcher", "degree"] + MEMORY_WORKLOADS + SPEC_WORKLOADS
    print(render_table(headers, sweep(), title="L1D prefetcher sweep (CPI, correct decoder)"))
    print()
    print(render_table(
        headers,
        sweep(decoder=BuggyDecoder()),
        title="Same sweep with the buggy decoder library (dependences lost)",
    ))
    print("\nThe buggy decoder under-serialises dependent code, so it "
          "understates CPI and can invert design rankings — the class of "
          "error §IV-B reports hardware validation catching.")


if __name__ == "__main__":
    main()
