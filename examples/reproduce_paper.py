#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Executes the full experimental flow — validation campaigns for both
cores, SPEC generalisation, and the near-optimum worst-case studies —
prints each table/figure, and writes JSON artefacts under ``results/``.
This is the script behind the numbers recorded in EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py          (~4 minutes)
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

from neighborhood_common import run_neighborhood_study  # noqa: E402

from repro.analysis.figures import bar_chart, paired_bar_chart  # noqa: E402
from repro.analysis.io import save_result_json  # noqa: E402
from repro.analysis.metrics import summarize_errors  # noqa: E402
from repro.analysis.tables import render_table  # noqa: E402
from repro.hardware import FireflyRK3399  # noqa: E402
from repro.simulator import SnipeSim  # noqa: E402
from repro.tuning.cost import cpi_error  # noqa: E402
from repro.validation import ValidationCampaign  # noqa: E402
from repro.workloads.microbench import ALL_MICROBENCHMARKS  # noqa: E402
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_PROFILES  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def table1() -> None:
    rows = [[wl.name, wl.category, wl.paper_instructions, len(wl.trace())]
            for wl in ALL_MICROBENCHMARKS]
    print(render_table(["benchmark", "category", "paper instr.", "ours"],
                       rows, title="\n=== Table I — micro-benchmark suite ==="))


def table2() -> None:
    by_name = {p.name: p for p in SPEC_PROFILES}
    rows = [[wl.name, f"{by_name[wl.name].paper_file}:{by_name[wl.name].paper_line}",
             wl.paper_instructions, len(wl.trace())] for wl in SPEC_BENCHMARKS]
    print(render_table(["benchmark", "paper ROI", "paper instr.", "ours"],
                       rows, title="\n=== Table II — SPEC CPU2017 workloads ==="))


def spec_errors(board, core_name, config) -> dict:
    core = board.core(core_name)
    sim = SnipeSim(config)
    out = {}
    for wl in SPEC_BENCHMARKS:
        trace = wl.trace()
        out[wl.name] = cpi_error(sim.run(trace), core.measure(trace))
    return out


def main() -> None:
    t0 = time.time()
    board = FireflyRK3399()
    table1()
    table2()

    results = {}
    for core, profile, seed, fig_micro, fig_spec, fig_worst in (
        ("a53", "default", 1, "Figure 4", "Figure 5", "Figure 7"),
        ("a72", "thorough", 3, "(A72 microbench)", "Figure 6", "Figure 8"),
    ):
        print(f"\n=== Validation campaign: {core} ({profile} profile) ===")
        campaign = ValidationCampaign(board, core=core, profile=profile, seed=seed)
        result = campaign.run(stages=2)
        print(result.summary())
        print(f"\n{fig_micro} — micro-benchmark CPI error before/after tuning:")
        print(paired_bar_chart(result.untuned_errors, result.final_errors))

        errors = spec_errors(board, core, result.final_config)
        print(f"\n{fig_spec} — SPEC CPI error, tuned {core} model:")
        print(bar_chart(errors, clip=0.5))
        print(f"=> {summarize_errors(errors)}")

        print(f"\n{fig_worst} — near-optimum worst-case study ({core}):")
        worst = run_neighborhood_study(board, core, result, seed=seed)
        print(worst.summary())
        print(bar_chart(worst.per_benchmark, clip=1.0))

        results[core] = {
            "profile": profile,
            "untuned_microbench_errors": result.untuned_errors,
            "tuned_microbench_errors": result.final_errors,
            "spec_errors": errors,
            "tuned_assignment": result.stages[-1].irace.best_assignment,
            "worst_near_optimum_mean": worst.worst_mean_error,
            "worst_near_optimum_per_benchmark": worst.per_benchmark,
            "tuned_mean_error_probe": worst.tuned_mean_error,
        }
        save_result_json(os.path.join(RESULTS_DIR, f"{core}.json"), results[core])

    print(f"\nall experiments done in {time.time() - t0:.0f}s; "
          f"JSON artefacts in {os.path.abspath(RESULTS_DIR)}")


if __name__ == "__main__":
    main()
