#!/usr/bin/env python
"""Full validation campaign for the in-order Cortex-A53 model.

Runs the Figure-1 methodology end to end — public-information model,
lmbench latency estimation, two iterated-racing rounds with the step-5
model fixes between them — then shows that the tuned model generalises
from the 40 micro-benchmarks to the SPEC CPU2017 proxies (the paper's
Figure 5 claim: ~7% average CPI error).

Run:  python examples/validate_a53.py          (~20 s, "fast" profile)
      python examples/validate_a53.py default  (~40 s, better tuning)
"""

import sys

from repro.analysis.figures import paired_bar_chart
from repro.analysis.metrics import summarize_errors
from repro.hardware import FireflyRK3399
from repro.simulator import SnipeSim
from repro.tuning.cost import cpi_error
from repro.validation import ValidationCampaign
from repro.workloads.spec import SPEC_BENCHMARKS


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "fast"
    board = FireflyRK3399()
    campaign = ValidationCampaign(board, core="a53", profile=profile, seed=1, verbose=True)
    result = campaign.run(stages=2)

    print()
    print(paired_bar_chart(
        result.untuned_errors,
        result.final_errors,
        title="Micro-benchmark CPI error before/after tuning (Figure 4)",
    ))
    print()
    print(result.summary())

    print("\nGeneralisation to SPEC CPU2017 proxies (Figure 5):")
    spec_errors = {}
    sim = SnipeSim(result.final_config)
    for workload in SPEC_BENCHMARKS:
        trace = workload.trace()
        spec_errors[workload.name] = cpi_error(sim.run(trace), board.a53.measure(trace))
    for name, err in spec_errors.items():
        print(f"  {name:<12}{err:.1%}")
    print(f"  => {summarize_errors(spec_errors)} (paper: 7% average, 16% max)")


if __name__ == "__main__":
    main()
