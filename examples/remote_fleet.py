"""Remote fleet: the same distributed campaign, but over HTTP.

``distributed_campaign.py`` fans a campaign out over workers that share
a SQLite store *file*. This example removes the shared filesystem: an
``ExperimentService`` fronts the store over HTTP, and the workers talk
to it by URL — exactly what ``repro worker --url`` does from another
host. The results are still byte-identical to a serial run, because
every task is keyed by the content hash the store itself uses.

In real use the pieces are separate processes on separate machines::

    export REPRO_TOKEN=s3cret
    python -m repro serve --store fleet.sqlite --host 0.0.0.0 &
    # on each worker host:
    python -m repro worker --url http://fleet-host:8537 --max-idle 120 &
    # on the driver host:
    python -m repro validate --core a53 --profile fast \\
        --executor fabric --store fleet.sqlite

Run from the repository root::

    PYTHONPATH=src python examples/remote_fleet.py
"""

import os
import tempfile
import threading

from repro.fabric import FabricWorker
from repro.hardware.board import FireflyRK3399
from repro.service.client import fetch_status
from repro.service.server import ExperimentService
from repro.store import open_store
from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import get_microbenchmark

TOKEN = "example-fleet-token"

# A small-but-real campaign: 8 kernels, tiny tuning budget.
PROFILE = BudgetProfile("example", 120, 120, first_test=4, n_elites=2,
                        microbench_scale=0.5)
WORKLOADS = [get_microbenchmark(n)
             for n in ("ED1", "EM1", "MD", "ML2", "CCh", "CS1", "STc", "DPT")]


def serial_run(board):
    campaign = ValidationCampaign(board, core="a53", profile=PROFILE,
                                  seed=3, workloads=WORKLOADS)
    try:
        return campaign.run(stages=1)
    finally:
        campaign.close()


def fleet_run(board, store_path):
    # The service owns the store file; everyone else talks HTTP. Port 0
    # picks a free ephemeral port — ``service.url`` is the address.
    service = ExperimentService(store_path, token=TOKEN, port=0)
    service.start()
    print(f"  service listening at {service.url}")

    # Two workers connected purely by URL: no shared filesystem, traces
    # cached per-host under $TMPDIR. In production these are separate
    # ``repro worker --url`` processes on other machines.
    workers = [FabricWorker(service.url, token=TOKEN, lease=10.0,
                            poll=0.02, max_idle=60)
               for _ in range(2)]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for t in threads:
        t.start()

    # The driver, too, can live on another host: open_store() accepts
    # the service URL and reads/writes through the same wire.
    store = open_store(service.url, token=TOKEN)
    campaign = ValidationCampaign(
        board, core="a53", profile=PROFILE, seed=3, workloads=WORKLOADS,
        engine=None, store=store, executor="fabric",
    )
    try:
        result = campaign.run(stages=1)
    finally:
        campaign.close()
        for w in workers:
            w.stop()
        for t in threads:
            t.join(timeout=10)
        snap = fetch_status(service.url, token=TOKEN)
        store.close()
        service.stop()
        service.close()
    return result, snap


def main():
    board = FireflyRK3399()
    print("serial campaign ...")
    serial = serial_run(board)
    print(f"  final mean CPI error: {serial.tuned_mean_error:.2%}")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "fleet.sqlite")
        print("remote-fleet campaign (serve + 2 workers over HTTP) ...")
        fleet, snap = fleet_run(board, store_path)
        print(f"  final mean CPI error: {fleet.tuned_mean_error:.2%}")

        assert fleet.final_errors == serial.final_errors, "runs diverged!"
        print("remote fleet == serial, per-workload errors identical")

        print(f"queue after the run: {snap['queue']}")
        for worker in snap["workers"]:
            print(f"  {worker['worker_id']}: {worker['tasks_done']} tasks, "
                  f"{worker['unique_trials']} unique trials, "
                  f"{worker['store_hits']} store hits")


if __name__ == "__main__":
    main()
