"""Durable, resumable validation campaigns.

The paper's methodology is tens of thousands of trials; losing a
campaign to a ^C, an OOM kill or a reboot used to mean starting over.
This script shows the persistent experiment store fixing that, in three
acts:

1. run a campaign against a store, "killing" it after stage 1;
2. resume it in a "fresh process" — stage 1 replays from its
   checkpoint, stage 2 runs live — and verify the final results are
   byte-identical to an uninterrupted run;
3. re-run the whole campaign against the warm store and watch the
   telemetry report zero new simulations.

Run with:  PYTHONPATH=src python examples/resume_campaign.py
"""

import os
import tempfile

from repro.analysis.io import result_fingerprint
from repro.hardware.board import FireflyRK3399
from repro.store import open_store
from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import get_microbenchmark

# A small sub-suite and budget keep this demo under a minute; swap in
# profile="fast" (or "default") and the full suite for the real thing.
SUBSET = [get_microbenchmark(n) for n in
          ("ED1", "EM1", "EF", "MD", "ML2", "CCh", "CS1", "STc")]
PROFILE = BudgetProfile("demo", 150, 150, first_test=4, n_elites=2)


def payload(result):
    """The fields `validate --out` writes — our identity witness."""
    return {
        "untuned_errors": result.untuned_errors,
        "final_errors": result.final_errors,
        "tuned_assignment": result.stages[-1].irace.best_assignment,
    }


def main() -> None:
    board = FireflyRK3399()
    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-store-"), "exp.sqlite")
    print(f"store: {store_path}\n")

    # -- Reference: one uninterrupted run (no store) --------------------
    reference = ValidationCampaign(board, core="a53", profile=PROFILE,
                                   seed=7, workloads=SUBSET)
    expected = reference.run(stages=2)
    reference.close()
    print(f"uninterrupted run: {expected.summary()}\n")

    # -- Act 1: run against a store, die after stage 1 ------------------
    with open_store(store_path) as store:
        record = store.registry.create("validate", core="a53", profile="demo",
                                       seed=7, params={"stages": 2})
        doomed = ValidationCampaign(board, core="a53", profile=PROFILE, seed=7,
                                    workloads=SUBSET, store=store,
                                    run_id=record.run_id)
        doomed.run(stages=1)  # ... and the process is killed here.
        doomed.close()
        store.registry.finish(record.run_id, status="interrupted")
        print(f"run {record.run_id} interrupted after stage 1; checkpoints on disk:"
              f" {sorted(store.list_checkpoints(record.run_id))}\n")
        run_id = record.run_id

    # -- Act 2: a fresh process resumes it ------------------------------
    with open_store(store_path) as store:
        store.registry.reopen(run_id)
        revived = ValidationCampaign(board, core="a53", profile=PROFILE, seed=7,
                                     workloads=SUBSET, store=store, run_id=run_id)
        result = revived.run(stages=2, resume=True)
        store.registry.finish(run_id)
        print(f"resumed run:       {result.summary()}")
        print(f"engine after resume: {revived.engine.telemetry.summary()}")
        revived.close()

        identical = result_fingerprint(payload(result)) == \
            result_fingerprint(payload(expected))
        print(f"byte-identical to the uninterrupted run: {identical}\n")
        assert identical

        # -- Act 3: a second full run against the warm store ------------
        again = ValidationCampaign(board, core="a53", profile=PROFILE, seed=7,
                                   workloads=SUBSET, store=store, run_id="warm-rerun")
        rerun = again.run(stages=2)
        telemetry = again.engine.telemetry
        again.close()
        print(f"warm re-run engine:  {telemetry.summary()}")
        print(f"new simulations:     {telemetry.unique_trials}")
        assert telemetry.unique_trials == 0
        assert result_fingerprint(payload(rerun)) == result_fingerprint(payload(expected))

        print(f"\nstore contents: {store.stats()}")


if __name__ == "__main__":
    main()
