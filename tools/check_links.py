#!/usr/bin/env python
"""Intra-repository markdown link checker.

Walks every tracked ``*.md`` file and verifies that each relative link
target (``[text](path)`` and ``[text](path#anchor)``) exists on disk.
External links (``http``/``https``/``mailto``) and pure in-page anchors
are skipped — the goal is catching renamed or deleted files, the way
docs rot in practice.

Run from the repository root::

    python tools/check_links.py

CI runs this in the docs job.
"""

from __future__ import annotations

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {".git", ".github", "__pycache__", ".pytest_cache", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def iter_markdown(root: str):
    """Yield every markdown file under ``root`` (skipping tool dirs)."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path: str, root: str) -> list:
    """Return ``(target, reason)`` tuples for broken links in ``path``."""
    broken = []
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target_path))
        if not os.path.exists(resolved):
            broken.append((target, os.path.relpath(resolved, root)))
    return broken


def main(root: str = ".") -> int:
    """Check all markdown files; print failures; return an exit code."""
    failures = 0
    checked = 0
    for path in sorted(iter_markdown(root)):
        checked += 1
        for target, resolved in check_file(path, root):
            failures += 1
            print(f"{os.path.relpath(path, root)}: broken link {target!r} "
                  f"(resolves to {resolved})")
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"link check: {checked} markdown files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "."))
