#!/usr/bin/env python
"""Component-registry guard.

Asserts the invariants that keep the self-describing registry honest:

1. every registered knob and selector maps to a real ``SimConfig``
   section field (binding drift fails CI, not a tuning run);
2. every string-valued field of the config section dataclasses has a
   registered slot validating it (no component-name field can dodge the
   eager ``__post_init__`` check);
3. every component of every slot constructs from default config values
   at each of its sites;
4. every parameter of every derived tuning space names a real config
   path and every candidate value survives ``with_updates``.

Run from the repository root::

    PYTHONPATH=src python tools/check_components.py

CI runs this in the docs job; the component smoke test covers the
behavioural half in the tier-1 gate.
"""

from __future__ import annotations

import dataclasses
import sys


def main() -> int:
    from repro.components import REGISTRY, derive_param_space
    from repro.core.config import (
        SimConfig,
        cortex_a53_public_config,
        cortex_a72_public_config,
    )

    errors = []
    configs = {"inorder": cortex_a53_public_config(),
               "ooo": cortex_a72_public_config()}
    config = configs["inorder"]

    # 1. knob/selector bindings resolve to real fields.
    for site in REGISTRY.sites():
        section = getattr(config, site.section, None)
        if section is None:
            errors.append(f"site {site.slot}@{site.section}: no such section")
            continue
        fields = {f.name for f in dataclasses.fields(section)}
        slot = REGISTRY.slot(site.slot)
        if slot.selector is not None and slot.selector not in fields:
            errors.append(
                f"slot {slot.name}: selector {slot.selector!r} is not a "
                f"field of section {site.section!r}"
            )
        for knob in slot.knobs:
            if knob.field not in fields:
                errors.append(
                    f"slot {slot.name}: knob {knob.field!r} is not a "
                    f"field of section {site.section!r}"
                )

    # 2. every string-valued section field has a validating slot.
    for section_name in SimConfig._SECTIONS:
        section = getattr(config, section_name)
        for f in dataclasses.fields(section):
            if not isinstance(getattr(section, f.name), str):
                continue
            if (section_name, f.name) not in REGISTRY.selector_map:
                errors.append(
                    f"string field {section_name}.{f.name} has no "
                    "registered component slot validating it"
                )

    # 3. every component constructs at each of its sites.
    for slot in REGISTRY.slots():
        sites = REGISTRY.sites(slot.name)
        sections = sorted({s.section for s in sites}) or ["l1d"]
        for section_name in sections:
            values = dict(dataclasses.asdict(getattr(config, section_name)))
            values["victim_entries"] = max(values.get("victim_entries", 0), 1)
            for comp in slot:
                if comp.factory is None:
                    continue
                structural = {"n_sets": 128} if slot.name == "hashing" else {}
                try:
                    comp.construct(values, **structural)
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    errors.append(
                        f"{slot.name}/{comp.name} fails to construct at "
                        f"{section_name}: {exc}"
                    )

    # 4. derived spaces reference real paths with applicable candidates.
    for core_type, core_config in configs.items():
        for stage in (1, 2, 3):
            for param in derive_param_space(core_type, stage=stage):
                try:
                    core_config.get(param.name)
                    core_config.with_updates({param.name: param.values[0]})
                except (KeyError, ValueError) as exc:
                    errors.append(
                        f"{core_type} stage {stage}: {param.name}: {exc}"
                    )

    if errors:
        print("component registry check FAILED:")
        for err in errors:
            print(f"  - {err}")
        return 1
    n_components = sum(len(list(slot)) for slot in REGISTRY.slots())
    print(
        f"component registry check OK: {len(REGISTRY.slots())} slots, "
        f"{n_components} components, {len(REGISTRY.sites())} tuning sites, "
        f"{len(REGISTRY.selector_map)} validated config fields"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
