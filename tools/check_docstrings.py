#!/usr/bin/env python
"""Docstring guard for the public entry points.

A grep/pydocstyle substitute with zero extra dependencies: imports the
modules behind the public API (``simulate``, ``EvaluationEngine``,
``ResultStore``, ``ValidationCampaign``, ``IraceTuner``, ``race``, the
bench layer and the CLI) and fails if any public module, class, method
or function they define lacks a docstring.

Run from the repository root::

    PYTHONPATH=src python tools/check_docstrings.py

CI runs this in the docs job; ``tests/test_docstrings.py`` runs it in
the tier-1 gate.
"""

from __future__ import annotations

import importlib
import inspect
import sys

#: Modules whose public surface must be fully documented.
TARGET_MODULES = [
    "repro.simulator.simulator",
    "repro.engine.engine",
    "repro.engine.executors",
    "repro.store.resultstore",
    "repro.fabric.api",
    "repro.fabric.queue",
    "repro.fabric.scheduler",
    "repro.fabric.tasks",
    "repro.fabric.worker",
    "repro.fabric.status",
    "repro.service.protocol",
    "repro.service.server",
    "repro.service.client",
    "repro.validation.campaign",
    "repro.tuning.irace",
    "repro.tuning.race",
    "repro.bench.scenarios",
    "repro.bench.harness",
    "repro.trace.record",
    "repro.trace.columnar",
    "repro.engine.tracestore",
    "repro.core.inorder",
    "repro.core.ooo",
]


def _missing_in_class(cls, module_name: str) -> list:
    out = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            func = member.fget
        elif isinstance(member, (staticmethod, classmethod)):
            func = member.__func__
        elif inspect.isfunction(member):
            func = member
        else:
            continue
        if not inspect.getdoc(func):
            out.append(f"{module_name}.{cls.__name__}.{name}")
    return out


def check_module(module_name: str) -> list:
    """Return the list of undocumented public objects in ``module_name``."""
    module = importlib.import_module(module_name)
    missing = []
    if not inspect.getdoc(module):
        missing.append(f"{module_name} (module docstring)")
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        defined_here = getattr(member, "__module__", None) == module_name
        if not defined_here:
            continue
        if inspect.isclass(member):
            if not inspect.getdoc(member):
                missing.append(f"{module_name}.{name}")
            missing.extend(_missing_in_class(member, module_name))
        elif inspect.isfunction(member):
            if not inspect.getdoc(member):
                missing.append(f"{module_name}.{name}")
    return missing


def main() -> int:
    """Check every target module; print failures; return an exit code."""
    missing = []
    for module_name in TARGET_MODULES:
        missing.extend(check_module(module_name))
    if missing:
        print("undocumented public entry points:")
        for item in missing:
            print(f"  - {item}")
        return 1
    print(f"docstring guard: {len(TARGET_MODULES)} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
