"""Cross-module integration tests: the full paper workflow in miniature."""

import pytest

from repro.core.config import cortex_a53_public_config
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.simulator import SnipeSim, simulate
from repro.trace.sift import read_trace, write_trace
from repro.tuning import IraceTuner, OrdinalParam, ParamSpace
from repro.tuning.cost import cpi_error
from repro.workloads.microbench import get_microbenchmark


class TestTraceOnceSimulateMany:
    def test_sift_file_roundtrip_preserves_simulation(self, tmp_path, a53_config):
        """Record once, serialise, reload, simulate — the SIFT workflow."""
        trace = get_microbenchmark("MD").trace()
        path = tmp_path / "md.sift"
        path.write_bytes(write_trace(trace))
        restored = read_trace(path.read_bytes())
        sim = SnipeSim(a53_config)
        assert sim.run(trace).cycles == sim.run(restored).cycles

    def test_one_trace_many_configs(self, a53_config):
        trace = get_microbenchmark("ML2").trace()
        cycles = {
            lat: simulate(a53_config.with_updates({"l2.hit_latency": lat}), trace).cycles
            for lat in (11, 14, 17)
        }
        assert cycles[11] < cycles[14] < cycles[17]


class TestDecoderBugStudy:
    def test_buggy_decoder_underestimates_dependent_fp(self, a53_config):
        """The §IV-B Capstone-bug signature: dependence chains vanish.

        The chain runs through the *second* source operand — exactly the
        operand the buggy decoder drops — so the correct decoder
        serialises at the FP latency while the buggy one pipelines.
        """
        from repro.frontend.builder import ProgramBuilder
        from repro.frontend.interpreter import trace_program
        from repro.frontend.program import PatternTaken
        from repro.isa.opclasses import OpClass
        from repro.isa.registers import fp_reg, int_reg

        b = ProgramBuilder("fp-chain")
        b.label("top")
        for _ in range(10):
            b.op(OpClass.FPALU, fp_reg(1), fp_reg(0), fp_reg(1))
        b.branch("top", PatternTaken("T" * 49 + "N"), cond_reg=int_reg(2))
        trace = trace_program(b.build())

        correct = SnipeSim(a53_config, decoder=Decoder()).run(trace)
        buggy = SnipeSim(a53_config, decoder=BuggyDecoder()).run(trace)
        assert buggy.cpi < 0.5 * correct.cpi
        assert buggy.decoder != correct.decoder

    def test_bug_invisible_on_integer_code(self, a53_config):
        trace = get_microbenchmark("EI").trace()
        correct = SnipeSim(a53_config, decoder=Decoder()).run(trace)
        buggy = SnipeSim(a53_config, decoder=BuggyDecoder()).run(trace)
        assert buggy.cycles == correct.cycles


class TestTuningAgainstBoard:
    def test_irace_recovers_divide_latency(self, board):
        """ED1 is latency-bound on the divider: racing one parameter
        against hardware must recover the silicon's effective latency."""
        base = cortex_a53_public_config()
        trace = get_microbenchmark("ED1").trace()
        hw = board.a53.measure(trace)
        space = ParamSpace([OrdinalParam("execute.idiv_latency", [4, 6, 8, 12, 16, 20])])

        def evaluate(assignment, instance):
            return cpi_error(simulate(base.with_updates(assignment), trace), hw)

        tuner = IraceTuner(space, evaluate, instances=["ED1"] * 6, budget=60,
                           seed=2, first_test=2)
        result = tuner.run()
        assert result.best_assignment["execute.idiv_latency"] == 4  # truth
        assert result.best_cost < 0.15

    def test_hardware_vs_simulator_counters_consistent(self, board, a53_config):
        """Branch counts are architectural: hardware and simulator agree
        exactly; cycles (timing) differ."""
        trace = get_microbenchmark("CCh").trace()
        hw = board.a53.measure(trace)
        sim = SnipeSim(a53_config).run(trace)
        assert hw.counter("branches") == sim.branch.branches
        assert hw.instructions == sim.instructions
