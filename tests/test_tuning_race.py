"""Statistical racing."""

import random

import pytest

from repro.tuning.race import race


def _noisy_evaluator(true_costs, sigma=0.02, seed=0):
    rng = random.Random(seed)

    def evaluate(config, instance):
        return true_costs[config["id"]] + rng.gauss(0, sigma)

    return evaluate


class TestRace:
    def test_eliminates_clearly_inferior_configs(self):
        configs = [{"id": i} for i in range(6)]
        true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}
        result = race(
            configs,
            instances=list(range(30)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=4,
        )
        assert result.survivors[0] in (0, 1)
        assert len(result.survivors) < 6
        assert set(result.eliminated_after) & {2, 3, 4, 5}

    def test_ttest_variant_also_eliminates(self):
        configs = [{"id": i} for i in range(4)]
        true_costs = {0: 0.1, 1: 0.8, 2: 0.9, 3: 0.85}
        result = race(
            configs,
            instances=list(range(30)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=4,
            test="ttest",
        )
        assert result.survivors[0] == 0
        assert len(result.survivors) < 4

    def test_min_survivors_respected(self):
        configs = [{"id": i} for i in range(5)]
        true_costs = {0: 0.1, 1: 0.9, 2: 0.9, 3: 0.9, 4: 0.9}
        result = race(
            configs,
            instances=list(range(40)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=3,
            min_survivors=3,
        )
        assert len(result.survivors) >= 3

    def test_budget_bounds_evaluations(self):
        configs = [{"id": i} for i in range(5)]
        true_costs = {i: 0.5 for i in range(5)}
        result = race(
            configs,
            instances=list(range(100)),
            evaluate=_noisy_evaluator(true_costs),
            budget=37,
        )
        assert result.evaluations <= 37

    def test_identical_configs_not_eliminated(self):
        configs = [{"id": i} for i in range(3)]
        result = race(
            configs,
            instances=list(range(12)),
            evaluate=lambda c, i: 0.5,
            first_test=3,
        )
        assert len(result.survivors) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            race([], [1], lambda c, i: 0.0)
        with pytest.raises(ValueError):
            race([{}], [], lambda c, i: 0.0)
        with pytest.raises(ValueError):
            race([{}], [1], lambda c, i: 0.0, test="anova")

    def test_survivors_ordered_by_mean_cost(self):
        configs = [{"id": i} for i in range(4)]
        true_costs = {0: 0.4, 1: 0.2, 2: 0.3, 3: 0.1}
        result = race(
            configs,
            instances=list(range(8)),
            evaluate=_noisy_evaluator(true_costs, sigma=0.0),
            first_test=9,  # no elimination: pure evaluation
        )
        means = [result.mean_costs[i] for i in result.survivors]
        assert means == sorted(means)
        assert result.survivors[0] == 3
