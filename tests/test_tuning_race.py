"""Statistical racing."""

import random

import pytest

from repro.tuning.race import race


def _noisy_evaluator(true_costs, sigma=0.02, seed=0):
    rng = random.Random(seed)

    def evaluate(config, instance):
        return true_costs[config["id"]] + rng.gauss(0, sigma)

    return evaluate


class TestRace:
    def test_eliminates_clearly_inferior_configs(self):
        configs = [{"id": i} for i in range(6)]
        true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}
        result = race(
            configs,
            instances=list(range(30)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=4,
        )
        assert result.survivors[0] in (0, 1)
        assert len(result.survivors) < 6
        assert set(result.eliminated_after) & {2, 3, 4, 5}

    def test_ttest_variant_also_eliminates(self):
        configs = [{"id": i} for i in range(4)]
        true_costs = {0: 0.1, 1: 0.8, 2: 0.9, 3: 0.85}
        result = race(
            configs,
            instances=list(range(30)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=4,
            test="ttest",
        )
        assert result.survivors[0] == 0
        assert len(result.survivors) < 4

    def test_min_survivors_respected(self):
        configs = [{"id": i} for i in range(5)]
        true_costs = {0: 0.1, 1: 0.9, 2: 0.9, 3: 0.9, 4: 0.9}
        result = race(
            configs,
            instances=list(range(40)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=3,
            min_survivors=3,
        )
        assert len(result.survivors) >= 3

    def test_budget_bounds_evaluations(self):
        configs = [{"id": i} for i in range(5)]
        true_costs = {i: 0.5 for i in range(5)}
        result = race(
            configs,
            instances=list(range(100)),
            evaluate=_noisy_evaluator(true_costs),
            budget=37,
        )
        assert result.evaluations <= 37

    def test_identical_configs_not_eliminated(self):
        configs = [{"id": i} for i in range(3)]
        result = race(
            configs,
            instances=list(range(12)),
            evaluate=lambda c, i: 0.5,
            first_test=3,
        )
        assert len(result.survivors) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            race([], [1], lambda c, i: 0.0)
        with pytest.raises(ValueError):
            race([{}], [], lambda c, i: 0.0)
        with pytest.raises(ValueError):
            race([{}], [1], lambda c, i: 0.0, test="anova")

    def test_early_exit_stops_lone_candidate_after_one_instance(self):
        """A lone survivor has already won: the remaining instance block
        is never evaluated (regression for the full-block walk the old
        loop performed)."""
        calls = []

        def evaluate(config, instance):
            calls.append(instance)
            return 0.5

        result = race([{"id": 0}], instances=list(range(10)),
                      evaluate=evaluate)
        assert result.survivors == [0]
        assert result.instances_used == 1 and result.evaluations == 1
        assert calls == [0]

    def test_early_exit_false_restores_full_block(self):
        result = race([{"id": 0}], instances=list(range(10)),
                      evaluate=lambda c, i: 0.5, early_exit=False)
        assert result.instances_used == 10 and result.evaluations == 10

    def test_early_exit_after_elimination_to_min_survivors_one(self):
        configs = [{"id": i} for i in range(4)]
        true_costs = {0: 0.1, 1: 0.8, 2: 0.9, 3: 0.85}
        kwargs = dict(
            instances=list(range(30)),
            evaluate=_noisy_evaluator(true_costs),
            first_test=4, min_survivors=1, test="ttest",
        )
        early = race(configs, **kwargs)
        full = race(configs, early_exit=False, **kwargs)
        assert early.survivors == [0] == full.survivors
        assert early.instances_used < 30
        assert full.instances_used == 30
        assert early.eliminated_after == full.eliminated_after

    def test_early_exit_identical_across_modes(self):
        def evaluate(config, instance):
            return 0.1 * config["id"] + 0.01 * instance

        records = []
        for mode in ("sync", "async"):
            result = race([{"id": 0}], instances=list(range(8)),
                          evaluate=evaluate, mode=mode, poll_interval=0.0)
            records.append(result.decision_record())
        assert records[0] == records[1]
        assert records[0]["instances_used"] == 1

    def test_survivors_ordered_by_mean_cost(self):
        configs = [{"id": i} for i in range(4)]
        true_costs = {0: 0.4, 1: 0.2, 2: 0.3, 3: 0.1}
        result = race(
            configs,
            instances=list(range(8)),
            evaluate=_noisy_evaluator(true_costs, sigma=0.0),
            first_test=9,  # no elimination: pure evaluation
        )
        means = [result.mean_costs[i] for i in result.survivors]
        assert means == sorted(means)
        assert result.survivors[0] == 3
