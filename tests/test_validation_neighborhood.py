"""Near-optimum worst-case search (Figures 7/8 machinery)."""

from repro.tuning.parameters import CategoricalParam, OrdinalParam, ParamSpace
from repro.validation.neighborhood import worst_near_optimum


def _space_and_cost():
    space = ParamSpace([
        OrdinalParam("a", [0, 1, 2, 3, 4]),
        OrdinalParam("b", [0, 1, 2, 3, 4]),
        CategoricalParam("c", ["x", "y", "z"]),
    ])
    tuned = {"a": 2, "b": 2, "c": "y"}

    def mean_error(assignment):
        err = 0.02
        err += 0.10 * abs(assignment["a"] - 2)
        err += 0.20 * abs(assignment["b"] - 2)
        err += 0.0 if assignment["c"] == "y" else 0.15
        return err

    return space, tuned, mean_error


class TestWorstNearOptimum:
    def test_finds_multi_parameter_worst_case(self):
        space, tuned, mean_error = _space_and_cost()
        result = worst_near_optimum(space, tuned, mean_error)
        # Every damaging parameter deviated by one step: 0.02+0.1+0.2+0.15.
        assert result.worst_mean_error >= 0.4
        assert result.tuned_mean_error == mean_error(tuned)
        assert len(result.deviated_params) == 3

    def test_deviations_are_single_step(self):
        space, tuned, mean_error = _space_and_cost()
        result = worst_near_optimum(space, tuned, mean_error)
        for name, value in result.worst_assignment.items():
            param = space.get(name)
            if value != tuned[name] and param.kind == "ordinal":
                assert abs(param.index_of(value) - param.index_of(tuned[name])) == 1

    def test_flat_cost_keeps_optimum(self):
        space, tuned, _ = _space_and_cost()
        result = worst_near_optimum(space, tuned, lambda a: 0.05)
        assert result.worst_assignment == tuned
        assert result.deviated_params == []

    def test_per_benchmark_reporting(self):
        space, tuned, mean_error = _space_and_cost()
        result = worst_near_optimum(
            space, tuned, mean_error,
            per_benchmark_error=lambda a: {"wl1": mean_error(a)},
        )
        assert "wl1" in result.per_benchmark
        assert "worst near-optimum" in result.summary()

    def test_evaluation_count_reported(self):
        space, tuned, mean_error = _space_and_cost()
        result = worst_near_optimum(space, tuned, mean_error, random_restarts=4)
        assert result.evaluations > len(space)
