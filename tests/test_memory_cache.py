"""Cache timing model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.prefetcher import NextLinePrefetcher, StridePrefetcher


def _l1(next_level=None, **kwargs) -> Cache:
    defaults = dict(
        name="L1",
        size=1024,
        assoc=2,
        line_size=64,
        hit_latency=2,
        mshr_entries=4,
        next_level=next_level,
    )
    defaults.update(kwargs)
    return Cache(**defaults)


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        dram = DramModel(latency=100)
        cache = _l1(next_level=dram)
        t_miss = cache.access_line(5, 0)
        assert t_miss >= 100
        t_hit = cache.access_line(5, t_miss)
        assert t_hit - t_miss <= cache.hit_latency + 1
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_hit_latency_value(self):
        cache = _l1()
        cache.access_line(1, 0)
        done = cache.access_line(1, 100)
        assert done == 100 + 2

    def test_serial_tag_data_adds_cycle(self):
        parallel = _l1()
        serial = _l1(serial_tag_data=True)
        parallel.access_line(1, 0)
        serial.access_line(1, 0)
        assert serial.access_line(1, 100) == parallel.access_line(1, 100) + 1

    def test_capacity_eviction(self):
        cache = _l1()  # 1KB/2-way/64B = 8 sets, 16 lines
        for line in range(17):
            cache.access_line(line, line * 1000)
        assert cache.resident_lines() <= 16
        assert not cache.contains(0)  # set 0 held lines 0,8 then 16 evicted 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            _l1(size=1000)  # not divisible by assoc*line
        with pytest.raises(ValueError):
            _l1(hit_latency=0)


class TestPorts:
    def test_port_contention_serialises_same_cycle_accesses(self):
        cache = _l1(ports=1)
        cache.access_line(1, 0)
        cache.access_line(2, 0)
        a = cache.access_line(1, 50)
        b = cache.access_line(2, 50)
        assert b == a + 1  # second access waits for the single port

    def test_two_ports_allow_parallel_hits(self):
        cache = _l1(ports=2)
        cache.access_line(1, 0)
        cache.access_line(2, 0)
        a = cache.access_line(1, 50)
        b = cache.access_line(2, 50)
        assert a == b


class TestWriteback:
    def test_dirty_eviction_writes_back(self):
        dram = DramModel(latency=50, page_hit_latency=30)
        cache = _l1(next_level=dram)
        cache.access_line(0, 0, is_write=True)
        # Evict line 0 by filling its set (set 0 of 8): lines 8 and 16.
        cache.access_line(8, 1000)
        cache.access_line(16, 2000)
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_silent(self):
        dram = DramModel(latency=50, page_hit_latency=30)
        cache = _l1(next_level=dram)
        cache.access_line(0, 0)
        cache.access_line(8, 1000)
        cache.access_line(16, 2000)
        assert cache.stats.writebacks == 0


class TestVictimCache:
    def test_victim_hit_avoids_downstream(self):
        dram = DramModel(latency=100)
        cache = _l1(next_level=dram, victim_entries=4)
        cache.access_line(0, 0)
        cache.access_line(8, 1000)
        cache.access_line(16, 2000)   # line 0 evicted into victim buffer
        before = dram.accesses
        done = cache.access_line(0, 3000)
        assert dram.accesses == before  # served by the victim cache
        assert done - 3000 < 100
        assert cache.stats.victim_hits == 1


class TestMSHR:
    def test_concurrent_misses_limited_by_mshrs(self):
        dram = DramModel(latency=100, bandwidth=16)
        limited = _l1(next_level=dram, mshr_entries=1, size=4096, assoc=4)
        times = [limited.access_line(line, 0) for line in range(4)]
        # With one MSHR the misses serialise (open-page fills ~90cy each).
        assert times[-1] >= 300

        dram2 = DramModel(latency=100, bandwidth=16)
        wide = _l1(next_level=dram2, mshr_entries=8, size=4096, assoc=4)
        times2 = [wide.access_line(line, 0) for line in range(4)]
        assert times2[-1] < times[-1]

    def test_miss_merge_shares_completion(self):
        dram = DramModel(latency=100)
        cache = _l1(next_level=dram)
        first = cache.access_line(3, 0)
        merged = cache.access_line(3, 1)  # while still in flight
        assert merged <= first
        assert cache.stats.mshr_merges == 1
        assert dram.accesses == 1


class TestPrefetch:
    def test_nextline_prefetch_hides_latency(self):
        dram = DramModel(latency=100, bandwidth=8)
        cache = _l1(
            next_level=dram,
            prefetcher=NextLinePrefetcher(degree=2, on_hit=True),
            size=4096,
            assoc=4,
            mshr_entries=8,
        )
        cache.access_line(0, 0)
        assert cache.stats.prefetches_issued >= 1
        # Line 1 was prefetched: the demand access is a hit.
        done = cache.access_line(1, 500)
        assert done - 500 <= cache.hit_latency + 1
        assert cache.stats.prefetch_hits >= 1

    def test_stride_prefetcher_counts_late_hits(self):
        dram = DramModel(latency=200)
        cache = _l1(
            next_level=dram,
            prefetcher=StridePrefetcher(degree=1, on_hit=True),
            size=8192,
            assoc=4,
            mshr_entries=8,
        )
        t = 0
        for i in range(12):
            t = cache.access_line(i * 2, t, pc=0x40)  # stride-2 stream
        assert cache.stats.prefetches_issued > 0

    def test_prefetch_not_counted_as_demand(self):
        dram = DramModel(latency=100)
        cache = _l1(next_level=dram, prefetcher=NextLinePrefetcher(degree=1))
        cache.access_line(0, 0)
        assert cache.stats.accesses == 1


class TestInvariants:
    @given(
        lines=st.lists(st.integers(0, 63), min_size=1, max_size=200),
        writes=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_accounting_invariants(self, lines, writes):
        dram = DramModel(latency=80, page_hit_latency=50)
        cache = _l1(next_level=dram, size=2048, assoc=2)
        t = 0
        for i, line in enumerate(lines):
            is_write = writes[i % len(writes)]
            done = cache.access_line(line, t, is_write=is_write)
            assert done >= t
            t = done
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(lines)
        assert cache.resident_lines() <= (2048 // 64)
        # Monotone time, no negative counters.
        assert stats.writebacks >= 0 and stats.victim_hits == 0
