"""Trace mix statistics."""

from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg
from repro.trace.record import DynInst, Trace
from repro.trace.stats import compute_trace_stats


def _mixed_trace():
    records = []
    pc = 0x1000
    word_ld = encode(OpClass.LOAD, int_reg(1), int_reg(2))
    word_st = encode(OpClass.STORE, -1, int_reg(2), int_reg(1))
    word_br = encode(OpClass.BRANCH, -1, int_reg(3))
    word_ind = encode(OpClass.IBRANCH, -1, int_reg(4))
    word_fp = encode(OpClass.FPALU, 40, 41, 42)
    for i in range(10):
        records.append(DynInst(pc, word_ld, addr=0x4000 + i * 64))
        pc += 4
    records.append(DynInst(pc, word_st, addr=0x8000)); pc += 4
    records.append(DynInst(pc, word_br, taken=True, target=0x1000)); pc += 4
    records.append(DynInst(pc, word_ind, taken=True, target=0x1000)); pc += 4
    records.append(DynInst(pc, word_fp)); pc += 4
    return Trace(records, name="mixed")


class TestTraceStats:
    def test_counts(self):
        stats = compute_trace_stats(_mixed_trace())
        assert stats.instructions == 14
        assert stats.loads == 10
        assert stats.stores == 1
        assert stats.branches == 2
        assert stats.taken_branches == 2
        assert stats.indirect_branches == 1
        assert stats.fp_ops == 1

    def test_fractions_sum_sensibly(self):
        stats = compute_trace_stats(_mixed_trace())
        assert abs(stats.load_fraction - 10 / 14) < 1e-9
        assert abs(stats.mem_fraction - 11 / 14) < 1e-9
        assert 0 < stats.branch_fraction < 1

    def test_unique_cachelines_counted_at_line_granularity(self):
        stats = compute_trace_stats(_mixed_trace(), line_size=64)
        # 10 loads at 64-byte stride -> 10 lines, plus the store line.
        assert stats.unique_cachelines == 11

    def test_opclass_breakdown_uses_names(self):
        stats = compute_trace_stats(_mixed_trace())
        assert stats.opclass_counts["LOAD"] == 10
        assert stats.opclass_counts["FPALU"] == 1
