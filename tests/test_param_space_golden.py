"""Registry-derived tuning spaces == the pre-registry hand-written ones.

``tests/golden/param_spaces.json`` was captured from the hand-written
``validation/steps.py`` lists at commit ``ecc52f4``, immediately before
the component-registry refactor: parameter names, kinds, candidate
values (in order), conditional-activation snapshots under three probe
assignments, and the per-component-round parameter selections. The
derived stage-1/stage-2 spaces must reproduce all of it exactly — the
contract that makes deriving the spaces from declarations safe.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.components import derive_param_space, domain_param_names

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "param_spaces.json")

with open(GOLDEN_PATH, encoding="utf-8") as _fh:
    GOLDEN = json.load(_fh)

#: The activation probes the golden recorded: one empty assignment (all
#: conditions fall back to defaults), one with every component slot set
#: to its null choice, one with every slot enabled.
PROBES = {
    "empty": {},
    "all-null": {"l1d.prefetcher": "none", "l2.prefetcher": "none",
                 "l1i.prefetcher": "none", "branch.indirect": "none"},
    "all-on": {"l1d.prefetcher": "stride", "l2.prefetcher": "stride",
               "l1i.prefetcher": "nextline", "branch.indirect": "tagged"},
}

CASES = [(core, stage) for core in ("inorder", "ooo") for stage in (1, 2)]


@pytest.mark.parametrize("core,stage", CASES,
                         ids=[f"{c}-stage{s}" for c, s in CASES])
def test_derived_space_is_value_identical_to_pre_registry(core, stage):
    golden = GOLDEN[f"{core}-stage{stage}"]
    space = derive_param_space(core, stage=stage)
    derived = [{"name": p.name, "kind": p.kind, "values": p.values}
               for p in space]
    assert derived == golden["params"]
    assert space.total_combinations() == golden["total_combinations"]


@pytest.mark.parametrize("core,stage", CASES,
                         ids=[f"{c}-stage{s}" for c, s in CASES])
def test_conditional_activation_matches_pre_registry(core, stage):
    golden = GOLDEN[f"{core}-stage{stage}"]
    space = derive_param_space(core, stage=stage)
    for probe, assignment in PROBES.items():
        active = sorted(p.name for p in space.active_params(assignment))
        assert active == golden["active"][probe], probe


@pytest.mark.parametrize("core", ["inorder", "ooo"])
def test_component_round_selection_matches_pre_registry(core):
    space = derive_param_space(core, stage=2)
    for component, expected in GOLDEN["component-rounds"][core].items():
        names = domain_param_names(core, component, stage=2)
        selected = [p.name for p in space if p.name in names]
        assert selected == expected, component
