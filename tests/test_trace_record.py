"""In-memory trace behaviour."""

from repro.isa.decoder import BuggyDecoder, Decoder
from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, fp_reg
from repro.trace.record import DynInst, Trace


def _fp_trace():
    word = encode(OpClass.FPMUL, fp_reg(1), fp_reg(2), fp_reg(3))
    return Trace([DynInst(0x100 + 4 * i, word) for i in range(4)], name="fp")


class TestTrace:
    def test_len_iter_getitem(self):
        trace = _fp_trace()
        assert len(trace) == 4
        assert list(trace)[0] is trace[0]
        assert trace.instruction_count() == 4

    def test_decoded_with_is_cached_per_decoder(self):
        trace = _fp_trace()
        decoder = Decoder()
        assert trace.decoded_with(decoder) is trace.decoded_with(decoder)

    def test_decoded_with_cached_per_library_not_instance(self):
        # Temporary decoder instances of one class share the cache entry;
        # id-keying would let a freed decoder alias a new allocation.
        trace = _fp_trace()
        assert trace.decoded_with(Decoder()) is trace.decoded_with(Decoder())

    def test_decoded_with_distinguishes_decoders(self):
        trace = _fp_trace()
        correct = trace.decoded_with(Decoder())
        buggy = trace.decoded_with(BuggyDecoder())
        assert correct[0].src2 == fp_reg(3)
        assert buggy[0].src2 == NO_REG

    def test_dyninst_equality_and_repr(self):
        a = DynInst(0x10, 5, addr=7, taken=True, target=0x20)
        b = DynInst(0x10, 5, addr=7, taken=True, target=0x20)
        assert a == b
        assert a != DynInst(0x10, 5)
        assert "taken" in repr(a)
