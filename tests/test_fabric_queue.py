"""Fabric job queue: leases, expiry requeue, retries, dead letters.

The suite is the :class:`repro.fabric.api.TaskQueue` *conformance*
suite: the ``queue`` fixture is parametrized over the SQLite
implementation and :class:`repro.service.client.HttpQueue` against a
live in-process :class:`repro.service.server.ExperimentService`, so
every lease/retry/dead-letter semantic below is asserted once and
holds on both transports. Only :class:`TestSchema` stays SQLite-only
(it pokes the raw connection).
"""

import time

import pytest

from repro.fabric.queue import FABRIC_SCHEMA_VERSION, JobQueue

TEST_TOKEN = "conformance-secret"


@pytest.fixture(params=["sqlite", "http"])
def queue(request, tmp_path):
    path = tmp_path / "fab.sqlite"
    if request.param == "sqlite":
        q = JobQueue(path, lease_seconds=30.0, max_attempts=3)
        # Second handle for tests that need a concurrent producer (the
        # long-poll wake tests); a JobQueue connection is not shared
        # across threads.
        q.conformance_peer = lambda: JobQueue(path, lease_seconds=30.0,
                                              max_attempts=3)
        yield q
        q.close()
        return
    from repro.service.client import HttpQueue
    from repro.service.server import ExperimentService

    service = ExperimentService(path, token=TEST_TOKEN, port=0,
                                max_attempts=3).start()
    q = HttpQueue(service.url, token=TEST_TOKEN, lease_seconds=30.0)
    q.conformance_peer = lambda: HttpQueue(service.url, token=TEST_TOKEN,
                                           lease_seconds=30.0)
    yield q
    q.close()
    service.stop()
    service.close()


def _tasks(n, kind="sleep"):
    return [(f"task-{i:03d}", kind, {"seconds": 0.0, "i": i}) for i in range(n)]


class TestEnqueue:
    def test_enqueue_counts_new_rows(self, queue):
        assert queue.enqueue(_tasks(3)) == 3
        assert queue.counts()["queued"] == 3

    def test_enqueue_is_idempotent_by_key(self, queue):
        queue.enqueue(_tasks(3))
        assert queue.enqueue(_tasks(5)) == 2  # only the two new keys
        assert queue.depth() == 5

    def test_enqueue_never_resets_finished_tasks(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        queue.complete(task.key, "w1")
        assert queue.enqueue(_tasks(1)) == 0
        assert queue.counts()["done"] == 1

    def test_empty_enqueue(self, queue):
        assert queue.enqueue([]) == 0


class TestClaim:
    def test_claim_oldest_first(self, queue):
        queue.enqueue(_tasks(2))
        assert queue.claim("w1").key == "task-000"
        assert queue.claim("w1").key == "task-001"
        assert queue.claim("w1") is None

    def test_claim_carries_payload_and_attempts(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert task.payload["i"] == 0
        assert task.kind == "sleep"
        assert task.attempts == 1 and task.max_attempts == 3

    def test_leased_task_is_not_reclaimable_while_lease_holds(self, queue):
        queue.enqueue(_tasks(1))
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_expired_lease_is_reclaimable(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1", lease_seconds=0.05)
        time.sleep(0.1)
        again = queue.claim("w2")
        assert again is not None and again.key == task.key
        assert again.attempts == 2

    def test_heartbeat_extends_lease(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1", lease_seconds=0.15)
        time.sleep(0.08)
        assert queue.heartbeat(task.key, "w1", lease_seconds=5.0)
        time.sleep(0.1)  # original lease would have expired by now
        assert queue.claim("w2") is None

    def test_heartbeat_fails_after_lease_lost(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        queue.claim("w2")
        assert not queue.heartbeat(task.key, "w1")


class TestCompleteAndFail:
    def test_complete_marks_done(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert queue.complete(task.key, "w1")
        assert queue.counts()["done"] == 1
        assert queue.claim("w1") is None

    def test_complete_rejected_after_lease_stolen(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        assert queue.claim("w2") is not None  # stole the expired lease
        assert not queue.complete(task.key, "w1")
        assert queue.complete(task.key, "w2")
        # The straggler stays rejected even after the finisher is done:
        # attribution (and the finisher's stats) must not be overwritten.
        assert not queue.complete(task.key, "w1")
        assert queue.states([task.key]) == {task.key: "done"}

    def test_complete_is_idempotent_for_the_finisher(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert queue.complete(task.key, "w1")
        assert queue.complete(task.key, "w1")

    def test_fail_requeues_within_budget(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert queue.fail(task.key, "w1", "boom") == "queued"
        assert queue.errors(task.key) == "boom"
        assert queue.claim("w2").attempts == 2

    def test_fail_dead_letters_after_budget(self, queue):
        queue.enqueue(_tasks(1))
        for attempt in range(1, 4):
            task = queue.claim(f"w{attempt}")
            assert task is not None
            state = queue.fail(task.key, f"w{attempt}", f"boom {attempt}")
        assert state == "dead"
        assert queue.claim("w9") is None
        dead = queue.dead()
        assert len(dead) == 1
        key, attempts, error = dead[0]
        assert attempts == 3 and error == "boom 3"

    def test_expiry_alone_exhausts_the_claim_budget(self, queue):
        """Three leases dying without a word dead-letter the task."""
        queue.enqueue(_tasks(1))
        for _ in range(3):
            assert queue.claim("w1", lease_seconds=0.01) is not None
            time.sleep(0.03)
        assert queue.claim("w2") is None  # 4th claim dead-letters instead
        assert queue.counts()["dead"] == 1

    def test_requeue_dead_restores_budget(self, queue):
        queue.enqueue(_tasks(1))
        for attempt in range(3):
            task = queue.claim("w1")
            queue.fail(task.key, "w1", "boom")
        assert queue.counts()["dead"] == 1
        assert queue.requeue_dead() == 1
        task = queue.claim("w1")
        assert task is not None and task.attempts == 1


class TestCancel:
    """Speculative-work withdrawal: ``cancel`` deletes *queued* rows only.

    The async race cancels in-flight speculation for eliminated
    candidates; a task already leased (a worker is computing it) or
    finished must be left alone — the content-addressed result is
    harmless and the worker's completion must not race a deletion.
    """

    def test_cancel_removes_queued_tasks(self, queue):
        queue.enqueue(_tasks(3))
        cancelled = queue.cancel(["task-001", "task-002"])
        assert cancelled == ["task-001", "task-002"]
        assert queue.depth() == 1
        assert queue.states(["task-001"]) == {}

    def test_cancel_preserves_input_order(self, queue):
        queue.enqueue(_tasks(3))
        assert queue.cancel(["task-002", "task-000"]) \
            == ["task-002", "task-000"]

    def test_cancel_skips_leased_tasks(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert queue.cancel([task.key]) == []
        assert queue.counts()["leased"] == 1
        assert queue.complete(task.key, "w1")  # worker unaffected

    def test_cancel_skips_done_and_dead_tasks(self, queue):
        queue.enqueue(_tasks(2))
        task = queue.claim("w1")
        queue.complete(task.key, "w1")
        for _ in range(3):
            other = queue.claim("w2")
            queue.fail(other.key, "w2", "boom")
        assert queue.cancel(["task-000", "task-001"]) == []
        counts = queue.counts()
        assert counts["done"] == 1 and counts["dead"] == 1

    def test_cancel_unknown_keys_is_a_noop(self, queue):
        queue.enqueue(_tasks(1))
        assert queue.cancel(["nope"]) == []
        assert queue.cancel([]) == []
        assert queue.depth() == 1

    def test_cancelled_task_can_be_enqueued_again(self, queue):
        queue.enqueue(_tasks(1))
        assert queue.cancel(["task-000"]) == ["task-000"]
        assert queue.enqueue(_tasks(1)) == 1
        assert queue.claim("w1").attempts == 1


class TestBatchedClaims:
    """``claim_many``/``complete_many``: one round trip, N leases.

    The pipelined worker lives on these; every semantic of the single
    claim/complete path must hold per element of a batch, on both
    transports.
    """

    def test_claim_many_leases_oldest_first(self, queue):
        queue.enqueue(_tasks(5))
        tasks = queue.claim_many("w1", 3)
        assert [t.key for t in tasks] == ["task-000", "task-001", "task-002"]
        assert queue.counts()["leased"] == 3
        assert all(t.attempts == 1 for t in tasks)

    def test_claim_many_short_batch_when_queue_runs_dry(self, queue):
        queue.enqueue(_tasks(2))
        assert len(queue.claim_many("w1", 8)) == 2
        assert queue.claim_many("w1", 8) == []

    def test_claim_many_nonpositive_count_is_empty(self, queue):
        queue.enqueue(_tasks(1))
        assert queue.claim_many("w1", 0) == []
        assert queue.depth() == 1

    def test_claim_many_skips_other_workers_leases(self, queue):
        queue.enqueue(_tasks(3))
        queue.claim("w1")
        tasks = queue.claim_many("w2", 3)
        assert [t.key for t in tasks] == ["task-001", "task-002"]

    def test_expired_batched_leases_are_reclaimable(self, queue):
        queue.enqueue(_tasks(3))
        queue.claim_many("w1", 3, lease_seconds=0.05)
        time.sleep(0.1)
        again = queue.claim_many("w2", 3)
        assert [t.key for t in again] == ["task-000", "task-001", "task-002"]
        assert all(t.attempts == 2 for t in again)

    def test_complete_many_acks_each_item(self, queue):
        queue.enqueue(_tasks(3))
        tasks = queue.claim_many("w1", 3)
        oks = queue.complete_many([(t.key, "w1") for t in tasks])
        assert oks == [True, True, True]
        assert queue.counts()["done"] == 3

    def test_complete_many_empty_is_a_noop(self, queue):
        assert queue.complete_many([]) == []

    def test_complete_many_flags_stolen_lease_per_item(self, queue):
        queue.enqueue(_tasks(2))
        tasks = queue.claim_many("w1", 2, lease_seconds=0.05)
        time.sleep(0.1)
        stolen = queue.claim("w2")  # oldest-first: steals task-000
        assert stolen.key == "task-000"
        oks = queue.complete_many([(t.key, "w1") for t in tasks])
        assert oks == [False, True]
        assert queue.states(["task-000"]) == {"task-000": "leased"}

    def test_cancel_ignores_batched_leases(self, queue):
        """Cancel withdraws queued work only, never a batch-held lease."""
        queue.enqueue(_tasks(4))
        tasks = queue.claim_many("w1", 2)
        assert queue.cancel(["task-000", "task-001", "task-002",
                             "task-003"]) == ["task-002", "task-003"]
        oks = queue.complete_many([(t.key, "w1") for t in tasks])
        assert oks == [True, True]
        assert queue.claim_many("w1", 4) == []

    def test_cancelled_then_batch_claim_sees_nothing(self, queue):
        queue.enqueue(_tasks(2))
        queue.cancel(["task-000", "task-001"])
        assert queue.claim_many("w1", 2) == []


class TestRelease:
    """``release``: hand an unstarted lease back, attempt refunded.

    A pipelined worker that exits cleanly with prefetched-but-unstarted
    tasks releases them so the next claimer pays no attempt for the
    aborted prefetch.
    """

    def test_release_requeues_with_attempt_refund(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        assert task.attempts == 1
        assert queue.release(task.key, "w1")
        again = queue.claim("w2")
        assert again is not None and again.attempts == 1

    def test_release_rejected_after_lease_stolen(self, queue):
        queue.enqueue(_tasks(1))
        task = queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.05)
        assert queue.claim("w2") is not None
        assert not queue.release(task.key, "w1")
        assert queue.counts()["leased"] == 1

    def test_released_task_is_immediately_claimable(self, queue):
        queue.enqueue(_tasks(2))
        tasks = queue.claim_many("w1", 2)
        queue.release(tasks[1].key, "w1")
        assert queue.claim("w2").key == tasks[1].key


class TestLongPoll:
    """``claim(wait=...)``: the request parks until work appears."""

    def test_wait_returns_immediately_when_work_is_ready(self, queue):
        queue.enqueue(_tasks(1))
        t0 = time.monotonic()
        assert queue.claim("w1", wait=5.0) is not None
        assert time.monotonic() - t0 < 2.0

    def test_wait_times_out_empty_handed(self, queue):
        t0 = time.monotonic()
        assert queue.claim("w1", wait=0.2) is None
        elapsed = time.monotonic() - t0
        assert 0.15 <= elapsed < 5.0

    def test_wait_wakes_on_concurrent_enqueue(self, queue):
        import threading

        peer = queue.conformance_peer()
        try:
            feeder = threading.Timer(
                0.15, lambda: peer.enqueue(_tasks(1)))
            feeder.start()
            t0 = time.monotonic()
            task = queue.claim("w1", wait=10.0)
            elapsed = time.monotonic() - t0
            feeder.join()
            assert task is not None
            assert elapsed < 8.0  # woke for the enqueue, not the timeout
        finally:
            peer.close()

    def test_wait_wakes_on_release(self, queue):
        import threading

        queue.enqueue(_tasks(1))
        task = queue.claim("w1")
        peer = queue.conformance_peer()
        try:
            feeder = threading.Timer(
                0.15, lambda: peer.release(task.key, "w1"))
            feeder.start()
            t0 = time.monotonic()
            again = queue.claim("w2", wait=10.0)
            elapsed = time.monotonic() - t0
            feeder.join()
            assert again is not None and again.key == task.key
            assert elapsed < 8.0
        finally:
            peer.close()


class TestIntrospection:
    def test_states_and_counts(self, queue):
        queue.enqueue(_tasks(3))
        task = queue.claim("w1")
        queue.complete(task.key, "w1")
        queue.claim("w1")
        states = queue.states([t[0] for t in _tasks(3)] + ["missing"])
        assert states == {"task-000": "done", "task-001": "leased",
                          "task-002": "queued"}
        counts = queue.counts()
        assert counts == {"queued": 1, "leased": 1, "done": 1, "dead": 0}
        assert queue.depth() == 2

    def test_leases_listing(self, queue):
        queue.enqueue(_tasks(1))
        queue.claim("w1", lease_seconds=60.0)
        (lease,) = queue.leases()
        assert lease.worker == "w1"
        assert 0 < lease.remaining() <= 60.0

    def test_retries_counts_extra_claims(self, queue):
        queue.enqueue(_tasks(2))
        task = queue.claim("w1")
        queue.fail(task.key, "w1", "boom")
        queue.claim("w2")  # attempt 2 on task-000
        assert queue.retries() == 1

    def test_purge_done(self, queue):
        queue.enqueue(_tasks(2))
        task = queue.claim("w1")
        queue.complete(task.key, "w1")
        assert queue.purge_done() == 1
        assert queue.counts()["done"] == 0
        assert queue.depth() == 1


class TestWorkersTable:
    def test_register_and_beat(self, queue):
        wid = queue.register_worker(pid=123, host="testhost")
        queue.worker_beat(wid, tasks_done=5, tasks_failed=1,
                         telemetry={"unique_trials": 5})
        (row,) = queue.workers()
        assert row["worker_id"] == wid
        assert row["pid"] == 123 and row["host"] == "testhost"
        assert row["tasks_done"] == 5 and row["tasks_failed"] == 1
        assert row["telemetry"] == {"unique_trials": 5}

    def test_register_is_upsert(self, queue):
        queue.register_worker("stable-id")
        queue.register_worker("stable-id", pid=99)
        (row,) = queue.workers()
        assert row["pid"] == 99


class TestSchema:
    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with JobQueue(path) as q:
            q.enqueue(_tasks(2))
        with JobQueue(path) as q:
            assert q.depth() == 2
            assert q.schema_version == FABRIC_SCHEMA_VERSION

    def test_schema_version_mismatch_fails_loudly(self, tmp_path):
        path = tmp_path / "q.sqlite"
        with JobQueue(path) as q:
            q._conn.execute(
                "UPDATE fabric_meta SET value='999' WHERE key='schema_version'"
            )
        with pytest.raises(RuntimeError, match="schema"):
            JobQueue(path)

    def test_shares_file_with_result_store(self, tmp_path):
        """Queue tables and store tables coexist in one SQLite file."""
        from repro.store import open_store

        path = tmp_path / "shared.sqlite"
        store = open_store(path)
        with JobQueue(path) as q:
            q.enqueue(_tasks(1))
            assert q.depth() == 1
        assert store.stats()["sim_results"] == 0
        store.close()
