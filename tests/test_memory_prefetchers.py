"""Prefetcher behaviour."""

import pytest

from repro.memory.prefetcher import (
    GHBPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    build_prefetcher,
)


class TestNull:
    def test_never_prefetches(self):
        p = NullPrefetcher()
        assert p.observe(10, 0x100, hit=False) == []


class TestNextLine:
    def test_degree_controls_depth(self):
        p = NextLinePrefetcher(degree=3)
        assert p.observe(10, 0x100, hit=False) == [11, 12, 13]

    def test_on_hit_flag(self):
        quiet = NextLinePrefetcher(degree=1, on_hit=False)
        eager = NextLinePrefetcher(degree=1, on_hit=True)
        assert quiet.observe(10, 0x100, hit=True) == []
        assert eager.observe(10, 0x100, hit=True) == [11]


class TestStride:
    def test_learns_constant_stride(self):
        p = StridePrefetcher(degree=2, on_hit=True)
        out = []
        for i in range(6):
            out = p.observe(100 + 3 * i, 0x40, hit=False)
        assert out == [100 + 3 * 5 + 3, 100 + 3 * 5 + 6]

    def test_needs_confidence_before_prefetching(self):
        p = StridePrefetcher(degree=1, on_hit=True)
        assert p.observe(100, 0x40, hit=False) == []
        assert p.observe(103, 0x40, hit=False) == []  # stride learned, conf 0->?

    def test_random_stream_stays_quiet(self):
        p = StridePrefetcher(degree=2, on_hit=True)
        fired = 0
        addrs = [5, 900, 17, 4242, 33, 12]
        for addr in addrs:
            fired += len(p.observe(addr, 0x40, hit=False))
        assert fired == 0

    def test_per_pc_tables(self):
        p = StridePrefetcher(degree=1, on_hit=True, table_entries=64)
        for i in range(6):
            p.observe(100 + 2 * i, 0x40, hit=False)
            p.observe(500 + 7 * i, 0x44, hit=False)
        out_a = p.observe(112, 0x40, hit=False)
        out_b = p.observe(542, 0x44, hit=False)
        assert out_a == [114]
        assert out_b == [549]

    def test_reset(self):
        p = StridePrefetcher(degree=1, on_hit=True)
        for i in range(6):
            p.observe(100 + 2 * i, 0x40, hit=False)
        p.reset()
        assert p.observe(200, 0x40, hit=False) == []


class TestGHB:
    def test_learns_repeating_delta_sequence(self):
        p = GHBPrefetcher(degree=2, on_hit=True)
        # Period-3 delta pattern: +1, +4, +16 repeating.
        addr = 0
        fired = []
        deltas = [1, 4, 16] * 8
        for d in deltas:
            addr += d
            out = p.observe(addr, 0x40, hit=False)
            if out:
                fired.append((addr, out))
        assert fired, "GHB should predict a repeating delta sequence"
        # Check one prediction is delta-correct: after seeing (1,4) the
        # follower is 16.
        addr_at, predicted = fired[-1]
        assert predicted[0] != addr_at

    def test_validation(self):
        with pytest.raises(ValueError):
            GHBPrefetcher(buffer_entries=2)


class TestStream:
    def test_needs_stream_confirmation_before_prefetching(self):
        from repro.memory.prefetcher import StreamPrefetcher

        p = StreamPrefetcher(table_entries=4, degree=2)
        assert p.observe(100, 0x40, hit=False) == []  # allocates candidate
        # The predicted next line confirms the stream and runs ahead.
        assert p.observe(101, 0x40, hit=False) == [102, 103]
        assert p.observe(102, 0x40, hit=False) == [103, 104]

    def test_random_accesses_stay_quiet(self):
        from repro.memory.prefetcher import StreamPrefetcher

        p = StreamPrefetcher(table_entries=4, degree=2)
        fired = []
        for line in (10, 500, 77, 9000, 42, 1234):
            fired += p.observe(line, 0x40, hit=False)
        assert fired == []

    def test_table_is_bounded_fifo(self):
        from repro.memory.prefetcher import StreamPrefetcher

        p = StreamPrefetcher(table_entries=2, degree=1)
        p.observe(10, 0, hit=False)
        p.observe(20, 0, hit=False)
        p.observe(30, 0, hit=False)  # evicts the candidate anchored at 10
        assert len(p._streams) == 2
        assert p.observe(11, 0, hit=False) == []  # stream 10 was dropped

    def test_on_hit_gating_and_reset(self):
        from repro.memory.prefetcher import StreamPrefetcher

        p = StreamPrefetcher(table_entries=4, degree=1, on_hit=False)
        p.observe(100, 0, hit=False)
        assert p.observe(101, 0, hit=True) == []  # hits ignored
        p.observe(101, 0, hit=False)
        p.reset()
        assert p.observe(102, 0, hit=False) == []

    def test_validation(self):
        from repro.memory.prefetcher import StreamPrefetcher

        with pytest.raises(ValueError):
            StreamPrefetcher(table_entries=0)


class TestFactory:
    def test_known_kinds(self):
        for kind in ("none", "nextline", "stride", "ghb", "stream"):
            assert build_prefetcher(kind).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            build_prefetcher("ampm")

    def test_parameters_forwarded(self):
        p = build_prefetcher("stride", degree=4, table_entries=16, on_hit=True)
        assert p.degree == 4 and p.table_entries == 16 and p.on_hit is True
