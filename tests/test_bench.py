"""Bench subsystem: scenarios, harness, report schema, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    MAX_RUNS,
    SCHEMA_VERSION,
    BenchScenario,
    compare_runs,
    full_suite,
    get_suite,
    host_fingerprint,
    load_report,
    quick_suite,
    run_scenario,
    update_report_file,
    validate_report,
)
from repro.cli import main


class TestScenarioDeterminism:
    def test_full_suite_is_deterministic(self):
        a = full_suite()
        b = full_suite()
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.workloads for s in a] == [s.workloads for s in b]
        assert [(s.kind, s.core, s.repeats, s.scale) for s in a] == [
            (s.kind, s.core, s.repeats, s.scale) for s in b
        ]

    def test_full_suite_covers_table1_spec_trace_engine(self):
        suite = {s.name: s for s in full_suite()}
        assert suite["table1-a53"].kind == "simulate"
        assert len(suite["table1-a53"].workloads) == 40
        assert len(suite["table1-a72"].workloads) == 40
        assert suite["spec-a53"].kind == "simulate"
        assert len(suite["spec-a53"].workloads) == 11
        assert suite["trace-record"].kind == "trace"
        assert suite["engine-batch-a53"].kind == "engine"
        assert suite["engine-batch-a53"].grid
        assert suite["batched-race-step"].kind == "batch"
        # 2x2x2 grid: the 8-candidate race step of the acceptance spec.
        axes = [len(values) for _key, values in suite["batched-race-step"].grid]
        assert axes == [2, 2, 2]
        assert suite["trace-mmap-attach"].kind == "mmap"
        assert suite["service-dispatch"].kind == "service"
        assert suite["async-race-saturation"].kind == "race"
        assert suite["async-race-saturation"].grid

    def test_quick_suite_is_smaller(self):
        quick = quick_suite()
        assert all(len(s.workloads) <= 10 for s in quick)
        assert {s.kind for s in quick} == {
            "simulate", "trace", "engine", "fabric", "batch", "mmap",
            "service", "dispatch", "race",
        }

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            get_suite("nope")


class TestRunScenario:
    def test_simulate_scenario_record(self):
        scn = BenchScenario("t-sim", "simulate", core="a53",
                            workloads=("CCa", "MM"), repeats=1)
        record = run_scenario(scn)
        assert record["name"] == "t-sim"
        assert record["kind"] == "simulate"
        assert record["instructions"] > 0
        assert record["cycles"] > 0
        assert record["wall_seconds"] > 0
        assert record["instructions_per_second"] > 0
        assert record["cycles_per_second"] > 0
        assert record["telemetry"] is None

    def test_trace_scenario_record(self):
        scn = BenchScenario("t-trace", "trace", workloads=("CCa",), repeats=1)
        record = run_scenario(scn)
        assert record["kind"] == "trace"
        assert record["instructions"] > 0
        assert record["core"] is None

    def test_engine_scenario_reports_telemetry(self):
        scn = BenchScenario(
            "t-engine", "engine", core="a53", workloads=("CCa", "MM"),
            grid=(("l1d.size", (16384, 32768)),), repeats=1,
        )
        record = run_scenario(scn)
        telemetry = record["telemetry"]
        # 2 configs x 2 workloads submitted twice: second batch all hits.
        assert telemetry["requested_trials"] == 8
        assert telemetry["unique_trials"] == 4
        assert telemetry["sim_cache_hits"] == 4

    def test_fabric_scenario_reports_dispatch_overhead(self):
        scn = BenchScenario(
            "t-fabric", "fabric", core="a53", workloads=("CCa",),
            grid=(("l1d.size", (16384, 32768)),), repeats=1, scale=0.5,
        )
        record = run_scenario(scn)
        telemetry = record["telemetry"]
        assert telemetry["tasks"] == 2  # 2 configs x 1 workload
        assert telemetry["dispatch_overhead_ms_per_task"] >= 0
        assert telemetry["fabric_wall_seconds"] >= telemetry["serial_wall_seconds"] \
            or telemetry["dispatch_overhead_ms_per_task"] == 0
        assert record["instructions"] > 0

    def test_service_scenario_reports_dispatch_overhead(self):
        scn = BenchScenario(
            "t-service", "service", core="a53", workloads=("CCa",),
            grid=(("l1d.size", (16384, 32768)),), repeats=1, scale=0.5,
        )
        record = run_scenario(scn)
        telemetry = record["telemetry"]
        assert telemetry["tasks"] == 2  # 2 configs x 1 workload
        assert telemetry["dispatch_overhead_ms_per_task"] >= 0
        assert telemetry["service_wall_seconds"] > 0
        assert record["instructions"] > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            run_scenario(BenchScenario("x", "mystery"))


def _tiny_run_entry(name="t"):
    record = run_scenario(
        BenchScenario(name, "simulate", core="a53", workloads=("CCa",), repeats=1)
    )
    return {
        "timestamp": "2026-07-29T00:00:00Z",
        "suite": "quick",
        "git": None,
        "scenarios": [record],
        "totals": {
            "simulate_instructions": record["instructions"],
            "simulate_wall_seconds": record["wall_seconds"],
            "simulate_instructions_per_second": record["instructions_per_second"],
        },
    }


class TestReportFile:
    def test_emit_and_update(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        report = update_report_file(path, _tiny_run_entry())
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["host"] == host_fingerprint()
        assert len(report["runs"]) == 1
        # Updating appends instead of clobbering.
        report = update_report_file(path, _tiny_run_entry("t2"))
        assert len(report["runs"]) == 2
        on_disk = load_report(path)
        assert on_disk == report

    def test_history_is_bounded(self, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        entry = _tiny_run_entry()
        report = None
        for _ in range(MAX_RUNS + 3):
            report = update_report_file(path, entry)
        assert len(report["runs"]) == MAX_RUNS

    def test_invalid_existing_file_is_not_clobbered(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text('{"schema_version": 999}')
        with pytest.raises(ValueError, match="invalid bench report"):
            update_report_file(str(path), _tiny_run_entry())
        assert json.loads(path.read_text()) == {"schema_version": 999}

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            validate_report([])
        with pytest.raises(ValueError):
            validate_report({"schema_version": SCHEMA_VERSION})
        good = {
            "schema_version": SCHEMA_VERSION,
            "host": host_fingerprint(),
            "runs": [_tiny_run_entry()],
        }
        validate_report(good)
        bad = json.loads(json.dumps(good))
        bad["runs"][0]["scenarios"][0]["wall_seconds"] = 0
        with pytest.raises(ValueError, match="wall_seconds"):
            validate_report(bad)

    def test_repo_bench_report_is_valid(self):
        """The committed perf baseline must always parse and validate."""
        import glob
        import os

        root = os.path.join(os.path.dirname(__file__), "..")
        reports = glob.glob(os.path.join(root, "BENCH_*.json"))
        assert reports, "no committed BENCH_*.json perf baseline"
        for report_path in reports:
            report = load_report(report_path)
            names = {s["name"] for run in report["runs"] for s in run["scenarios"]}
            assert "table1-a53" in names

    def test_committed_baseline_shows_speedup(self):
        """The recorded perf trajectory: the best recorded run ≥2x the
        pre-PR entry on the Table-I (in-order) suite.

        Best-over-runs, not latest-vs-first: the file accumulates runs
        taken months apart on a VM whose underlying host (and kernel)
        drifts, so a later entry measured on a slower host must not
        erase the recorded optimisation. Within-PR regressions are the
        job of ``repro bench --compare``, which diffs same-day runs.
        """
        import glob
        import os

        root = os.path.join(os.path.dirname(__file__), "..")
        report = load_report(sorted(glob.glob(os.path.join(root, "BENCH_*.json")))[0])
        runs = report["runs"]
        first = {s["name"]: s for s in runs[0]["scenarios"]}
        best = max(
            s["instructions_per_second"]
            for run in runs[1:] for s in run["scenarios"]
            if s["name"] == "table1-a53"
        )
        ratio = best / first["table1-a53"]["instructions_per_second"]
        assert ratio >= 2.0, f"table1-a53 speedup regressed to {ratio:.2f}x"


class TestBenchCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1-a53" in out
        assert "engine-batch-a53" in out

    def test_bench_quick_writes_valid_report(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_ci.json")
        assert main(["bench", "--quick", "--repeat", "1", "--out", path]) == 0
        out = capsys.readouterr().out
        assert "table1-a53-quick" in out
        assert "engine telemetry" in out
        assert "batched race step" in out
        assert "trace attach" in out
        report = load_report(path)
        assert report["runs"][0]["suite"] == "quick"


class TestNewScenarioRunners:
    def test_batch_scenario_reports_fusion_speedup(self):
        scn = BenchScenario("t-batch", "batch", core="a53",
                            workloads=("CCa", "MM"),
                            grid=(("branch.mispredict_penalty", (6, 9)),
                                  ("l1d.size", (16384, 32768))),
                            repeats=1)
        record = run_scenario(scn)
        t = record["telemetry"]
        assert t["candidates"] == 4
        # instructions is the *effective* per-candidate count: K passes
        # worth of work delivered by one shared pass.
        assert record["instructions"] > 0
        assert record["instructions"] % t["candidates"] == 0
        assert t["isolated_wall_seconds"] > 0
        assert t["batched_wall_seconds"] > 0
        assert t["speedup_vs_isolated"] > 0
        assert t["speedup_vs_warm_serial"] > 0

    def test_race_scenario_reports_saturation(self):
        scn = BenchScenario("t-race", "race", core="a53",
                            workloads=("CCa", "ED1"),
                            grid=(("l1d.size", (16384, 32768)),),
                            repeats=1, scale=0.25)
        record = run_scenario(scn)
        t = record["telemetry"]
        assert t["candidates"] == 2 and t["instances"] == 2
        assert t["tasks"] == 4 and t["workers"] == 2
        assert 0 < t["sync_busy_fraction"] <= 1
        assert 0 < t["async_busy_fraction"] <= 1
        assert t["saturation_gain"] > 0 and t["wall_speedup"] > 0
        assert record["instructions"] > 0

    def test_mmap_scenario_attaches_every_blob(self):
        scn = BenchScenario("t-mmap", "mmap", core="a53",
                            workloads=("CCa", "ED1"), repeats=1)
        record = run_scenario(scn)
        t = record["telemetry"]
        assert t["blobs"] == 2
        assert t["attach_wall_seconds"] > 0
        assert t["build_persist_wall_seconds"] > 0
        assert record["instructions"] > 0


def _compare_entry(scenarios):
    return {"scenarios": [
        {"name": name, "instructions_per_second": ips}
        for name, ips in scenarios
    ]}


class TestCompareRuns:
    def test_no_regression_within_threshold(self):
        base = _compare_entry([("table1-a53", 1000.0)])
        cur = _compare_entry([("table1-a53", 900.0)])  # -10% < 15%
        rows, regressions = compare_runs(base, cur, max_regression=0.15)
        assert len(rows) == 1 and not regressions
        assert rows[0]["ratio"] == pytest.approx(0.9)

    def test_regression_beyond_threshold_detected(self):
        base = _compare_entry([("table1-a53", 1000.0), ("spec-a53", 500.0)])
        cur = _compare_entry([("table1-a53", 800.0), ("spec-a53", 495.0)])
        rows, regressions = compare_runs(base, cur, max_regression=0.15)
        assert [r["name"] for r in regressions] == ["table1-a53"]
        assert regressions[0]["regressed"] is True

    def test_quick_names_fold_onto_full_baseline(self):
        base = _compare_entry([("table1-a53", 1000.0)])
        cur = _compare_entry([("table1-a53-quick", 990.0)])
        rows, regressions = compare_runs(base, cur)
        assert rows and rows[0]["name"] == "table1-a53"
        assert not regressions

    def test_unmatched_scenarios_are_skipped(self):
        base = _compare_entry([("old-name", 1000.0)])
        cur = _compare_entry([("new-name", 1.0)])
        rows, regressions = compare_runs(base, cur)
        assert rows == [] and regressions == []

    def test_cli_compare_soft_and_hard_gate(self, tmp_path, capsys):
        # A baseline claiming absurd throughput forces every scenario
        # to regress; run once per gate mode.
        absurd = _tiny_run_entry("table1-a53-quick")
        absurd["scenarios"][0]["instructions_per_second"] = 1e15
        baseline_path = str(tmp_path / "BENCH_baseline.json")
        update_report_file(baseline_path, absurd)
        out_path = str(tmp_path / "BENCH_new.json")
        assert main(["bench", "--quick", "--repeat", "1", "--out", out_path,
                     "--compare", baseline_path]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["bench", "--quick", "--repeat", "1", "--out", out_path,
                     "--compare", baseline_path, "--compare-warn"]) == 0
        assert "--compare-warn set; not failing" in capsys.readouterr().out
