"""Race conformance: async speculative scheduling decides exactly like sync.

The asynchronous race (``mode="async"``) replaces the per-step barrier
with speculative lookahead scheduling, but its elimination decisions
must be a pure function of the committed cost matrix — *which* results
are in, never *when* they arrived. This suite pins that contract:

- sync and async produce bit-identical decision records for every
  lookahead, statistical test and budget shape;
- a deterministic completion-order-shuffling fake source replays
  results in adversarial orders (reverse, interleaved, loser-first)
  and the decisions never change;
- the same holds through the real execution stack:
  {sync, async} x {serial, fabric+worker, HTTP service+worker} all
  agree on the engine-backed race, and a full validation campaign's
  JSON is byte-identical between ``--race-mode sync`` and ``async``.
"""

import json
import os
import random
import subprocess
import sys
import threading

import pytest

from repro.core.config import cortex_a53_public_config
from repro.engine import EvaluationEngine, TrialCache
from repro.engine.evaluator import AssignmentEvaluator
from repro.tuning.race import FunctionRaceSource, race
from repro.workloads.microbench import get_microbenchmark

TOKEN = "race-async-secret"


def _pure_evaluator(true_costs, sigma=0.02):
    """Deterministic pseudo-noisy cost: a pure function of (config, instance).

    Purity is the async-equivalence precondition, so the noise is seeded
    per (config, instance) rather than drawn from shared mutable state
    (the existing ``_noisy_evaluator`` depends on call order, which an
    async race legitimately changes).
    """

    def evaluate(config, instance):
        rng = random.Random(config["id"] * 1000003 + int(instance))
        return true_costs[config["id"]] + rng.gauss(0, sigma)

    return evaluate


def _decisions(mode, source=None, lookahead=2, **kwargs):
    configs = [{"id": i} for i in range(6)]
    true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}
    kwargs.setdefault("evaluate", _pure_evaluator(true_costs))
    kwargs.setdefault("first_test", 4)
    result = race(
        configs,
        instances=list(range(30)),
        mode=mode,
        lookahead=lookahead,
        source=source,
        timeout=60,
        poll_interval=0.0,
        **kwargs,
    )
    return result


class TestAsyncMatchesSync:
    """Decision-record equality over the FunctionRaceSource path."""

    @pytest.mark.parametrize("lookahead", [0, 1, 2, 5, 30])
    def test_lookahead_never_changes_decisions(self, lookahead):
        sync = _decisions("sync")
        live = _decisions("async", lookahead=lookahead)
        assert live.decision_record() == sync.decision_record()
        assert live.eliminated_after  # the race actually eliminated

    @pytest.mark.parametrize("test", ["friedman", "ttest"])
    def test_both_statistical_tests_agree(self, test):
        sync = _decisions("sync", test=test)
        live = _decisions("async", test=test)
        assert live.decision_record() == sync.decision_record()

    def test_budget_cutoff_identical(self):
        sync = _decisions("sync", budget=37)
        live = _decisions("async", budget=37, lookahead=4)
        assert live.decision_record() == sync.decision_record()
        assert live.evaluations <= 37

    def test_min_survivors_identical(self):
        sync = _decisions("sync", min_survivors=3)
        live = _decisions("async", min_survivors=3, lookahead=3)
        assert live.decision_record() == sync.decision_record()
        assert len(live.survivors) >= 3

    def test_identical_configs_never_eliminated(self):
        configs = [{"id": i} for i in range(3)]
        result = race(configs, list(range(12)), evaluate=lambda c, i: 0.5,
                      first_test=3, mode="async", poll_interval=0.0)
        assert len(result.survivors) == 3

    def test_wasted_evaluations_are_telemetry_only(self):
        """Speculation may compute results it never commits; the count is
        surfaced but excluded from the decision record."""
        live = _decisions("async", lookahead=5)
        assert live.wasted_evaluations >= 0
        assert "wasted" not in str(sorted(live.decision_record()))
        sync = _decisions("sync")
        assert sync.wasted_evaluations == 0

    def test_batch_evaluate_path_identical(self):
        configs = [{"id": i} for i in range(6)]
        true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}
        evaluate = _pure_evaluator(true_costs)

        def batch(pairs):
            return [evaluate(c, i) for c, i in pairs]

        sync = race(configs, list(range(30)), batch_evaluate=batch,
                    first_test=4)
        live = race(configs, list(range(30)), batch_evaluate=batch,
                    first_test=4, mode="async", lookahead=3,
                    poll_interval=0.0)
        assert live.decision_record() == sync.decision_record()

    def test_trial_cache_backend_identical(self):
        """Through TrialCache the async race takes the BatchSource path
        (submit_batch/poll_batch) — decisions still match sync."""
        configs = [{"id": i} for i in range(6)]
        true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}

        def run(mode):
            cache = TrialCache(_pure_evaluator(true_costs))
            return race(configs, list(range(30)), cache,
                        batch_evaluate=cache.evaluate_batch, first_test=4,
                        mode=mode, lookahead=3, poll_interval=0.0,
                        timeout=60)

        assert run("async").decision_record() == run("sync").decision_record()

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError, match="lookahead"):
            _decisions("async", lookahead=-1)


class ShuffledSource:
    """A race source that replays completions in adversarial orders.

    Work is computed eagerly at ``submit`` (the evaluator is pure), but
    ``poll`` releases exactly one result per call, chosen by ``policy``:

    - ``"reverse"`` — newest submission first (a LIFO fleet);
    - ``"interleaved"`` — alternating oldest/newest;
    - ``"loser_first"`` — highest cost first, so the doomed candidates'
      results always arrive before the winners'.

    Any of these would corrupt a scheduler that let arrival order leak
    into its statistics; the conformance tests assert none of them can.
    """

    def __init__(self, evaluate, policy):
        self.inner = FunctionRaceSource(evaluate)
        self.policy = policy
        self.done = []  # [(token, cost)] computed, not yet released
        self.polls = 0

    def submit(self, requests):
        self.inner.submit(requests)
        self.done.extend(self.inner.poll())

    def poll(self):
        self.polls += 1
        if not self.done:
            return []
        if self.policy == "reverse":
            pick = len(self.done) - 1
        elif self.policy == "interleaved":
            pick = 0 if self.polls % 2 else len(self.done) - 1
        elif self.policy == "loser_first":
            pick = max(range(len(self.done)), key=lambda k: self.done[k][1])
        else:
            raise ValueError(self.policy)
        return [self.done.pop(pick)]

    def cancel(self, tokens):
        drop = set(tokens)
        self.done = [(t, c) for t, c in self.done if t not in drop]


class TestAdversarialCompletionOrders:
    @pytest.mark.parametrize("policy",
                             ["reverse", "interleaved", "loser_first"])
    @pytest.mark.parametrize("lookahead", [0, 3])
    def test_decisions_never_change(self, policy, lookahead):
        true_costs = {0: 0.1, 1: 0.12, 2: 0.5, 3: 0.6, 4: 0.7, 5: 0.9}
        evaluate = _pure_evaluator(true_costs)
        sync = _decisions("sync", evaluate=evaluate)
        source = ShuffledSource(evaluate, policy)
        live = _decisions("async", source=source, lookahead=lookahead,
                          evaluate=evaluate)
        assert live.decision_record() == sync.decision_record()
        assert live.eliminated_after


# ---------------------------------------------------------------------------
# The real execution stack: serial / fabric / HTTP service executors.
# ---------------------------------------------------------------------------

#: Candidates split by branch and L1D behaviour; CRd/CS1 lead the
#: instance order because they separate these axes decisively (most
#: microbenchmarks tie, which would leave nothing to eliminate).
CANDIDATES = [
    {"branch.mispredict_penalty": p, "l1d.size": s}
    for p in (4, 20) for s in (1024, 32768)
]
INSTANCES = ["CRd", "CS1", "CCa", "ED1", "MD"]
WORKLOADS = [get_microbenchmark(n) for n in INSTANCES]


def _engine_decisions(board, mode, store=None, executor=None, lookahead=3):
    engine = EvaluationEngine(hw=board.core("a53"), workloads=WORKLOADS,
                              scale=0.25, store=store, executor=executor)
    try:
        evaluator = AssignmentEvaluator(engine, cortex_a53_public_config())
        cache = TrialCache(evaluator)
        result = race(
            CANDIDATES, INSTANCES, cache,
            batch_evaluate=cache.evaluate_batch,
            test="ttest", first_test=3, alpha=0.25, min_survivors=1,
            mode=mode, lookahead=lookahead, timeout=180,
        )
        return result
    finally:
        engine.close()


@pytest.fixture(scope="module")
def sync_serial_reference(board):
    """The one decision record every executor/mode pairing must match."""
    result = _engine_decisions(board, "sync")
    assert result.eliminated_after, "reference race eliminated nothing"
    return result.decision_record()


class TestExecutorConformance:
    @pytest.mark.parametrize("lookahead", [0, 3])
    def test_async_serial(self, board, sync_serial_reference, lookahead):
        live = _engine_decisions(board, "async", lookahead=lookahead)
        assert live.decision_record() == sync_serial_reference

    def test_async_fabric_with_worker(self, board, sync_serial_reference,
                                      tmp_path):
        from repro.engine.executors import FabricExecutor
        from repro.fabric import FabricWorker
        from repro.store import open_store

        store_path = tmp_path / "race.sqlite"
        store = open_store(store_path)
        worker = FabricWorker(str(store_path), poll=0.02, lease=10)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            live = _engine_decisions(
                board, "async", store=store,
                executor=FabricExecutor(store, poll=0.02))
        finally:
            worker.stop()
            thread.join(timeout=30)
            store.close()
        assert live.decision_record() == sync_serial_reference

    def test_async_http_service_with_worker(self, board,
                                            sync_serial_reference, tmp_path):
        from repro.engine.executors import FabricExecutor
        from repro.fabric import FabricWorker
        from repro.service.server import ExperimentService
        from repro.store import open_store

        service = ExperimentService(tmp_path / "svc.sqlite", token=TOKEN,
                                    port=0).start()
        store = open_store(service.url, token=TOKEN)
        worker = FabricWorker(service.url, poll=0.02, lease=10, token=TOKEN)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            live = _engine_decisions(
                board, "async", store=store,
                executor=FabricExecutor(store, poll=0.02))
        finally:
            worker.stop()
            thread.join(timeout=30)
            store.close()
            service.stop()
            service.close()
        assert live.decision_record() == sync_serial_reference


class TestCampaignByteIdentity:
    def test_async_campaign_json_matches_sync(self, tmp_path):
        """``repro validate --race-mode async`` emits byte-identical JSON
        to the synchronous run — speculation is a parallelism knob."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        outs = {}
        for mode in ("sync", "async"):
            out = tmp_path / f"{mode}.json"
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "validate",
                 "--core", "a53", "--profile", "fast", "--stages", "1",
                 "--seed", "7", "--race-mode", mode, "--lookahead", "3",
                 "--out", str(out)],
                env=env, capture_output=True, text=True, timeout=600)
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs[mode] = out.read_bytes()
        assert outs["async"] == outs["sync"]
        payload = json.loads(outs["sync"])
        assert payload["core"] == "a53" and payload["final_errors"]
