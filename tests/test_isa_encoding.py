"""Encoding/decoding of the synthetic ISA."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import EncodingError, decode_fields, encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, TOTAL_REG_COUNT

OPCLASSES = list(OpClass)
REGS = st.one_of(st.just(NO_REG), st.integers(0, TOTAL_REG_COUNT - 1))


class TestEncode:
    def test_nop_is_all_zero_word(self):
        assert encode(OpClass.NOP) == 0

    def test_zero_word_decodes_to_nop_without_operands(self):
        opclass, dst, src1, src2, imm = decode_fields(0)
        assert opclass is OpClass.NOP
        assert (dst, src1, src2, imm) == (NO_REG, NO_REG, NO_REG, 0)

    def test_encode_rejects_out_of_range_register(self):
        with pytest.raises(EncodingError):
            encode(OpClass.IALU, dst=TOTAL_REG_COUNT)

    def test_encode_rejects_negative_register_other_than_no_reg(self):
        with pytest.raises(EncodingError):
            encode(OpClass.IALU, dst=-2)

    def test_encode_rejects_large_immediate(self):
        with pytest.raises(EncodingError):
            encode(OpClass.IALU, imm=64)

    def test_distinct_fields_give_distinct_words(self):
        w1 = encode(OpClass.IALU, 1, 2, 3)
        w2 = encode(OpClass.IALU, 1, 3, 2)
        assert w1 != w2


class TestDecode:
    def test_decode_rejects_undefined_opclass(self):
        word = 31 << 27  # beyond the highest defined opclass
        with pytest.raises(EncodingError):
            decode_fields(word)

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(EncodingError):
            decode_fields(1 << 32)
        with pytest.raises(EncodingError):
            decode_fields(-1)

    def test_decode_rejects_out_of_range_operand_field(self):
        # Register field 0x7F encodes register id 126, outside the file.
        word = (int(OpClass.IALU) << 27) | (0x7F << 20)
        with pytest.raises(EncodingError):
            decode_fields(word)

    @given(
        opclass=st.sampled_from(OPCLASSES),
        dst=REGS,
        src1=REGS,
        src2=REGS,
        imm=st.integers(0, 63),
    )
    def test_roundtrip(self, opclass, dst, src1, src2, imm):
        word = encode(opclass, dst, src1, src2, imm)
        assert 0 <= word < (1 << 32)
        assert decode_fields(word) == (opclass, dst, src1, src2, imm)
