"""SIFT trace serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.trace.record import DynInst, Trace
from repro.trace.sift import SiftError, read_trace, write_trace


def _simple_trace():
    word_alu = encode(OpClass.IALU, 1, 2, 3)
    word_ld = encode(OpClass.LOAD, 4, 5)
    word_br = encode(OpClass.BRANCH, -1, 2)
    return Trace(
        [
            DynInst(0x1000, word_alu),
            DynInst(0x1004, word_ld, addr=0xBEEF0),
            DynInst(0x1008, word_br, taken=True, target=0x1000),
            DynInst(0x1000, word_alu),
        ],
        name="simple",
    )


class TestRoundTrip:
    def test_roundtrip_preserves_records_and_name(self):
        trace = _simple_trace()
        restored = read_trace(write_trace(trace))
        assert restored.name == "simple"
        assert restored.records == trace.records

    def test_empty_trace_roundtrips(self):
        restored = read_trace(write_trace(Trace([], name="empty")))
        assert len(restored) == 0 and restored.name == "empty"

    def test_unicode_name_roundtrips(self):
        trace = Trace([DynInst(0, 0)], name="bênch-µ")
        assert read_trace(write_trace(trace)).name == "bênch-µ"

    def test_compression_beats_naive_encoding(self):
        # Sequential pcs and strided addrs should delta-compress well
        # below 16 bytes/record.
        word = encode(OpClass.LOAD, 4, 5)
        records = [DynInst(0x1000 + 4 * i, word, addr=0x2000 + 64 * i) for i in range(1000)]
        data = write_trace(Trace(records))
        assert len(data) < 10 * len(records)

    dyninsts = st.builds(
        DynInst,
        pc=st.integers(0, 2**40),
        word=st.integers(0, 2**32 - 1),
        addr=st.integers(0, 2**40),
        taken=st.booleans(),
        target=st.integers(0, 2**40),
    )

    @given(records=st.lists(dyninsts, max_size=60), name=st.text(max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, records, name):
        # Normalise the fields the format does not store independently:
        # addr==0 means "no address", target only exists when taken.
        for rec in records:
            if not rec.taken:
                rec.target = 0
        restored = read_trace(write_trace(Trace(records, name=name)))
        assert restored.records == records


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(SiftError):
            read_trace(b"NOPE" + b"\x00" * 10)

    def test_bad_version_rejected(self):
        data = bytearray(write_trace(_simple_trace()))
        data[4] = 99
        with pytest.raises(SiftError):
            read_trace(bytes(data))

    def test_truncated_stream_rejected(self):
        data = write_trace(_simple_trace())
        with pytest.raises(SiftError):
            read_trace(data[: len(data) - 2])

    def test_trailing_garbage_rejected(self):
        data = write_trace(_simple_trace())
        with pytest.raises(SiftError):
            read_trace(data + b"\x00")
