"""Component registry: declarations, construction, validation, identity."""

import dataclasses

import pytest

from repro.components import (
    REGISTRY,
    Component,
    ComponentRegistry,
    Knob,
    Slot,
    build_component,
    derive_param_space,
    domain_param_names,
    registry_fingerprint,
)
from repro.core.config import SimConfig, cortex_a53_public_config


def _section_defaults(config, section):
    return dict(dataclasses.asdict(getattr(config, section)))


class TestRoundTrip:
    """Every declaration must construct and bind to real config fields."""

    def test_every_component_of_every_slot_constructs(self):
        config = cortex_a53_public_config()
        for slot in REGISTRY.slots():
            for site_section in self._sections_for(slot):
                values = _section_defaults(config, site_section)
                for comp in slot:
                    if comp.factory is None:
                        continue
                    structural = {}
                    if slot.name == "hashing":
                        structural["n_sets"] = 128
                    if slot.name == "victim":
                        values["victim_entries"] = 4  # 0 would be rejected
                    built = comp.construct(values, **structural)
                    assert built is not None

    def _sections_for(self, slot):
        sites = REGISTRY.sites(slot.name)
        if sites:
            return sorted({s.section for s in sites})
        return ["l1d"]  # structural slots bind CacheConfig fields

    def test_every_knob_maps_to_a_real_config_field(self):
        config = cortex_a53_public_config()
        for site in REGISTRY.sites():
            section = getattr(config, site.section)
            fields = {f.name for f in dataclasses.fields(section)}
            slot = REGISTRY.slot(site.slot)
            if slot.selector is not None:
                assert slot.selector in fields, (site.slot, site.section)
            for knob in slot.knobs:
                assert knob.field in fields, (site.slot, knob.field)

    def test_every_selector_field_is_registered_for_validation(self):
        config = cortex_a53_public_config()
        for (section, fieldname), slot_name in REGISTRY.selector_map.items():
            value = getattr(getattr(config, section), fieldname)
            assert value in REGISTRY.slot(slot_name).names()

    def test_build_component_helper(self):
        pf = build_component("prefetcher", "stride", {
            "prefetch_degree": 4, "prefetch_table_entries": 16,
            "prefetch_on_hit": True,
        })
        assert pf.kind == "stride" and pf.degree == 4

    def test_unknown_names_suggest(self):
        with pytest.raises(ValueError, match="did you mean 'stride'"):
            build_component("prefetcher", "strid", {})
        with pytest.raises(ValueError, match="unknown component slot"):
            build_component("prefetchers", "stride", {})


class TestEagerConfigValidation:
    """SimConfig.__post_init__ rejects bad component names up front."""

    def test_typo_in_prefetcher_rejected_at_construction(self):
        base = cortex_a53_public_config()
        with pytest.raises(ValueError, match="did you mean 'stride'"):
            base.with_updates({"l1d.prefetcher": "strid"})

    def test_typo_in_predictor_rejected(self):
        with pytest.raises(ValueError, match="branch.predictor"):
            cortex_a53_public_config().with_updates({"branch.predictor": "gshar"})

    def test_bad_page_policy_rejected(self):
        with pytest.raises(ValueError, match="page-policy"):
            cortex_a53_public_config().with_updates(
                {"memsys.dram_page_policy": "opne"})

    def test_direct_dataclass_construction_validated(self):
        from repro.core.config import BranchConfig

        with pytest.raises(ValueError):
            SimConfig(core_type="inorder",
                      branch=BranchConfig(predictor="neural"))

    def test_unknown_path_suggestion_in_with_updates(self):
        with pytest.raises(KeyError, match="did you mean"):
            cortex_a53_public_config().with_updates({"l1d.prefetchr": "stride"})


class TestStagesAndActivation:
    def test_stage3_space_offers_extension_components(self):
        for core in ("inorder", "ooo"):
            space = derive_param_space(core, stage=3)
            assert "tage" in space.get("branch.predictor").values
            assert "srrip" in space.get("l1d.replacement").values
            assert "srrip" in space.get("l2.replacement").values
            assert "skew" in space.get("l1d.hashing").values
            assert "stream" in space.get("l2.prefetcher").values
            # The L1I site is explicitly restricted and stays thin.
            assert space.get("l1i.prefetcher").values == ["none", "nextline"]

    def test_stage2_space_has_no_extension_components(self):
        space = derive_param_space("inorder", stage=2)
        assert "tage" not in space.get("branch.predictor").values
        assert "srrip" not in space.get("l1d.replacement").values

    def test_untunable_components_never_race_but_still_build(self):
        space = derive_param_space("inorder", stage=3)
        assert "static-nottaken" not in space.get("branch.predictor").values
        assert build_component("direction", "static-nottaken",
                               {"predictor_bits": 10}) is not None

    def test_gated_knobs_follow_their_selector(self):
        space = derive_param_space("ooo", stage=3)
        degree = space.get("l2.prefetch_degree")
        assert not degree.is_active({"l2.prefetcher": "none"})
        assert degree.is_active({"l2.prefetcher": "stream"})
        assert not degree.is_active({})  # absent selector counts as null
        bits = space.get("branch.predictor_bits")
        assert bits.is_active({})  # ungated: raced for every predictor

    def test_domain_names_cover_new_components_at_stage3(self):
        names = domain_param_names("inorder", "memory", stage=3)
        assert "l1d.replacement" in names and "l2.prefetcher" in names
        assert "branch.predictor" not in names


class TestIdentity:
    def test_fingerprint_is_stable(self):
        assert registry_fingerprint() == registry_fingerprint()
        assert len(registry_fingerprint()) == 16

    def test_fingerprint_tracks_candidate_sets(self):
        reg_a = ComponentRegistry()
        slot = Slot("direction", selector="predictor",
                    knobs=(Knob("predictor_bits", "ordinal", (10, 12)),))
        slot.register(Component("bimodal", dict))
        reg_a.add_slot(slot, sections=("branch",))

        reg_b = ComponentRegistry()
        slot_b = Slot("direction", selector="predictor",
                      knobs=(Knob("predictor_bits", "ordinal", (10, 12, 14)),))
        slot_b.register(Component("bimodal", dict))
        reg_b.add_slot(slot_b, sections=("branch",))

        assert reg_a.fingerprint() != reg_b.fingerprint()

    def test_sim_keys_include_registry_fingerprint(self):
        from repro.engine.keys import sim_key
        from repro.isa.decoder import Decoder

        key = sim_key(cortex_a53_public_config(), "CCa", 1.0, {}, Decoder())
        assert registry_fingerprint() in key

    def test_duplicate_registrations_rejected(self):
        slot = Slot("x", selector="y")
        slot.register(Component("a"))
        with pytest.raises(ValueError, match="already has"):
            slot.register(Component("a"))
        reg = ComponentRegistry()
        reg.add_slot(slot)
        with pytest.raises(ValueError, match="duplicate slot"):
            reg.add_slot(Slot("x"))
