"""MSHR file, store buffer, DRAM and victim cache units."""

import pytest

from repro.memory.dram import DramModel
from repro.memory.mshr import MSHRFile
from repro.memory.storebuffer import StoreBuffer
from repro.memory.victim import VictimCache


class TestMSHRFile:
    def test_allocate_free_slot_immediate(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(1, 10) == 10

    def test_allocate_blocks_when_full(self):
        mshrs = MSHRFile(1)
        mshrs.record(1, completion=100)
        assert mshrs.allocate(2, now=10) == 100

    def test_lookup_finds_inflight(self):
        mshrs = MSHRFile(4)
        mshrs.record(7, completion=50)
        assert mshrs.lookup(7, now=10) == 50
        assert mshrs.lookup(7, now=60) == -1  # expired

    def test_outstanding_count(self):
        mshrs = MSHRFile(4)
        mshrs.record(1, 100)
        mshrs.record(2, 200)
        assert mshrs.outstanding == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestStoreBuffer:
    @staticmethod
    def _write(latency=20):
        def write(line, start):
            return start + latency
        return write

    def test_push_without_pressure_is_free(self):
        sb = StoreBuffer(entries=4)
        assert sb.push(1, now=10, write=self._write()) == 10

    def test_full_buffer_stalls_until_drain(self):
        sb = StoreBuffer(entries=2)
        write = self._write(latency=50)
        sb.push(1, 0, write)   # drains at 50
        sb.push(2, 0, write)   # drains at 100
        issue = sb.push(3, 0, write)
        assert issue == 50
        assert sb.full_stalls == 1

    def test_coalescing_merges_same_line(self):
        sb = StoreBuffer(entries=2, coalescing=True)
        write = self._write(latency=50)
        sb.push(1, 0, write)
        issue = sb.push(1, 1, write)
        assert issue == 1
        assert sb.coalesced == 1
        assert sb.occupancy == 1

    def test_forwarding_hits_buffered_line(self):
        sb = StoreBuffer(entries=4, forward_latency=1)
        sb.push(9, 0, self._write(latency=100))
        assert sb.forward(9, now=5) == 6
        assert sb.forward(8, now=5) == -1
        assert sb.forwards == 1

    def test_forwarding_misses_after_drain(self):
        sb = StoreBuffer(entries=4)
        sb.push(9, 0, self._write(latency=10))
        assert sb.forward(9, now=50) == -1

    def test_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(entries=0)


class TestVictimCache:
    def test_probe_hit_removes_line(self):
        vc = VictimCache(entries=2)
        vc.insert(5, dirty=False)
        assert vc.probe(5) is True
        assert vc.probe(5) is False

    def test_overflow_returns_oldest(self):
        vc = VictimCache(entries=2)
        assert vc.insert(1, True) == (None, False)
        vc.insert(2, False)
        evicted = vc.insert(3, False)
        assert evicted == (1, True)

    def test_reinsert_merges_dirty(self):
        vc = VictimCache(entries=2)
        vc.insert(1, False)
        vc.insert(1, True)
        vc.insert(2, False)
        evicted = vc.insert(3, False)
        assert evicted == (1, True)


class TestDram:
    def test_open_page_hit_cheaper(self):
        dram = DramModel(latency=150, page_hit_latency=90, page_policy="open")
        first = dram.access(0, 0)
        second = dram.access(1, first)  # same 2KB row
        assert first == 150
        assert second - first <= 90 + 4
        assert dram.page_hits == 1

    def test_closed_policy_never_hits(self):
        dram = DramModel(latency=150, page_hit_latency=90, page_policy="closed")
        dram.access(0, 0)
        dram.access(1, 200)
        assert dram.page_hits == 0

    def test_bandwidth_limits_concurrency(self):
        narrow = DramModel(latency=100, bandwidth=1)
        times = [narrow.access(line * 64, 0) for line in range(4)]
        assert times[-1] > 100 + 3  # channel serialisation visible
        wide = DramModel(latency=100, bandwidth=8)
        times2 = [wide.access(line * 64, 0) for line in range(4)]
        assert times2[-1] <= times[-1]

    def test_access_line_adapter(self):
        dram = DramModel(latency=100)
        assert dram.access_line(1, 0, is_write=True, is_prefetch=False) >= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(latency=0)
        with pytest.raises(ValueError):
            DramModel(page_hit_latency=200, latency=100)
        with pytest.raises(ValueError):
            DramModel(page_policy="weird")
