"""Experiment service: auth, versioning, backpressure, retries, stores.

Everything here runs against a real in-process
:class:`~repro.service.server.ExperimentService` — no mocked HTTP —
because the wire behaviours under test (status codes, headers, retry
timing) only exist on a real socket.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service.client import (
    HttpBackend,
    HttpQueue,
    ServiceClient,
    ServiceError,
    fetch_status,
)
from repro.service.protocol import (
    API_PREFIX,
    TOKEN_ENV,
    WIRE_HEADER,
    WIRE_VERSION,
    redact,
    resolve_token,
)
from repro.service.server import ExperimentService

TOKEN = "unit-test-secret"


@pytest.fixture()
def service(tmp_path):
    svc = ExperimentService(tmp_path / "svc.sqlite", token=TOKEN, port=0).start()
    yield svc
    svc.stop()
    svc.close()


def _raw_request(url, token=TOKEN, wire=str(WIRE_VERSION), method="GET",
                 endpoint="handshake", body=None):
    """A hand-built request, bypassing ServiceClient's conveniences."""
    headers = {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    if wire is not None:
        headers[WIRE_HEADER] = wire
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(f"{url}{API_PREFIX}/{endpoint}",
                                     data=data, headers=headers, method=method)
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.loads(resp.read().decode())


class TestHandshakeAndVersioning:
    def test_handshake_reports_versions(self, service):
        status, card = _raw_request(service.url)
        assert status == 200
        assert card["service"] == "repro-serve"
        assert card["wire_version"] == WIRE_VERSION
        assert card["fabric_schema_version"] >= 1
        assert card["store_schema_version"] >= 1

    def test_wrong_wire_version_is_426(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_request(service.url, wire="999", method="GET",
                         endpoint="queue/counts")
        assert err.value.code == 426

    def test_handshake_is_version_exempt(self, service):
        # An old client must be able to *ask* what the server speaks.
        status, _card = _raw_request(service.url, wire=None)
        assert status == 200

    def test_client_rejects_version_skew(self, service, monkeypatch):
        import repro.service.client as client_mod

        monkeypatch.setattr(client_mod, "WIRE_VERSION", 999)
        client = ServiceClient(service.url, token=TOKEN, max_retries=0)
        with pytest.raises(ServiceError, match="wire version mismatch"):
            client.handshake()


class TestAuth:
    def test_missing_token_is_401(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_request(service.url, token=None)
        assert err.value.code == 401

    def test_wrong_token_is_401(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_request(service.url, token="wrong")
        assert err.value.code == 401

    def test_client_does_not_retry_401(self, service):
        client = ServiceClient(service.url, token="wrong", max_retries=5)
        start = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.handshake()
        assert err.value.status == 401
        assert time.monotonic() - start < 1.0  # no backoff loop

    def test_server_refuses_to_start_without_token(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TOKEN_ENV, raising=False)
        with pytest.raises(ValueError, match="token"):
            ExperimentService(tmp_path / "x.sqlite")

    def test_token_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV, "from-env")
        svc = ExperimentService(tmp_path / "x.sqlite", port=0).start()
        try:
            assert svc.token == "from-env"
            # client side resolves the same variable
            queue = HttpQueue(svc.url)
            assert queue.enqueue([("k", "sleep", {})]) == 1
        finally:
            svc.stop()
            svc.close()

    def test_resolve_token_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TOKEN_ENV, "from-env")
        assert resolve_token("explicit") == "explicit"
        assert resolve_token(None) == "from-env"
        monkeypatch.delenv(TOKEN_ENV)
        assert resolve_token(None) is None


class TestRedaction:
    def test_redact(self):
        assert redact("boom secret boom", "secret") == "boom [redacted] boom"
        assert redact("text", None) == "text"
        assert redact(None, "secret") is None

    def test_status_snapshot_never_contains_token(self, service):
        snap = fetch_status(service.url, token=TOKEN)
        assert TOKEN not in json.dumps(snap)

    def test_server_log_lines_are_redacted(self, tmp_path):
        lines = []
        svc = ExperimentService(tmp_path / "log.sqlite", token=TOKEN,
                                port=0, progress=lines.append).start()
        try:
            fetch_status(svc.url, token=TOKEN)
        finally:
            svc.stop()
            svc.close()
        assert lines  # request logging happened
        assert all(TOKEN not in line for line in lines)

    def test_http_queue_fail_redacts_error_text(self, service):
        queue = HttpQueue(service.url, token=TOKEN)
        queue.enqueue([("k", "sleep", {})])
        task = queue.claim("w1")
        queue.fail(task.key, "w1", f"exploded with {TOKEN} in the message")
        assert TOKEN not in queue.errors("k")


class TestBackpressure:
    def test_enqueue_429_with_retry_after_when_full(self, tmp_path):
        svc = ExperimentService(tmp_path / "bp.sqlite", token=TOKEN,
                                port=0, max_depth=2).start()
        try:
            queue = HttpQueue(svc.url, token=TOKEN)
            assert queue.enqueue([("a", "sleep", {}), ("b", "sleep", {})]) == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                _raw_request(svc.url, method="POST", endpoint="queue/enqueue",
                             body={"tasks": [["c", "sleep", {}]]})
            assert err.value.code == 429
            assert float(err.value.headers["Retry-After"]) > 0
            # Draining makes room again.
            task = queue.claim("w1")
            queue.complete(task.key, "w1")
            assert queue.enqueue([("c", "sleep", {})]) == 1
        finally:
            svc.stop()
            svc.close()

    def test_client_retries_through_backpressure(self, tmp_path):
        svc = ExperimentService(tmp_path / "bp2.sqlite", token=TOKEN,
                                port=0, max_depth=1).start()
        try:
            queue = HttpQueue(svc.url, token=TOKEN, max_retries=20)
            assert queue.enqueue([("a", "sleep", {})]) == 1

            def drain():
                time.sleep(0.3)
                local = HttpQueue(svc.url, token=TOKEN)
                task = local.claim("drainer")
                local.complete(task.key, "drainer")

            thread = threading.Thread(target=drain)
            thread.start()
            # Blocks in the 429 retry loop until the drainer makes room.
            assert queue.enqueue([("b", "sleep", {})]) == 1
            thread.join()
        finally:
            svc.stop()
            svc.close()


class TestRetries:
    def test_connection_refused_retries_until_server_up(self, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}"
        box = {}

        def start_late():
            time.sleep(0.5)
            box["svc"] = ExperimentService(tmp_path / "late.sqlite",
                                           token=TOKEN, port=port).start()

        thread = threading.Thread(target=start_late)
        thread.start()
        try:
            # Connects before the server exists; backoff bridges the gap.
            queue = HttpQueue(url, token=TOKEN, max_retries=12)
            assert queue.enqueue([("k", "sleep", {})]) == 1
        finally:
            thread.join()
            box["svc"].stop()
            box["svc"].close()

    def test_transient_500_is_retried(self, service, monkeypatch):
        real_counts = service.queue.counts
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient wobble")
            return real_counts()

        monkeypatch.setattr(service.queue, "counts", flaky)
        queue = HttpQueue(service.url, token=TOKEN, max_retries=4)
        assert queue.counts() == {"queued": 0, "leased": 0,
                                  "done": 0, "dead": 0}
        assert calls["n"] == 2

    def test_retry_budget_exhausts_into_service_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServiceClient(f"http://127.0.0.1:{port}", token=TOKEN,
                               max_retries=1, backoff=0.01)
        with pytest.raises(ServiceError, match="after 2 attempts"):
            client.handshake()


class TestHttpStore:
    def test_open_store_url_roundtrip(self, service):
        from repro.core.stats import SimStats
        from repro.store import open_store
        from repro.store.serialize import stats_to_payload

        remote = open_store(service.url, token=TOKEN)
        assert remote.backend.kind == "http"
        # Write through HTTP, read back through the server's own store.
        local_stats = service.store.stats()
        assert local_stats["sim_results"] == 0
        remote.backend.put("sim_results", "k1", '{"p":1}')
        assert service.store.backend.get("sim_results", "k1") == '{"p":1}'
        assert remote.backend.count("sim_results") == 1
        remote.close()

    def test_registry_and_checkpoints_pass_through(self, service):
        from repro.store import open_store

        remote = open_store(service.url, token=TOKEN)
        record = remote.registry.create("validate", core="a53",
                                        params={"profile": "fast"})
        remote.put_checkpoint(record.run_id, "stage-1", {"alive": [1, 2]})
        assert remote.get_checkpoint(record.run_id, "stage-1") == {
            "alive": [1, 2]}
        # Visible from the server's local handle: same rows, one file.
        assert service.store.registry.get(record.run_id).core == "a53"
        remote.close()

    def test_restart_preserves_state(self, tmp_path):
        path = tmp_path / "durable.sqlite"
        svc = ExperimentService(path, token=TOKEN, port=0).start()
        queue = HttpQueue(svc.url, token=TOKEN)
        queue.enqueue([(f"k{i}", "sleep", {}) for i in range(3)])
        port = svc.port
        svc.stop()
        svc.close()
        svc2 = ExperimentService(path, token=TOKEN, port=port).start()
        try:
            queue2 = HttpQueue(svc2.url, token=TOKEN)
            assert queue2.depth() == 3
        finally:
            svc2.stop()
            svc2.close()


class TestWireEfficiency:
    """Wire-speed machinery: compression, fused endpoints, telemetry."""

    def test_large_bodies_compress_and_round_trip(self, service):
        from repro.service.protocol import COMPRESS_THRESHOLD

        backend = HttpBackend(service.url, token=TOKEN)
        try:
            # Values well past the threshold in both directions.
            big = json.dumps({"blob": "x" * (4 * COMPRESS_THRESHOLD)})
            items = [(f"big-{i}", big) for i in range(4)]
            backend.put_many("sim_results", items)
            values = backend.get_many("sim_results",
                                      [key for key, _v in items] + ["nope"])
            assert all(values[key] == big for key, _v in items)
            assert values["nope"] is None
            tel = backend.client.telemetry()
            # Request body (put_many) and response body (get_many) both
            # crossed compressed.
            assert tel["wire_compressed_bodies"] >= 2
            # ... and the wire carried fewer bytes than the payload.
            assert tel["wire_bytes_out"] < sum(len(v) for _k, v in items)
        finally:
            backend.close()

    def test_small_bodies_stay_uncompressed(self, service):
        backend = HttpBackend(service.url, token=TOKEN)
        try:
            backend.put("sim_results", "small", '{"p":1}')
            assert backend.get("sim_results", "small") == '{"p":1}'
            assert backend.client.telemetry()["wire_compressed_bodies"] == 0
        finally:
            backend.close()

    def test_telemetry_counts_requests_and_bytes(self, service):
        queue = HttpQueue(service.url, token=TOKEN)
        try:
            queue.enqueue([("k1", "sleep", {})])
            queue.depth()
            tel = queue.client.telemetry()
            assert tel["wire_requests"] >= 2
            assert tel["wire_bytes_out"] > 0 and tel["wire_bytes_in"] > 0
            assert tel["wire_retries"] == 0
        finally:
            queue.close()

    def test_claim_many_prechecked_piggybacks_store_rows(self, service):
        queue = HttpQueue(service.url, token=TOKEN)
        try:
            queue.enqueue([("pk-0", "sleep", {}), ("pk-1", "sleep", {})])
            # One of the two keys already has a stored result.
            service.store.backend.put("sim_results", "pk-0", '{"done":1}')
            tasks, rows = queue.claim_many_prechecked("w1", 2)
            assert [t.key for t in tasks] == ["pk-0", "pk-1"]
            assert rows == {"pk-0": '{"done":1}', "pk-1": None}
        finally:
            queue.close()

    def test_claim_many_prechecked_empty_queue(self, service):
        queue = HttpQueue(service.url, token=TOKEN)
        try:
            assert queue.claim_many_prechecked("w1", 4) == ([], {})
        finally:
            queue.close()

    def test_complete_with_results_persists_rows_before_ack(self, service):
        queue = HttpQueue(service.url, token=TOKEN)
        try:
            queue.enqueue([("fc-0", "sleep", {})])
            task = queue.claim("w1")
            oks = queue.complete_many_with_results(
                [(task.key, "w1")], [("res-key", '{"ipc":2}')])
            assert oks == [True]
            assert queue.states(["fc-0"]) == {"fc-0": "done"}
            # The fused request wrote the store row on the server.
            assert service.store.backend.get("sim_results", "res-key") \
                == '{"ipc":2}'
        finally:
            queue.close()

    def test_complete_with_results_rows_survive_lost_lease(self, service):
        """Result rows land even when every ack is rejected (idempotent,
        content-addressed writes are never wasted)."""
        queue = HttpQueue(service.url, token=TOKEN)
        try:
            queue.enqueue([("ll-0", "sleep", {})])
            task = queue.claim("w1", lease_seconds=0.01)
            time.sleep(0.05)
            assert queue.claim("w2") is not None  # steals the lease
            oks = queue.complete_many_with_results(
                [(task.key, "w1")], [("ll-res", '{"ipc":1}')])
            assert oks == [False]
            assert service.store.backend.get("sim_results", "ll-res") \
                == '{"ipc":1}'
        finally:
            queue.close()


class TestAdaptivePollBackoff:
    """Idle result loops must stop hammering the queue/server."""

    def _scripted_executor(self, deliver_after: float):
        """A FabricExecutor whose poll is scripted against a fake clock."""
        from repro.engine.executors import FabricExecutor

        ex = FabricExecutor.__new__(FabricExecutor)
        ex.poll_interval = 0.01
        ex.poll_cap = 1.0
        ex.timeout = None
        ex.clock = 0.0
        ex.polls = 0
        ex.sleeps = []

        def poll(handle):
            ex.polls += 1
            if ex.clock >= deliver_after:
                return {(0, 0): "stats"}
            return {}

        ex.poll = poll
        ex.submit = lambda groups, decoder, registry_items=None: "handle"
        return ex

    def test_empty_polls_back_off_exponentially(self, monkeypatch):
        ex = self._scripted_executor(deliver_after=30.0)

        def fake_sleep(seconds):
            ex.sleeps.append(seconds)
            ex.clock += seconds

        monkeypatch.setattr("repro.engine.executors.time.sleep", fake_sleep)
        groups = [(["cfg"], ("wl", 1.0, ()), None)]
        out = ex.run(groups, decoder=None)
        assert out == [["stats"]]
        # 30 virtual seconds at a flat 10 ms poll would be ~3000
        # requests; the doubling backoff needs ~40.
        assert ex.polls < 50
        assert max(ex.sleeps) == ex.poll_cap  # reached the ceiling
        # Strictly doubling until the cap.
        ramp = ex.sleeps[:ex.sleeps.index(ex.poll_cap) + 1]
        assert ramp == sorted(ramp)

    def test_pace_resets_after_a_delivery(self, monkeypatch):
        from repro.engine.executors import FabricExecutor

        ex = FabricExecutor.__new__(FabricExecutor)
        ex.poll_interval = 0.01
        ex.poll_cap = 1.0
        ex.timeout = None
        ex.clock = 0.0
        ex.sleeps = []
        script = iter([{}, {}, {}, {(0, 0): "a"}, {}, {(0, 1): "b"}])
        ex.poll = lambda handle: next(script)
        ex.submit = lambda groups, decoder, registry_items=None: "handle"

        def fake_sleep(seconds):
            ex.sleeps.append(seconds)

        monkeypatch.setattr("repro.engine.executors.time.sleep", fake_sleep)
        groups = [(["c0", "c1"], ("wl", 1.0, ()), None)]
        out = ex.run(groups, decoder=None)
        assert out == [["a", "b"]]
        # After the first delivery the pace fell back to poll_interval.
        assert ex.sleeps[-1] == ex.poll_interval


class TestWorkerOverHttp:
    def test_worker_drains_simulations_remotely(self, service):
        from repro.core.config import cortex_a53_public_config
        from repro.fabric import FabricWorker, plan_simulations
        from repro.store import open_store

        from repro.isa.decoder import Decoder

        config = cortex_a53_public_config()
        decoder = Decoder()
        items = [(config, "CCa", 0.25, {}, decoder),
                 (config, "ED1", 0.25, {}, decoder)]
        plan = plan_simulations(items)
        queue = HttpQueue(service.url, token=TOKEN)
        queue.enqueue(plan.tasks, submitted_by="test")

        worker = FabricWorker(service.url, drain=True, token=TOKEN)
        assert worker.remote
        stats = worker.run()
        assert stats.completed == 2 and stats.failed == 0

        assert queue.counts()["done"] == 2
        remote = open_store(service.url, token=TOKEN)
        for key in plan.keys:
            assert remote.get_sim(key) is not None
        remote.close()


class TestExecutorOverHttp:
    def test_fabric_executor_against_service_url(self, service):
        """The driver itself can point at the service: engine store and
        executor queue both speak HTTP while a worker drains."""
        from repro.core.config import cortex_a53_public_config
        from repro.engine import EvaluationEngine
        from repro.engine.executors import FabricExecutor
        from repro.fabric import FabricWorker
        from repro.store import open_store
        from repro.workloads.microbench import MICROBENCHMARKS

        store = open_store(service.url, token=TOKEN)
        engine = EvaluationEngine(
            workloads=[MICROBENCHMARKS["CCa"]], scale=0.25,
            store=store, executor=FabricExecutor(store),
        )
        config = cortex_a53_public_config()

        done = threading.Event()

        def drain_loop():
            deadline = time.monotonic() + 30
            while not done.is_set() and time.monotonic() < deadline:
                FabricWorker(service.url, drain=True, token=TOKEN).run()
                time.sleep(0.05)

        thread = threading.Thread(target=drain_loop)
        thread.start()
        try:
            stats = engine.simulate(config, "CCa")
            assert stats.instructions > 0
        finally:
            done.set()
            thread.join()
            engine.close()
            store.close()

    def test_unknown_backend_kind_rejected(self):
        from repro.engine.executors import FabricExecutor
        from repro.store import open_store

        with pytest.raises(ValueError, match="fabric executor"):
            FabricExecutor(open_store("memory"))


class TestBadRequests:
    def test_unknown_endpoint_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_request(service.url, endpoint="queue/nonsense")
        assert err.value.code == 404

    def test_malformed_json_400(self, service):
        request = urllib.request.Request(
            f"{service.url}{API_PREFIX}/queue/states",
            data=b"not json{", method="POST",
            headers={"Authorization": f"Bearer {TOKEN}",
                     WIRE_HEADER: str(WIRE_VERSION)},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_unknown_store_table_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _raw_request(service.url, method="POST", endpoint="store/get",
                         body={"table": "nope; DROP TABLE", "key": "k"})
        assert err.value.code == 400
