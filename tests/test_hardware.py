"""Board, effects and perf interface."""

import pytest

from repro.hardware.board import FireflyRK3399
from repro.hardware.effects import HardwareEffects, HardwareEffectsConfig
from repro.hardware.perf import PerfResult
from tests.conftest import make_alu_loop_trace, make_load_loop_trace


class TestEffects:
    def _effects(self, **kwargs):
        defaults = dict(dtlb_entries=2, itlb_entries=2, tlb_walk_latency=30)
        defaults.update(kwargs)
        return HardwareEffects(HardwareEffectsConfig(**defaults))

    def test_tlb_hit_after_miss(self):
        eff = self._effects()
        assert eff.load_extra(0x1000, 0) == 30
        assert eff.load_extra(0x1008, 1) == 0  # same page now cached

    def test_tlb_capacity_eviction(self):
        eff = self._effects()
        eff.load_extra(0x0000, 0)
        eff.load_extra(0x1000, 0)
        eff.load_extra(0x2000, 0)   # evicts page 0 (2-entry TLB)
        assert eff.load_extra(0x0000, 0) == 30

    def test_zero_page_override_lifecycle(self):
        eff = self._effects(zero_page_latency=2)
        assert eff.load_override(0x5000, 0) == 2
        eff.store_extra(0x5000, 0)
        assert eff.load_override(0x5000, 0) == -1

    def test_zero_page_disabled_by_negative_latency(self):
        eff = self._effects(zero_page_latency=-1)
        assert eff.load_override(0x5000, 0) == -1

    def test_branch_bubble_period(self):
        eff = self._effects(taken_branch_bubble_period=3)
        bubbles = sum(eff.branch_extra() for _ in range(9))
        assert bubbles == 3

    def test_branch_bubble_disabled(self):
        eff = self._effects(taken_branch_bubble_period=0)
        assert sum(eff.branch_extra() for _ in range(10)) == 0

    def test_reset(self):
        eff = self._effects(zero_page_latency=2)
        eff.store_extra(0x5000, 0)
        eff.reset()
        assert eff.load_override(0x5000, 0) == 2
        assert eff.dtlb_misses == 0


class TestBoard:
    def test_measurement_is_deterministic(self, board):
        trace = make_alu_loop_trace(n_iters=30)
        a = board.a53.measure(trace)
        b = board.a53.measure(trace)
        assert a.cycles == b.cycles

    def test_fresh_board_reproduces_measurements(self):
        trace = make_alu_loop_trace(n_iters=30)
        assert FireflyRK3399().a53.measure(trace).cycles == \
            FireflyRK3399().a53.measure(trace).cycles

    def test_noise_is_small_and_workload_dependent(self):
        quiet = FireflyRK3399(noise_sigma=0.0)
        noisy = FireflyRK3399(noise_sigma=0.01)
        trace = make_load_loop_trace(window=64 * 1024, n_iters=30)
        exact = quiet.a53.measure(trace).cycles
        jittered = noisy.a53.measure(trace).cycles
        assert abs(jittered - exact) / exact < 0.06

    def test_cores_differ(self, board):
        trace = make_load_loop_trace(window=1024 * 1024, n_iters=30)
        a53 = board.a53.measure(trace)
        a72 = board.a72.measure(trace)
        assert a53.cycles != a72.cycles
        assert a72.cpi < a53.cpi  # OoO hides the miss latency

    def test_core_lookup(self, board):
        assert board.core("a53") is board.a53
        assert board.core("cortex-a72") is board.a72
        with pytest.raises(ValueError):
            board.core("m1")

    def test_counters_present(self, board):
        trace = make_load_loop_trace(window=64 * 1024, n_iters=20)
        result = board.a53.measure(trace)
        assert result.instructions == len(trace)
        for name in ("cycles", "branch-misses", "L1-dcache-load-misses", "l2-misses"):
            assert result.counter(name) >= 0
        with pytest.raises(KeyError):
            result.counter("nonexistent")

    def test_perf_result_derived_metrics(self):
        result = PerfResult("wl", "a53", {"cycles": 200, "instructions": 100,
                                          "branch-misses": 5})
        assert result.cpi == 2.0
        assert result.branch_mpki == 50.0
        assert result.counter("cpi") == 2.0
