"""Every registered component of every slot simulates on both cores.

The drift this catches: a component whose knob *binding* rots (renamed
constructor kwarg, missing config field) builds fine in isolation but
explodes — or silently ignores its knobs — once a config selects it.
One small workload per slot, both core models, every component,
including the untunable and stage-3 ones.
"""

from __future__ import annotations

import pytest

from repro.components import REGISTRY
from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.simulator import simulate
from repro.workloads.microbench import MICROBENCHMARKS

#: One representative (section, workload) per slot: a kernel that
#: actually exercises the component (branches for predictors, conflict
#: misses for hashing/replacement, streaming loads for prefetchers).
_SLOT_SITES = {
    "direction": ("branch", "CCh"),
    "indirect": ("branch", "CS1"),
    "replacement": ("l1d", "MC"),
    "hashing": ("l1d", "MC"),
    "prefetcher": ("l1d", "MD"),
    "page-policy": ("memsys", "ML2"),
}

_SCALE = 0.2  # keep the 2 cores x ~20 components matrix cheap


def _cases():
    out = []
    for slot in REGISTRY.slots():
        if slot.selector is None:
            continue  # structural slots (victim) are covered below
        section, workload = _SLOT_SITES[slot.name]
        for comp in slot:
            out.append((slot.name, section, comp.name, workload))
    return out


@pytest.mark.parametrize("core", ["a53", "a72"])
@pytest.mark.parametrize(
    "slot,section,component,workload", _cases(),
    ids=[f"{s}-{c}" for s, _sec, c, _w in _cases()],
)
def test_component_simulates(core, slot, section, component, workload):
    base = cortex_a53_public_config() if core == "a53" else cortex_a72_public_config()
    selector = REGISTRY.slot(slot).selector
    config = base.with_updates({f"{section}.{selector}": component})
    trace = MICROBENCHMARKS[workload].trace(scale=_SCALE)
    stats = simulate(config, trace)
    assert stats.instructions > 0
    assert stats.cycles > 0


@pytest.mark.parametrize("core", ["a53", "a72"])
def test_victim_buffer_component(core):
    base = cortex_a53_public_config() if core == "a53" else cortex_a72_public_config()
    config = base.with_updates({"l1d.victim_entries": 4})
    trace = MICROBENCHMARKS["MC"].trace(scale=_SCALE)
    stats = simulate(config, trace)
    assert stats.cycles > 0


class TestNewComponentsChangeBehaviour:
    """The stage-3 components are not inert: each perturbs the model."""

    def test_tage_beats_static_on_patterned_branches(self):
        trace = MICROBENCHMARKS["CCh"].trace(scale=_SCALE)
        base = cortex_a53_public_config()
        static = simulate(base.with_updates({"branch.predictor": "static-taken"}), trace)
        tage = simulate(base.with_updates({"branch.predictor": "tage"}), trace)
        assert tage.branch.mispredicts < static.branch.mispredicts

    def test_skew_hash_spreads_conflict_kernel(self):
        trace = MICROBENCHMARKS["MC"].trace(scale=_SCALE)
        base = cortex_a53_public_config()
        mask = simulate(base.with_updates({"l1d.hashing": "mask"}), trace)
        skew = simulate(base.with_updates({"l1d.hashing": "skew"}), trace)
        assert skew.l1d.misses < mask.l1d.misses

    def test_stream_prefetcher_prefetches_streams(self):
        trace = MICROBENCHMARKS["MD"].trace(scale=_SCALE)
        base = cortex_a53_public_config()
        stats = simulate(
            base.with_updates({"l1d.prefetcher": "stream",
                               "l1d.prefetch_degree": 2}), trace)
        assert stats.l1d.prefetches_issued > 0

    def test_srrip_is_scan_resistant_where_lru_thrashes(self):
        from repro.memory.cache import Cache

        def hits(replacement):
            cache = Cache("L1D", size=4 * 64, assoc=4, line_size=64,
                          replacement=replacement)
            now = 0
            for round_no in range(50):
                for _ in range(2):  # re-referenced working set
                    for hot in (0, 1):
                        cache.access_line(hot, now)
                        now += 4
                scan = 100 + round_no * 4
                for line in range(scan, scan + 4):  # one-shot stream
                    cache.access_line(line, now)
                    now += 4
            return cache.stats.hits

        # LRU evicts the hot lines every round; SRRIP's re-referenced
        # lines (RRPV 0) outlive the never-promoted scan lines.
        assert hits("srrip") > hits("lru")
