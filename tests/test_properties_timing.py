"""Property-based invariants of the timing models.

These are the invariants that make tuning *meaningful*: simulated time
must respond monotonically and deterministically to the parameters the
racer adjusts, and basic accounting must always balance.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.simulator import SnipeSim
from repro.workloads.microbench import get_microbenchmark
from tests.conftest import make_alu_loop_trace, make_load_loop_trace

#: Parameters where "bigger value" must never make the machine faster.
SLOWER_WHEN_BIGGER = [
    ("execute.idiv_latency", [4, 8, 16, 20]),
    ("execute.fpalu_latency", [2, 3, 5]),
    ("branch.mispredict_penalty", [6, 9, 12]),
    ("l2.hit_latency", [11, 14, 17]),
    ("memsys.dram_latency", [140, 170, 200]),
]

#: Parameters where "bigger value" must never make the machine slower.
FASTER_WHEN_BIGGER = [
    ("l1d.mshr_entries", [1, 3, 8]),
    ("memsys.store_buffer_entries", [2, 6, 16]),
    ("memsys.dram_bandwidth", [1, 4, 8]),
]

_WORKLOADS = ["ED1", "ML2_BWld", "CCh", "STL2b", "DPT", "MM_st"]


def _cycles(config, trace):
    return SnipeSim(config).run(trace).cycles


class TestMonotonicity:
    @pytest.mark.parametrize("path,values", SLOWER_WHEN_BIGGER)
    def test_latency_parameters_never_speed_things_up(self, path, values):
        base = cortex_a53_public_config()
        for name in _WORKLOADS:
            trace = get_microbenchmark(name).trace()
            series = [_cycles(base.with_updates({path: v}), trace) for v in values]
            assert series == sorted(series), f"{path} on {name}: {series}"

    @pytest.mark.parametrize("path,values", FASTER_WHEN_BIGGER)
    def test_capacity_parameters_never_slow_things_down(self, path, values):
        base = cortex_a53_public_config()
        for name in _WORKLOADS:
            trace = get_microbenchmark(name).trace()
            series = [_cycles(base.with_updates({path: v}), trace) for v in values]
            assert series == sorted(series, reverse=True), f"{path} on {name}: {series}"

    def test_ooo_rob_monotone(self):
        base = cortex_a72_public_config()
        trace = make_load_loop_trace(window=4 * 1024 * 1024, n_iters=30)
        series = [
            _cycles(base.with_updates({"pipeline.rob_size": rob}), trace)
            for rob in (8, 32, 128)
        ]
        assert series == sorted(series, reverse=True)


class TestAccounting:
    @given(
        n_iters=st.integers(5, 60),
        body=st.integers(2, 12),
        dependent=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_cpi_bounds_and_balance(self, n_iters, body, dependent):
        """CPI is bounded below by 1/issue_width; counters balance."""
        trace = make_alu_loop_trace(n_iters=n_iters, body=body, dependent=dependent)
        config = cortex_a53_public_config()
        stats = SnipeSim(config).run(trace)
        assert stats.instructions == len(trace)
        assert stats.cycles >= len(trace) / config.pipeline.issue_width
        assert stats.branch.branches == sum(1 for _ in range(n_iters))
        assert stats.l1d.hits + stats.l1d.misses == stats.l1d.accesses

    @given(window_kb=st.sampled_from([4, 16, 64, 512]), n_iters=st.integers(5, 40))
    @settings(max_examples=15, deadline=None)
    def test_memory_accounting_balances(self, window_kb, n_iters):
        trace = make_load_loop_trace(window=window_kb * 1024, n_iters=n_iters)
        for config in (cortex_a53_public_config(), cortex_a72_public_config()):
            stats = SnipeSim(config).run(trace)
            l1d = stats.l1d
            assert l1d.hits + l1d.misses == l1d.accesses
            # Demand L2 accesses cannot exceed L1 misses plus writebacks
            # plus L1I misses (no prefetchers in the public configs).
            assert stats.l2.accesses <= l1d.misses + l1d.writebacks + stats.l1i.misses + stats.l1i.accesses

    @given(seed=st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_config_hash_equivalence(self, seed):
        """Two identical configs produce bit-identical results."""
        import random

        rng = random.Random(seed)
        updates = {
            "l1d.mshr_entries": rng.choice([2, 4, 8]),
            "branch.predictor": rng.choice(["bimodal", "gshare"]),
            "execute.imul_latency": rng.choice([2, 3, 4]),
        }
        trace = get_microbenchmark("CRm").trace()
        a = SnipeSim(cortex_a53_public_config().with_updates(updates)).run(trace)
        b = SnipeSim(cortex_a53_public_config().with_updates(updates)).run(trace)
        assert a.cycles == b.cycles
        assert a.branch.mispredicts == b.branch.mispredicts


class TestOrderingsAcrossCores:
    def test_ooo_never_slower_on_parallel_memory(self):
        """Equal hierarchies: the OoO core must exploit MLP the in-order
        core cannot."""
        trace = make_load_loop_trace(window=2 * 1024 * 1024, n_iters=40)
        a53 = SnipeSim(cortex_a53_public_config()).run(trace)
        a72 = SnipeSim(cortex_a72_public_config()).run(trace)
        assert a72.cpi < a53.cpi

    def test_serial_chain_immune_to_ooo(self):
        """A pure dependence chain gains nothing from out-of-order issue."""
        dep = make_alu_loop_trace(n_iters=100, body=10, dependent=True)
        a53 = SnipeSim(cortex_a53_public_config()).run(dep)
        a72 = SnipeSim(cortex_a72_public_config()).run(dep)
        # Both are latency-bound at ~1 cycle per dependent ALU op.
        assert abs(a53.cpi - a72.cpi) < 0.4
