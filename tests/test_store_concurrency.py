"""Multi-process SQLite backend hammering (the fabric's write load).

Four worker processes write and read one store file concurrently —
interleaved single puts, batched puts and point reads — exercising the
WAL + busy-timeout + retry-on-busy stack under real lock contention.
The assertion is strict: every row every process wrote must be present
and exact afterwards, and no process may die on ``SQLITE_BUSY``.
"""

import multiprocessing
import sqlite3

import pytest

from repro.store.backend import SqliteBackend, is_busy_error, retry_busy

N_PROCS = 4
ROWS_PER_PROC = 120


def hammer(path, proc_id, failures):
    """One contender: interleave writes, batch writes and reads."""
    try:
        backend = SqliteBackend(path, busy_timeout=30.0)
        for i in range(ROWS_PER_PROC):
            key = f"p{proc_id}-row{i:04d}"
            if i % 3 == 0:
                backend.put_many(
                    "sim_results",
                    [(key, f"value-{proc_id}-{i}"),
                     (f"{key}-extra", f"extra-{proc_id}-{i}")],
                )
            else:
                backend.put("sim_results", key, f"value-{proc_id}-{i}")
            # Read-your-writes under contention.
            if backend.get("sim_results", key) != f"value-{proc_id}-{i}":
                failures.put(f"{key}: read-your-write failed")
            # Cross-table traffic, like queue + results share a file.
            backend.put("trial_costs", key, str(i))
        backend.close()
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        failures.put(f"p{proc_id}: {type(exc).__name__}: {exc}")


class TestMultiProcessWriters:
    def test_four_processes_hammering_one_store(self, tmp_path):
        path = str(tmp_path / "hammer.sqlite")
        SqliteBackend(path).close()  # create the schema up front
        ctx = multiprocessing.get_context("fork")
        failures = ctx.Queue()
        procs = [ctx.Process(target=hammer, args=(path, pid, failures))
                 for pid in range(N_PROCS)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        errors = []
        while not failures.empty():
            errors.append(failures.get())
        assert errors == []

        backend = SqliteBackend(path)
        try:
            # 1 extra row per batched put (every 3rd iteration).
            extras = len([i for i in range(ROWS_PER_PROC) if i % 3 == 0])
            assert backend.count("sim_results") == N_PROCS * (ROWS_PER_PROC + extras)
            assert backend.count("trial_costs") == N_PROCS * ROWS_PER_PROC
            for pid in range(N_PROCS):
                for i in (0, ROWS_PER_PROC // 2, ROWS_PER_PROC - 1):
                    key = f"p{pid}-row{i:04d}"
                    assert backend.get("sim_results", key) == f"value-{pid}-{i}"
        finally:
            backend.close()


class TestRetryBusy:
    def test_retries_transient_busy_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert retry_busy(flaky, attempts=5, backoff=0.001) == "ok"
        assert len(calls) == 3

    def test_gives_up_after_bounded_attempts(self):
        def always_busy():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            retry_busy(always_busy, attempts=3, backoff=0.001)

    def test_non_busy_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            retry_busy(broken, attempts=5, backoff=0.001)
        assert len(calls) == 1

    def test_is_busy_error_classification(self):
        assert is_busy_error(sqlite3.OperationalError("database is locked"))
        assert is_busy_error(sqlite3.OperationalError("database table is locked"))
        assert not is_busy_error(sqlite3.OperationalError("no such table: x"))
        assert not is_busy_error(ValueError("database is locked"))
