"""The 40-kernel micro-benchmark suite (Table I)."""

import pytest

from repro.trace.stats import compute_trace_stats
from repro.workloads.microbench import (
    ALL_MICROBENCHMARKS,
    CATEGORIES,
    MICROBENCHMARKS,
    get_microbenchmark,
    list_microbenchmarks,
)

#: Table I names, verbatim.
TABLE1_NAMES = {
    "memory": ["MC", "MCS", "MD", "MI", "MIM", "MIM2", "MIP", "ML2", "ML2_BWld",
               "ML2_BWldst", "ML2_BWst", "ML2_st", "MM", "MM_st", "M_Dyn"],
    "control": ["CCa", "CCe", "CCh", "CCh_st", "CCl", "CCm", "CF1", "CRd",
                "CRf", "CRm", "CS1", "CS3"],
    "dataparallel": ["DP1d", "DP1f", "DPcvt", "DPT", "DPTd"],
    "execution": ["ED1", "EF", "EI", "EM1", "EM5"],
    "store": ["STL2", "STL2b", "STc"],
}


class TestRegistry:
    def test_exactly_forty_kernels(self):
        assert len(ALL_MICROBENCHMARKS) == 40

    def test_table1_names_all_present(self):
        for category, names in TABLE1_NAMES.items():
            for name in names:
                wl = get_microbenchmark(name)
                assert wl.category == category

    def test_category_counts_match_table1(self):
        for category, names in TABLE1_NAMES.items():
            assert len(list_microbenchmarks(category)) == len(names)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_microbenchmark("XYZZY")
        with pytest.raises(ValueError):
            list_microbenchmarks("graphics")

    def test_paper_instruction_counts_recorded(self):
        assert get_microbenchmark("MIP").paper_instructions == "66M"
        assert get_microbenchmark("STL2").paper_instructions == "4K"
        for wl in ALL_MICROBENCHMARKS:
            assert wl.paper_instructions != "n/a"


class TestTraces:
    @pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
    def test_trace_builds_and_is_reasonably_sized(self, name):
        trace = get_microbenchmark(name).trace()
        assert 100 <= len(trace) <= 15_000

    def test_traces_cached(self):
        wl = get_microbenchmark("MC")
        assert wl.trace() is wl.trace()

    def test_traces_deterministic_across_builds(self):
        wl = get_microbenchmark("CCh")
        t1 = wl.builder(1.0)
        t2 = wl.builder(1.0)
        from repro.frontend.interpreter import trace_program

        assert trace_program(t1).records == trace_program(t2).records

    def test_scale_grows_trace(self):
        wl = get_microbenchmark("CCa")
        assert len(wl.trace(scale=2.0)) > len(wl.trace())


class TestCategorySignatures:
    """Each category must actually stress what it claims to stress."""

    def test_memory_kernels_are_memory_heavy(self):
        for name in ("MC", "ML2", "MM", "M_Dyn", "ML2_BWld"):
            stats = compute_trace_stats(get_microbenchmark(name).trace())
            assert stats.mem_fraction > 0.3, name

    def test_control_kernels_are_branch_heavy(self):
        for name in ("CCa", "CCh", "CCm", "CRd"):
            stats = compute_trace_stats(get_microbenchmark(name).trace())
            assert stats.branch_fraction > 0.25, name

    def test_case_kernels_use_indirect_branches(self):
        for name in ("CS1", "CS3"):
            stats = compute_trace_stats(get_microbenchmark(name).trace())
            assert stats.indirect_branches > 10, name

    def test_dataparallel_kernels_are_fp_heavy(self):
        for name in ("DP1d", "DP1f", "DPT", "DPTd", "DPcvt"):
            stats = compute_trace_stats(get_microbenchmark(name).trace())
            assert stats.fp_fraction > 0.25, name

    def test_store_kernels_are_store_heavy(self):
        for name in ("STL2", "STL2b", "STc"):
            stats = compute_trace_stats(get_microbenchmark(name).trace())
            assert stats.store_fraction > 0.3, name

    def test_icache_kernels_have_large_code_footprints(self):
        mim = compute_trace_stats(get_microbenchmark("MIM").trace())
        md = compute_trace_stats(get_microbenchmark("MD").trace())
        assert mim.unique_pcs > 20 * md.unique_pcs

    def test_mim2_blocks_conflict_in_2way_l1i(self):
        trace = get_microbenchmark("MIM2").trace()
        # Block PCs spaced 16 KB apart map to identical 2-way sets.
        sets = {(rec.pc // 64) % 256 for rec in trace.records}
        assert len(sets) <= 8


class TestUninitializedVariants:
    def test_mm_defaults_to_uninitialized(self):
        wl = get_microbenchmark("MM")
        plain = wl.trace()
        fixed = wl.trace(initialized=True)
        assert len(fixed) > len(plain)  # init pass adds page-touch stores
        assert fixed.name != plain.name  # distinct measurement identity

    def test_initialized_variant_removes_hw_anomaly(self, board):
        """On the board, the uninitialised kernel looks absurdly fast."""
        wl = get_microbenchmark("MM")
        fast = board.a53.measure(wl.trace())
        slow = board.a53.measure(wl.trace(initialized=True))
        assert slow.cpi > 3 * fast.cpi
