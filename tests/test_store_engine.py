"""Engine <-> persistent store integration and telemetry edge cases."""

import pytest

from repro.core.config import cortex_a53_public_config
from repro.engine import EngineTelemetry, EvaluationEngine, TrialCache
from repro.store import open_store
from repro.workloads.microbench import get_microbenchmark

NAMES = ("ED1", "CCh", "STc", "MD")
WORKLOADS = [get_microbenchmark(n) for n in NAMES]


def make_engine(board, store=None, **kwargs):
    kwargs.setdefault("scale", 0.5)
    return EvaluationEngine(hw=board.core("a53"), workloads=WORKLOADS,
                            store=store, **kwargs)


class TestEngineTelemetry:
    def test_zero_trial_hit_rate_is_zero(self):
        telemetry = EngineTelemetry()
        assert telemetry.hit_rate() == 0.0

    def test_hit_rate(self):
        telemetry = EngineTelemetry(requested_trials=4, sim_cache_hits=3)
        assert telemetry.hit_rate() == pytest.approx(0.75)

    def test_summary_wording(self):
        telemetry = EngineTelemetry(
            requested_trials=10, unique_trials=4, sim_cache_hits=6,
            hw_measurements=2,
        )
        assert telemetry.summary() == (
            "10 trials requested, 4 unique simulations "
            "(60% cache hits), 2 hardware measurements"
        )

    def test_zero_trial_summary(self):
        assert EngineTelemetry().summary() == (
            "0 trials requested, 0 unique simulations "
            "(0% cache hits), 0 hardware measurements"
        )

    def test_summary_mentions_store_hits_only_when_present(self):
        quiet = EngineTelemetry(requested_trials=1, unique_trials=1)
        assert "store" not in quiet.summary()
        warm = EngineTelemetry(requested_trials=1, sim_cache_hits=1, store_hits=1)
        assert warm.summary().endswith("1 store hits")


class TestStoreSharing:
    def test_two_engines_share_one_sqlite_store(self, board, tmp_path):
        path = str(tmp_path / "exp.sqlite")
        config = cortex_a53_public_config()
        pairs = [(config, name) for name in NAMES]

        with open_store(path) as store:
            cold = make_engine(board, store=store)
            first = cold.evaluate_batch(pairs)
            assert cold.telemetry.unique_trials == len(NAMES)
            assert cold.telemetry.store_hits == 0
            cold.close()

        # A separate connection — as another process would open.
        with open_store(path) as store:
            warm = make_engine(board, store=store)
            second = warm.evaluate_batch(pairs)
            assert second == first
            assert warm.telemetry.unique_trials == 0
            assert warm.telemetry.hw_measurements == 0
            assert warm.telemetry.hit_rate() == 1.0
            # sim results + hw measurements all served from the store
            assert warm.telemetry.store_hits == 2 * len(NAMES)
            warm.close()

    def test_interleaved_engines_on_one_store(self, board, tmp_path):
        config = cortex_a53_public_config()
        with open_store(str(tmp_path / "exp.sqlite")) as store:
            a = make_engine(board, store=store)
            b = make_engine(board, store=store)
            ra = a.simulate(config, "ED1")
            rb = b.simulate(config, "ED1")  # hits via the store, not memory
            assert ra == rb
            assert b.telemetry.unique_trials == 0
            assert b.telemetry.store_hits == 1
            a.close(), b.close()

    def test_jobs2_workers_share_warm_store_hits(self, board, tmp_path):
        """A parallel engine re-simulates nothing the store already has."""
        config = cortex_a53_public_config()
        variant = config.with_updates({"l1d.hit_latency": 4})
        warm_pairs = [(config, name) for name in NAMES]
        all_pairs = warm_pairs + [(variant, name) for name in NAMES]

        with open_store(str(tmp_path / "exp.sqlite")) as store:
            serial = make_engine(board, store=store)
            warm = serial.simulate_batch(warm_pairs)
            serial.close()

            parallel = make_engine(board, store=store, jobs=2)
            try:
                results = parallel.simulate_batch(all_pairs)
            finally:
                parallel.close()
        # Warm half came from the store; only the variant half simulated,
        # and the parallel results are bit-identical to the serial ones.
        assert parallel.telemetry.store_hits == len(NAMES)
        assert parallel.telemetry.unique_trials == len(NAMES)
        assert results[:len(NAMES)] == warm

        fresh = make_engine(board)
        expected = fresh.simulate_batch(all_pairs)
        fresh.close()
        assert results == expected

    def test_store_survives_for_memory_backend_too(self, board):
        config = cortex_a53_public_config()
        with open_store("memory") as store:
            one = make_engine(board, store=store)
            one.evaluate(config, "ED1")
            one.close()
            two = make_engine(board, store=store)
            two.evaluate(config, "ED1")
            assert two.telemetry.unique_trials == 0
            assert two.telemetry.store_hits == 2  # sim + hw
            two.close()


class TestTrialCachePersistence:
    def test_costs_replay_from_store_under_same_context(self):
        calls = []

        def evaluate(assignment, instance):
            calls.append((tuple(sorted(assignment.items())), instance))
            return float(len(calls))

        with open_store("memory") as store:
            first = TrialCache(evaluate, store=store, context="run/stage1")
            assert first({"a": 1}, "ED1") == 1.0
            assert first({"a": 2}, "ED1") == 2.0
            assert len(calls) == 2

            # Same context: replayed from the store, evaluator untouched.
            second = TrialCache(evaluate, store=store, context="run/stage1")
            assert second({"a": 1}, "ED1") == 1.0
            assert second({"a": 2}, "ED1") == 2.0
            assert len(calls) == 2
            assert second.unique_trials == 0 and second.store_hits == 2

            # Different context: recomputed.
            third = TrialCache(evaluate, store=store, context="run/stage2")
            third({"a": 1}, "ED1")
            assert len(calls) == 3

    def test_no_context_disables_persistence(self):
        with open_store("memory") as store:
            cache = TrialCache(lambda a, i: 1.0, store=store, context=None)
            cache({"a": 1}, "ED1")
            assert store.stats()["trial_costs"] == 0
