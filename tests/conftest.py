"""Shared fixtures.

The board is session-scoped: its measurement caches make hardware
results free to reuse, exactly as the paper measures each workload once.
"""

from __future__ import annotations

import pytest

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.frontend.builder import ProgramBuilder
from repro.frontend.interpreter import trace_program
from repro.frontend.program import PatternTaken, SequentialAddr
from repro.hardware.board import FireflyRK3399
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg


@pytest.fixture(scope="session")
def board() -> FireflyRK3399:
    return FireflyRK3399()


@pytest.fixture()
def a53_config():
    return cortex_a53_public_config()


@pytest.fixture()
def a72_config():
    return cortex_a72_public_config()


def make_alu_loop_trace(n_iters: int = 50, body: int = 8, dependent: bool = False):
    """A small ALU loop trace for core-model tests."""
    b = ProgramBuilder(f"alu-loop-{n_iters}-{body}-{dependent}")
    b.label("top")
    for k in range(body):
        if dependent:
            b.op(OpClass.IALU, int_reg(6), int_reg(6), int_reg(1))
        else:
            b.op(OpClass.IALU, int_reg(6 + k % 8), int_reg(1), int_reg(2))
    b.branch("top", PatternTaken("T" * (n_iters - 1) + "N"), cond_reg=int_reg(2))
    return trace_program(b.build(), max_instructions=100_000)


def make_load_loop_trace(window: int, n_iters: int = 50, stride: int = 64):
    """A streaming-load loop over ``window`` bytes."""
    b = ProgramBuilder(f"load-loop-{window}-{n_iters}-{stride}")
    pattern = SequentialAddr(0x20_0000, stride, window)
    b.label("top")
    for k in range(8):
        b.load(int_reg(6 + k), pattern)
    b.branch("top", PatternTaken("T" * (n_iters - 1) + "N"), cond_reg=int_reg(2))
    return trace_program(b.build(), max_instructions=100_000)


@pytest.fixture()
def alu_trace():
    return make_alu_loop_trace()


@pytest.fixture()
def load_trace():
    return make_load_loop_trace(window=16 * 1024)
