"""Tunable parameter lists and experiment well-posedness."""

import pytest

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.hardware.groundtruth import cortex_a53_ground_truth, cortex_a72_ground_truth
from repro.validation.steps import inorder_param_space, ooo_param_space, param_space_for


class TestSpaces:
    def test_sizable_parameter_lists(self):
        # The paper tunes 64 parameters; our models expose comparable lists.
        assert len(inorder_param_space(stage=2)) >= 35
        assert len(ooo_param_space(stage=2)) >= 40

    def test_stage1_lacks_model_fix_options(self):
        stage1 = inorder_param_space(stage=1)
        stage2 = inorder_param_space(stage=2)
        assert "branch.indirect" not in stage1
        assert "branch.indirect" in stage2
        assert "ghb" not in stage1.get("l1d.prefetcher").values
        assert "ghb" in stage2.get("l1d.prefetcher").values

    def test_total_combinations_is_intractable(self):
        # Evaluating all permutations must be computationally unfeasible
        # (the reason racing exists, §III-C).
        assert inorder_param_space().total_combinations() > 10**15

    def test_lookup_helper(self):
        assert param_space_for("inorder") is not None
        assert param_space_for("ooo") is not None
        with pytest.raises(ValueError):
            param_space_for("vliw")

    def test_all_paths_exist_in_configs(self):
        for space, config in (
            (inorder_param_space(), cortex_a53_public_config()),
            (ooo_param_space(), cortex_a72_public_config()),
        ):
            for param in space:
                config.get(param.name)  # raises KeyError if missing
                # Applying any candidate must produce a valid config.
                config.with_updates({param.name: param.values[0]})


class TestWellPosedness:
    """Author-side calibration: the hidden truth must be *mostly* on the
    candidate grids (recoverable specification error), with the known
    deliberate exceptions (abstraction error)."""

    A72_OFF_GRID = {"l1d.prefetch_degree", "l2.mshr_entries", "execute.fpdiv_latency"}

    def _off_grid(self, space, truth):
        out = set()
        for param in space:
            if truth.get(param.name) not in param.values:
                out.add(param.name)
        return out

    def test_a53_truth_fully_on_grid(self):
        off = self._off_grid(inorder_param_space(stage=2), cortex_a53_ground_truth())
        assert off == set(), f"unexpected off-grid truth values: {off}"

    def test_a72_truth_off_grid_only_where_designed(self):
        off = self._off_grid(ooo_param_space(stage=2), cortex_a72_ground_truth())
        assert off == self.A72_OFF_GRID

    def test_stage1_cannot_express_a53_truth(self):
        """Stage 1 lacks indirect prediction and GHB — the §IV-B fixes."""
        space = inorder_param_space(stage=1)
        truth = cortex_a53_ground_truth()
        assert truth.branch.indirect == "tagged" and "branch.indirect" not in space
        assert truth.l2.prefetcher == "ghb"
        assert "ghb" not in space.get("l2.prefetcher").values
