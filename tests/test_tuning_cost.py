"""Cost functions."""

import pytest

from repro.core.stats import SimStats
from repro.hardware.perf import PerfResult
from repro.tuning.cost import cpi_error, make_cpi_cost, make_weighted_cost


def _sim(cycles=150, instructions=100, branch_miss=10):
    stats = SimStats("cfg", "wl", instructions=instructions, cycles=cycles)
    stats.branch.branches = 30
    stats.branch.mispredicts = branch_miss
    return stats


def _hw(cycles=100, instructions=100, branch_miss=10):
    return PerfResult("wl", "a53", {
        "cycles": cycles,
        "instructions": instructions,
        "branch-misses": branch_miss,
        "L1-dcache-load-misses": 5,
        "l2-misses": 2,
    })


class TestCpiError:
    def test_relative_error(self):
        assert cpi_error(_sim(cycles=150), _hw(cycles=100)) == pytest.approx(0.5)

    def test_symmetric_absolute(self):
        assert cpi_error(_sim(cycles=50), _hw(cycles=100)) == pytest.approx(0.5)

    def test_perfect_match(self):
        assert cpi_error(_sim(cycles=100), _hw(cycles=100)) == 0.0

    def test_zero_hw_cpi_rejected(self):
        with pytest.raises(ValueError):
            cpi_error(_sim(), PerfResult("wl", "a53", {"cycles": 0, "instructions": 100}))

    def test_factory_returns_callable(self):
        assert make_cpi_cost()(_sim(cycles=120), _hw()) == pytest.approx(0.2)


class TestWeightedCost:
    def test_pure_cpi_weight_matches_cpi_error(self):
        cost = make_weighted_cost({"cpi": 1.0})
        assert cost(_sim(cycles=150), _hw()) == pytest.approx(0.5)

    def test_mixed_weights_average_components(self):
        cost = make_weighted_cost({"cpi": 1.0, "branch-mpki": 1.0})
        # CPI error 0.5; branch mpki identical -> 0. Mean = 0.25.
        assert cost(_sim(cycles=150), _hw()) == pytest.approx(0.25)

    def test_branch_component_reacts(self):
        cost = make_weighted_cost({"branch-mpki": 1.0})
        assert cost(_sim(branch_miss=20), _hw(branch_miss=10)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_weighted_cost({})
        with pytest.raises(ValueError):
            make_weighted_cost({"cpi": 0.0})
