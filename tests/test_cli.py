"""Command-line interface."""

import pytest

from repro.cli import _parse_overrides, main


class TestParseOverrides:
    def test_types_inferred(self):
        out = _parse_overrides(["l1d.mshr_entries=4", "x=1.5", "b=true",
                                "pf=stride"])
        assert out == {"l1d.mshr_entries": 4, "x": 1.5, "b": True, "pf": "stride"}

    def test_malformed_rejected(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["oops"])


class TestSweep:
    def test_value_lists_parsed(self):
        from repro.cli import _parse_sweep_sets

        grid = _parse_sweep_sets(
            ["l1d.hit_latency=2,3", "l1d.prefetcher=none,stride", "b=true,false"]
        )
        assert grid == {
            "l1d.hit_latency": [2, 3],
            "l1d.prefetcher": ["none", "stride"],
            "b": [True, False],
        }

    def test_sweep_requires_set(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workloads", "STc"])

    def test_sweep_rejects_duplicate_set_key(self):
        with pytest.raises(SystemExit, match="given twice"):
            main(["sweep", "--workloads", "STc",
                  "--set", "l1d.hit_latency=2,3", "--set", "l1d.hit_latency=4"])

    def test_sweep_renders_cross_product(self, capsys):
        assert main([
            "sweep", "--core", "a53", "--workloads", "STc,MD",
            "--set", "l1d.prefetcher=none,stride",
            "--set", "l1d.hit_latency=2,3",
            "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 configurations x 2 workloads = 8 trials" in out
        assert out.count("STc") >= 4  # one row per combo
        assert "best mean CPI error" in out


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "MC" in out and "mcf" in out

    def test_list_workloads_category(self, capsys):
        assert main(["list-workloads", "--category", "store"]) == 0
        out = capsys.readouterr().out
        assert "STL2" in out and "mcf" not in out

    def test_measure(self, capsys):
        assert main(["measure", "--core", "a53", "--workload", "STc"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "cpi" in out

    def test_simulate_with_override(self, capsys):
        assert main([
            "simulate", "--core", "a53", "--workload", "STc",
            "--set", "l1d.prefetcher=stride", "--set", "l1d.prefetch_degree=2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CPI error" in out

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "nope"])

    def test_unknown_core(self):
        with pytest.raises((SystemExit, ValueError)):
            main(["measure", "--core", "m1max", "--workload", "STc"])

    def test_lmbench(self, capsys):
        assert main(["lmbench", "--core", "a53"]) == 0
        assert "L1" in capsys.readouterr().out

    def test_validate_writes_json(self, capsys, tmp_path):
        out_path = str(tmp_path / "a53.json")
        assert main([
            "validate", "--core", "a53", "--profile", "fast",
            "--stages", "1", "--out", out_path,
        ]) == 0
        from repro.analysis.io import load_result_json

        payload = load_result_json(out_path)
        assert payload["core"] == "a53"
        assert len(payload["final_errors"]) == 40
