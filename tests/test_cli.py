"""Command-line interface."""

import pytest

from repro.cli import _parse_overrides, main


class TestParseOverrides:
    def test_types_inferred(self):
        out = _parse_overrides(["l1d.mshr_entries=4", "x=1.5", "b=true",
                                "pf=stride"])
        assert out == {"l1d.mshr_entries": 4, "x": 1.5, "b": True, "pf": "stride"}

    def test_malformed_rejected(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["oops"])


class TestSweep:
    def test_value_lists_parsed(self):
        from repro.cli import _parse_sweep_sets

        grid = _parse_sweep_sets(
            ["l1d.hit_latency=2,3", "l1d.prefetcher=none,stride", "b=true,false"]
        )
        assert grid == {
            "l1d.hit_latency": [2, 3],
            "l1d.prefetcher": ["none", "stride"],
            "b": [True, False],
        }

    def test_sweep_requires_set(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workloads", "STc"])

    def test_sweep_rejects_duplicate_set_key(self):
        with pytest.raises(SystemExit, match="given twice"):
            main(["sweep", "--workloads", "STc",
                  "--set", "l1d.hit_latency=2,3", "--set", "l1d.hit_latency=4"])

    def test_sweep_renders_cross_product(self, capsys):
        assert main([
            "sweep", "--core", "a53", "--workloads", "STc,MD",
            "--set", "l1d.prefetcher=none,stride",
            "--set", "l1d.hit_latency=2,3",
            "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 configurations x 2 workloads = 8 trials" in out
        assert out.count("STc") >= 4  # one row per combo
        assert "best mean CPI error" in out


class TestComponentsCommand:
    def test_lists_every_slot_and_component(self, capsys):
        assert main(["components"]) == 0
        out = capsys.readouterr().out
        for slot in ("direction", "indirect", "replacement", "hashing",
                     "prefetcher", "victim", "page-policy"):
            assert f"slot {slot}" in out
        for component in ("tage", "srrip", "skew", "stream", "tournament",
                          "ghb", "mersenne"):
            assert component in out
        assert "registry fingerprint" in out

    def test_single_slot_filter(self, capsys):
        assert main(["components", "--slot", "prefetcher"]) == 0
        out = capsys.readouterr().out
        assert "stream" in out and "slot direction" not in out
        assert "when prefetcher != 'none'" in out  # activation condition

    def test_unknown_slot_suggests(self):
        with pytest.raises(SystemExit, match="unknown slot"):
            main(["components", "--slot", "prefetchers"])

    def test_json_output(self, capsys):
        import json

        assert main(["components", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        slots = {s["name"]: s for s in payload["slots"]}
        assert "direction" in slots and "prefetcher" in slots
        names = [c["name"] for c in slots["prefetcher"]["components"]]
        assert names == ["none", "nextline", "stride", "ghb", "stream"]
        assert payload["fingerprint"]


class TestSetValidation:
    def test_simulate_rejects_bad_component_name(self, capsys):
        with pytest.raises(SystemExit, match="did you mean 'stride'"):
            main(["simulate", "--core", "a53", "--workload", "STc",
                  "--set", "l1d.prefetcher=strid"])

    def test_simulate_rejects_unknown_path(self):
        with pytest.raises(SystemExit, match="bad --set parameter"):
            main(["simulate", "--core", "a53", "--workload", "STc",
                  "--set", "l1d.prefetchr=stride"])

    def test_sweep_rejects_bad_component_value_up_front(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["sweep", "--core", "a53", "--workloads", "STc",
                  "--set", "l1d.replacement=lru,srip"])

    def test_new_components_accepted_via_set(self, capsys):
        assert main([
            "simulate", "--core", "a53", "--workload", "STc",
            "--set", "branch.predictor=tage", "--set", "l1d.hashing=skew",
            "--set", "l1d.replacement=srrip", "--set", "l1d.prefetcher=stream",
        ]) == 0
        assert "CPI error" in capsys.readouterr().out


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "MC" in out and "mcf" in out

    def test_list_workloads_category(self, capsys):
        assert main(["list-workloads", "--category", "store"]) == 0
        out = capsys.readouterr().out
        assert "STL2" in out and "mcf" not in out

    def test_measure(self, capsys):
        assert main(["measure", "--core", "a53", "--workload", "STc"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "cpi" in out

    def test_simulate_with_override(self, capsys):
        assert main([
            "simulate", "--core", "a53", "--workload", "STc",
            "--set", "l1d.prefetcher=stride", "--set", "l1d.prefetch_degree=2",
        ]) == 0
        out = capsys.readouterr().out
        assert "CPI error" in out

    def test_simulate_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "nope"])

    def test_unknown_core(self):
        with pytest.raises((SystemExit, ValueError)):
            main(["measure", "--core", "m1max", "--workload", "STc"])

    def test_lmbench(self, capsys):
        assert main(["lmbench", "--core", "a53"]) == 0
        assert "L1" in capsys.readouterr().out

    def test_validate_writes_json(self, capsys, tmp_path):
        out_path = str(tmp_path / "a53.json")
        assert main([
            "validate", "--core", "a53", "--profile", "fast",
            "--stages", "1", "--out", out_path,
        ]) == 0
        from repro.analysis.io import load_result_json

        payload = load_result_json(out_path)
        assert payload["core"] == "a53"
        assert len(payload["final_errors"]) == 40


class TestStoreCLI:
    def test_measure_and_simulate_share_a_store(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        assert main(["measure", "--core", "a53", "--workload", "STc",
                     "--store", store_path]) == 0
        first = capsys.readouterr().out
        assert "engine:" in first and "store hits" not in first

        # simulate measures hardware again — from the store this time.
        assert main(["simulate", "--core", "a53", "--workload", "STc",
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "CPI error" in out and "store hits" in out

        # Both runs are on the registry.
        assert main(["store", "ls", "--store", store_path]) == 0
        listing = capsys.readouterr().out
        assert "measure" in listing and "simulate" in listing
        assert listing.count("completed") == 2

    def test_simulate_twice_hits_store(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        argv = ["simulate", "--core", "a53", "--workload", "STc",
                "--set", "l1d.prefetcher=stride", "--store", store_path]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "1 unique simulations" in first
        assert "0 unique simulations" in second
        # The rendered comparison table is identical.
        assert first.split("engine:")[0] == second.split("engine:")[0]

    def test_sweep_out_json_and_store_resume(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        out_path = str(tmp_path / "sweep.json")
        # Two grid axes in anti-alphabetical order: resume must preserve
        # the user's axis order, not the registry JSON's sorted keys.
        argv = ["sweep", "--core", "a53", "--workloads", "STc,MD",
                "--set", "l2.hit_latency=11,12",
                "--set", "l1d.prefetcher=none,stride", "--scale", "0.5",
                "--store", store_path, "--out", out_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 configurations x 2 workloads = 8 trials" in out
        run_id = [ln for ln in out.splitlines() if ln.startswith("run id:")][0].split()[-1]

        from repro.analysis.io import load_result_json

        payload = load_result_json(out_path)
        assert payload["core"] == "a53"
        assert len(payload["trials"]) == 8
        assert {t["workload"] for t in payload["trials"]} == {"STc", "MD"}
        assert "mean_cpi_error" in payload["best"]

        # Resume replays the recorded sweep entirely from the store.
        out2_path = str(tmp_path / "sweep2.json")
        assert main(["sweep", "--resume", run_id, "--store", store_path,
                     "--out", out2_path]) == 0
        out2 = capsys.readouterr().out
        assert "(0 unique simulations)" in out2
        assert load_result_json(out2_path) == payload

    def test_sweep_out_without_store(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.json")
        assert main(["sweep", "--workloads", "STc", "--set",
                     "l1d.hit_latency=2,3", "--scale", "0.5",
                     "--out", out_path]) == 0
        from repro.analysis.io import load_result_json

        assert len(load_result_json(out_path)["trials"]) == 2

    def test_validate_store_roundtrip_bit_identical(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        one, two = str(tmp_path / "r1.json"), str(tmp_path / "r2.json")
        base = ["validate", "--core", "a53", "--profile", "fast", "--stages", "1",
                "--store", store_path]
        assert main(base + ["--out", one, "--run-id", "first"]) == 0
        first = capsys.readouterr().out
        assert "run id: first" in first

        assert main(base + ["--out", two]) == 0
        second = capsys.readouterr().out
        assert "0 unique simulations" in second and "store hits" in second

        with open(one, "rb") as f1, open(two, "rb") as f2:
            assert f1.read() == f2.read()

        assert main(["store", "stats", "--store", store_path]) == 0
        stats_out = capsys.readouterr().out
        assert "sim_results" in stats_out and "sqlite" in stats_out

        # Resume of the completed run replays checkpoints verbatim.
        three = str(tmp_path / "r3.json")
        assert main(["validate", "--resume", "first", "--store", store_path,
                     "--out", three]) == 0
        resumed = capsys.readouterr().out
        assert "resuming run first" in resumed
        assert "restored from checkpoint" in resumed
        with open(one, "rb") as f1, open(three, "rb") as f3:
            assert f1.read() == f3.read()

    def test_validate_resume_requires_store(self):
        with pytest.raises(SystemExit, match="store"):
            main(["validate", "--resume", "whatever"])

    def test_validate_resume_unknown_run(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown run id"):
            main(["validate", "--resume", "ghost",
                  "--store", str(tmp_path / "exp.sqlite")])

    def test_sweep_resume_rejects_validate_run(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        from repro.store import open_store

        with open_store(store_path) as store:
            store.registry.create("validate", run_id="v1", core="a53")
        with pytest.raises(SystemExit, match="not sweep"):
            main(["sweep", "--resume", "v1", "--store", store_path])

    def test_store_gc_and_export_import(self, capsys, tmp_path):
        store_path = str(tmp_path / "exp.sqlite")
        assert main(["measure", "--workload", "STc", "--store", store_path]) == 0
        capsys.readouterr()
        export_path = str(tmp_path / "dump.json")
        assert main(["store", "export", "--store", store_path, export_path]) == 0
        assert "exported" in capsys.readouterr().out

        other_path = str(tmp_path / "other.sqlite")
        assert main(["store", "import", "--store", other_path, export_path]) == 0
        assert "imported" in capsys.readouterr().out
        assert main(["store", "stats", "--store", other_path]) == 0
        assert "hw_results" in capsys.readouterr().out

        assert main(["store", "gc", "--store", store_path]) == 0
        assert "gc:" in capsys.readouterr().out


class TestFabricCommands:
    def test_fabric_executor_requires_store(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["simulate", "--workload", "STc", "--executor", "fabric"])
        with pytest.raises(SystemExit, match="--store"):
            main(["validate", "--executor", "fabric"])
        with pytest.raises(SystemExit, match="--store"):
            main(["sweep", "--workloads", "STc", "--set", "l1d.hit_latency=2",
                  "--executor", "fabric"])

    def test_process_executor_requires_jobs(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["simulate", "--workload", "STc", "--executor", "process"])
        with pytest.raises(SystemExit, match="--jobs"):
            main(["validate", "--executor", "process", "--jobs", "1"])
        with pytest.raises(SystemExit, match="--jobs"):
            main(["sweep", "--workloads", "STc", "--set", "l1d.hit_latency=2",
                  "--executor", "process"])

    def test_status_requeue_dead(self, capsys, tmp_path):
        from repro.fabric import JobQueue

        store_path = str(tmp_path / "fab.sqlite")
        with JobQueue(store_path, max_attempts=1) as queue:
            queue.enqueue([("doomed", "sleep", {"seconds": 0})])
            task = queue.claim("w1")
            queue.fail(task.key, "w1", "boom")
            assert queue.counts()["dead"] == 1
        assert main(["status", "--store", store_path, "--requeue-dead"]) == 0
        out = capsys.readouterr().out
        assert "requeued 1 dead task(s)" in out
        with JobQueue(store_path) as queue:
            assert queue.counts()["dead"] == 0
            assert queue.counts()["queued"] == 1

    def test_submit_worker_status_lifecycle(self, capsys, tmp_path):
        store_path = str(tmp_path / "fab.sqlite")
        assert main(["submit", "--core", "a53", "--workloads", "STc,MD",
                     "--set", "l1d.prefetcher=none,stride",
                     "--scale", "0.5", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "4 enqueued" in out and "queue depth now 4" in out

        # Resubmitting the same grid adds nothing (content-keyed dedup).
        assert main(["submit", "--core", "a53", "--workloads", "STc,MD",
                     "--set", "l1d.prefetcher=none,stride",
                     "--scale", "0.5", "--store", store_path]) == 0
        assert "0 enqueued, 0 already in store, 4 already queued" \
            in capsys.readouterr().out

        assert main(["worker", "--store", store_path, "--drain",
                     "--poll", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "4 claimed, 4 completed, 0 failed" in out

        assert main(["status", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "fabric queue" in out and "workers" in out
        assert "trials (unique/req)" in out

    def test_status_json_machine_readable(self, capsys, tmp_path):
        import json

        store_path = str(tmp_path / "fab.sqlite")
        assert main(["submit", "--core", "a53", "--workloads", "STc",
                     "--scale", "0.5", "--store", store_path]) == 0
        capsys.readouterr()
        assert main(["status", "--store", store_path, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["depth"] == 1
        assert snap["queue"]["queued"] == 1
        assert snap["results"]["sim_results"] == 0

    def test_submit_rejects_unknown_workload(self, tmp_path):
        store_path = str(tmp_path / "fab.sqlite")
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["submit", "--workloads", "NOPE", "--store", store_path])

    def test_submit_rejects_bad_set_key(self, tmp_path):
        store_path = str(tmp_path / "fab.sqlite")
        with pytest.raises(SystemExit, match="bad --set"):
            main(["submit", "--workloads", "STc", "--set", "l1d.nope=1",
                  "--store", store_path])

    def test_fabric_sweep_end_to_end(self, capsys, tmp_path):
        """A sweep dispatched through the fabric matches the serial one."""
        import json
        import threading

        from repro.fabric import FabricWorker

        serial_out = str(tmp_path / "serial.json")
        args = ["sweep", "--core", "a53", "--workloads", "STc,MD",
                "--set", "l1d.hit_latency=2,3", "--scale", "0.5"]
        assert main([*args, "--out", serial_out]) == 0
        capsys.readouterr()

        store_path = str(tmp_path / "fab.sqlite")
        fabric_out = str(tmp_path / "fabric.json")
        worker = FabricWorker(store_path, lease=10, poll=0.02, max_idle=60)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            assert main([*args, "--executor", "fabric", "--store", store_path,
                         "--out", fabric_out]) == 0
        finally:
            worker.stop()
            thread.join(timeout=10)
        capsys.readouterr()
        with open(serial_out) as fh:
            serial = json.load(fh)
        with open(fabric_out) as fh:
            fabric = json.load(fh)
        assert fabric["trials"] == serial["trials"]
        assert fabric["best"] == serial["best"]
