"""Analysis helpers: metrics, tables, figures, IO."""

import pytest

from repro.analysis.figures import bar_chart, paired_bar_chart
from repro.analysis.io import load_result_json, save_result_json
from repro.analysis.metrics import error_reduction_factor, summarize_errors
from repro.analysis.tables import render_error_table, render_table


class TestMetrics:
    def test_summary_values(self):
        errors = {"a": 0.1, "b": 0.2, "c": 0.6}
        summary = summarize_errors(errors)
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.3)
        assert summary.median == pytest.approx(0.2)
        assert summary.maximum == pytest.approx(0.6)
        assert summary.max_benchmark == "c"
        assert 0 < summary.geo_mean < summary.mean + 1e-9
        assert "max" in str(summary)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors({})

    def test_reduction_factor(self):
        before = {"a": 0.4, "b": 0.6}
        after = {"a": 0.1, "b": 0.1}
        assert error_reduction_factor(before, after) == pytest.approx(5.0)


class TestTables:
    def test_alignment_and_title(self):
        out = render_table(["name", "value"], [["x", 1.5], ["long-name", 2]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "---" in lines[2]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_error_table_single_and_paired(self):
        single = render_error_table({"wl": 0.153})
        assert "15.3%" in single
        paired = render_error_table({"wl": 0.5}, extra={"wl": 0.1})
        assert "50.0%" in paired and "10.0%" in paired


class TestFigures:
    def test_bar_chart_scales_and_clips(self):
        out = bar_chart({"a": 0.5, "b": 2.0}, clip=1.0, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert ">" in lines[1]  # clipped marker
        assert "AVERAGE" in lines[-1]

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_paired_chart_has_both_series(self):
        out = paired_bar_chart({"wl": 0.6}, {"wl": 0.1})
        assert "not tuned" in out and "tuned" in out
        assert "AVERAGE" in out


class TestIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sub" / "result.json")
        payload = {"errors": {"a": 0.1}, "assignment": {"l1d.mshr_entries": 3}}
        save_result_json(path, payload)
        assert load_result_json(path) == payload

    def test_set_coerced(self, tmp_path):
        path = str(tmp_path / "r.json")
        save_result_json(path, {"s": {3, 1, 2}})
        assert load_result_json(path)["s"] == [1, 2, 3]
