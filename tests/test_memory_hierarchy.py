"""Assembled memory hierarchy."""

import pytest

from repro.core.config import cortex_a53_public_config
from repro.hardware.effects import HardwareEffects, HardwareEffectsConfig
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture()
def hierarchy(a53_config):
    return MemoryHierarchy(a53_config)


class TestStructure:
    def test_levels_wired(self, hierarchy):
        assert hierarchy.l1i.next_level is hierarchy.l2
        assert hierarchy.l1d.next_level is hierarchy.l2
        assert hierarchy.l2.next_level is hierarchy.dram

    def test_mismatched_line_sizes_rejected(self, a53_config):
        bad = a53_config.with_updates({"l1d.line_size": 32})
        with pytest.raises(ValueError, match="line size"):
            MemoryHierarchy(bad)


class TestAccessPaths:
    def test_load_miss_goes_through_l2_to_dram(self, hierarchy):
        done = hierarchy.load(0x40_0000, pc=0x1000, now=0)
        assert done > 100
        assert hierarchy.l1d.stats.misses == 1
        assert hierarchy.l2.stats.misses == 1
        assert hierarchy.dram.accesses == 1

    def test_load_hit_stays_in_l1(self, hierarchy):
        warm = hierarchy.load(0x40_0000, pc=0x1000, now=0)
        done = hierarchy.load(0x40_0000, pc=0x1000, now=warm)
        assert done - warm <= hierarchy.l1d.hit_latency + 1
        assert hierarchy.dram.accesses == 1

    def test_ifetch_uses_l1i(self, hierarchy):
        hierarchy.ifetch(0x1000, 0)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0

    def test_store_goes_through_store_buffer(self, hierarchy):
        issue = hierarchy.store(0x40_0000, pc=0x1000, now=0)
        assert issue == 0  # buffer empty: no stall
        assert hierarchy.store_buffer.pushes == 1

    def test_store_to_load_forwarding(self, hierarchy):
        hierarchy.store(0x40_0000, pc=0x1000, now=0)
        done = hierarchy.load(0x40_0000, pc=0x1004, now=1)
        assert done - 1 <= hierarchy.store_buffer.forward_latency
        assert hierarchy.store_buffer.forwards == 1

    def test_reset_clears_everything(self, hierarchy):
        hierarchy.load(0x40_0000, 0x1000, 0)
        hierarchy.store(0x41_0000, 0x1000, 0)
        hierarchy.reset()
        assert hierarchy.l1d.stats.accesses == 0
        assert hierarchy.dram.accesses == 0
        assert hierarchy.store_buffer.pushes == 0


class TestEffectsHooks:
    def _effects(self, **kwargs):
        defaults = dict(
            dtlb_entries=2,
            itlb_entries=2,
            tlb_walk_latency=500,
            zero_page_latency=2,
            taken_branch_bubble_period=0,
        )
        defaults.update(kwargs)
        return HardwareEffects(HardwareEffectsConfig(**defaults))

    def test_zero_page_overrides_untouched_page_loads(self, a53_config):
        effects = self._effects()
        hierarchy = MemoryHierarchy(a53_config, effects=effects)
        done = hierarchy.load(0x40_0000, pc=0x1000, now=0)
        assert done == 2  # zero-page service, no cache traffic
        assert hierarchy.l1d.stats.accesses == 0

    def test_written_page_disables_zero_page(self, a53_config):
        effects = self._effects()
        hierarchy = MemoryHierarchy(a53_config, effects=effects)
        hierarchy.store(0x40_0000, pc=0x1000, now=0)
        done = hierarchy.load(0x40_0040, pc=0x1004, now=10_000)
        assert done > 100  # real miss path plus possible TLB walk
        # Two L1D accesses: the store's drain write and this load.
        assert hierarchy.l1d.stats.accesses == 2

    def test_tlb_walk_latency_added(self, a53_config):
        effects = self._effects(zero_page_latency=-1)
        hierarchy = MemoryHierarchy(a53_config, effects=effects)
        base_config = cortex_a53_public_config()
        plain = MemoryHierarchy(base_config)
        with_tlb = hierarchy.load(0x40_0000, 0x1000, 0)
        without = plain.load(0x40_0000, 0x1000, 0)
        assert with_tlb >= without + 500
        assert effects.dtlb_misses == 1
