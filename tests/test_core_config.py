"""Configuration tree and dotted-path access."""

import pytest

from repro.core.config import (
    SimConfig,
    cortex_a53_public_config,
    cortex_a72_public_config,
)


class TestPublicConfigs:
    def test_a53_matches_disclosed_information(self):
        cfg = cortex_a53_public_config()
        assert cfg.core_type == "inorder"
        assert cfg.l1d.size == 32 * 1024 and cfg.l1d.assoc == 4
        assert cfg.l1i.size == 32 * 1024 and cfg.l1i.assoc == 2
        assert cfg.l2.size == 512 * 1024 and cfg.l2.assoc == 16
        assert cfg.pipeline.issue_width == 2
        assert abs(cfg.frequency_ghz - 1.51) < 1e-9

    def test_a72_matches_disclosed_information(self):
        cfg = cortex_a72_public_config()
        assert cfg.core_type == "ooo"
        assert cfg.l1i.size == 48 * 1024 and cfg.l1i.assoc == 3
        assert cfg.l2.size == 1024 * 1024
        assert abs(cfg.frequency_ghz - 1.99) < 1e-9

    def test_invalid_core_type_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(core_type="vliw")


class TestDottedAccess:
    def test_get_reads_nested_fields(self):
        cfg = cortex_a53_public_config()
        assert cfg.get("l1d.assoc") == 4
        assert cfg.get("branch.predictor") == "bimodal"
        assert cfg.get("core_type") == "inorder"

    def test_get_unknown_path(self):
        cfg = cortex_a53_public_config()
        with pytest.raises(KeyError):
            cfg.get("l1d.bogus")
        with pytest.raises(KeyError):
            cfg.get("l9.assoc")

    def test_with_updates_returns_modified_copy(self):
        cfg = cortex_a53_public_config()
        new = cfg.with_updates({"l1d.hit_latency": 3, "branch.predictor": "gshare"})
        assert new.l1d.hit_latency == 3
        assert new.branch.predictor == "gshare"
        assert cfg.l1d.hit_latency == 2  # original untouched
        assert new.l1d.size == cfg.l1d.size

    def test_with_updates_top_level_field(self):
        cfg = cortex_a53_public_config()
        assert cfg.with_updates({"name": "mine"}).name == "mine"

    def test_with_updates_validates(self):
        cfg = cortex_a53_public_config()
        with pytest.raises(KeyError):
            cfg.with_updates({"l1d.bogus": 1})
        with pytest.raises(KeyError):
            cfg.with_updates({"nosuch.field": 1})
        with pytest.raises(KeyError):
            cfg.with_updates({"l1d": 1})  # section without field
        with pytest.raises(KeyError):
            cfg.with_updates({"a.b.c": 1})

    def test_flatten_round_trips_through_get(self):
        cfg = cortex_a72_public_config()
        flat = cfg.flatten()
        assert flat["l1d.size"] == 32 * 1024
        assert flat["pipeline.rob_size"] == cfg.pipeline.rob_size
        for path, value in list(flat.items())[:20]:
            assert cfg.get(path) == value

    def test_configs_are_frozen(self):
        cfg = cortex_a53_public_config()
        with pytest.raises(Exception):
            cfg.l1d.size = 1
