"""Iterated racing driver and sampling model."""

import random

import pytest

from repro.tuning.irace import IraceTuner
from repro.tuning.parameters import CategoricalParam, OrdinalParam, ParamSpace
from repro.tuning.sampling import CategoricalSampler, ConfigSampler, OrdinalSampler


def _quadratic_space():
    """Cost = distance from a hidden optimum; instances add small noise."""
    space = ParamSpace([
        OrdinalParam("a", [0, 1, 2, 3, 4, 5, 6, 7]),
        OrdinalParam("b", [0, 1, 2, 3, 4, 5, 6, 7]),
        CategoricalParam("c", ["red", "green", "blue"]),
    ])
    optimum = {"a": 5, "b": 2, "c": "green"}
    rng = random.Random(42)
    noise = {i: rng.uniform(-0.02, 0.02) for i in range(20)}

    def evaluate(assignment, instance):
        cost = 0.1 * abs(assignment["a"] - optimum["a"])
        cost += 0.1 * abs(assignment["b"] - optimum["b"])
        cost += 0.0 if assignment["c"] == optimum["c"] else 0.3
        return cost + noise[instance] + 0.05

    return space, evaluate, optimum


class TestSamplers:
    def test_categorical_update_biases_toward_elites(self):
        param = CategoricalParam("x", ["a", "b", "c"])
        sampler = CategoricalSampler(param)
        for _ in range(5):
            sampler.update(["b", "b", "b"], rate=0.5)
        probs = dict(zip(param.values, sampler.probs))
        assert probs["b"] > 0.8
        assert abs(sum(sampler.probs) - 1.0) < 1e-9

    def test_categorical_sample_respects_parent_weight(self):
        param = CategoricalParam("x", ["a", "b", "c"])
        sampler = CategoricalSampler(param)
        rng = random.Random(0)
        picks = [sampler.sample(rng, parent_value="c", parent_weight=1.0) for _ in range(20)]
        assert set(picks) == {"c"}

    def test_ordinal_sampling_localises_around_parent(self):
        param = OrdinalParam("x", list(range(11)))
        sampler = OrdinalSampler(param)
        for _ in range(6):
            sampler.shrink(0.5)
        rng = random.Random(1)
        picks = [sampler.sample(rng, parent_value=5) for _ in range(100)]
        assert all(3 <= p <= 7 for p in picks)

    def test_ordinal_sampling_stays_in_range(self):
        param = OrdinalParam("x", [1, 2, 3])
        sampler = OrdinalSampler(param)
        rng = random.Random(2)
        picks = {sampler.sample(rng, parent_value=1) for _ in range(200)}
        assert picks <= {1, 2, 3}

    def test_config_sampler_produces_valid_assignments(self):
        space, _, _ = _quadratic_space()
        sampler = ConfigSampler(space, seed=3)
        for _ in range(30):
            assignment = sampler.sample_config()
            space.validate_assignment(assignment)
            assert set(assignment) == set(space.names())


class TestIraceTuner:
    def test_recovers_hidden_optimum(self):
        space, evaluate, optimum = _quadratic_space()
        tuner = IraceTuner(
            space, evaluate, instances=list(range(20)), budget=900, seed=5, first_test=4
        )
        result = tuner.run()
        assert result.best_assignment["c"] == optimum["c"]
        assert abs(result.best_assignment["a"] - optimum["a"]) <= 1
        assert abs(result.best_assignment["b"] - optimum["b"]) <= 1
        assert result.best_cost < 0.30

    def test_improves_over_initial_guess(self):
        space, evaluate, _ = _quadratic_space()
        initial = {"a": 0, "b": 7, "c": "red"}
        tuner = IraceTuner(
            space, evaluate, instances=list(range(20)), budget=600,
            seed=6, initial_assignments=[initial], first_test=4,
        )
        result = tuner.run()
        initial_cost = sum(evaluate(initial, i) for i in range(20)) / 20
        assert result.best_cost < initial_cost

    def test_history_recorded(self):
        space, evaluate, _ = _quadratic_space()
        tuner = IraceTuner(space, evaluate, instances=list(range(20)), budget=400, seed=7)
        result = tuner.run()
        assert result.history
        assert all(it.evaluations > 0 for it in result.history)
        assert "irace finished" in result.summary()

    def test_evaluation_cache_prevents_recomputation(self):
        space, evaluate, _ = _quadratic_space()
        calls = []

        def counting(assignment, instance):
            calls.append(1)
            return evaluate(assignment, instance)

        tuner = IraceTuner(space, counting, instances=list(range(20)), budget=500, seed=8)
        result = tuner.run()
        # unique (config, instance) pairs == raw evaluator calls
        assert len(calls) == result.total_evaluations

    def test_async_race_mode_pins_identical_result(self):
        """The tuned outcome is bit-identical between race modes: only
        trial telemetry (requested/unique counts) may differ, because
        speculation can compute trials that are cancelled too late."""
        space, evaluate, _ = _quadratic_space()

        def run(**kwargs):
            tuner = IraceTuner(space, evaluate, instances=list(range(20)),
                               budget=500, seed=9, first_test=4, **kwargs)
            return tuner.run()

        sync = run()
        live = run(race_mode="async", lookahead=3)
        assert live.best_assignment == sync.best_assignment
        assert live.best_cost == sync.best_cost
        assert live.elites == sync.elites
        assert live.history == sync.history
        assert live.budget == sync.budget

    def test_unknown_race_mode_rejected(self):
        space, evaluate, _ = _quadratic_space()
        with pytest.raises(ValueError, match="race mode"):
            IraceTuner(space, evaluate, instances=list(range(20)),
                       budget=200, race_mode="turbo")

    def test_budget_too_small_rejected(self):
        space, evaluate, _ = _quadratic_space()
        with pytest.raises(ValueError):
            IraceTuner(space, evaluate, instances=list(range(20)), budget=5)

    def test_invalid_initial_assignment_rejected(self):
        space, evaluate, _ = _quadratic_space()
        with pytest.raises(ValueError):
            IraceTuner(
                space, evaluate, instances=list(range(20)), budget=200,
                initial_assignments=[{"a": 99, "b": 0, "c": "red"}],
            )
