"""Behavioural patterns driving the interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.program import (
    AlwaysTaken,
    ChaseAddr,
    CycleTargets,
    FixedAddr,
    ListAddr,
    NeverTaken,
    PatternTaken,
    RandomAddr,
    RandomTaken,
    RandomTargets,
    SequentialAddr,
)


class TestAddrPatterns:
    def test_fixed_addr_constant(self):
        p = FixedAddr(0x1234)
        assert [p.next_addr() for _ in range(3)] == [0x1234] * 3

    def test_sequential_wraps_at_window(self):
        p = SequentialAddr(100, 8, 24)
        assert [p.next_addr() for _ in range(5)] == [100, 108, 116, 100, 108]

    def test_sequential_reset_restarts(self):
        p = SequentialAddr(0, 64, 256)
        first = [p.next_addr() for _ in range(4)]
        p.reset()
        assert [p.next_addr() for _ in range(4)] == first

    def test_sequential_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            SequentialAddr(0, 0, 64)

    def test_random_addr_is_deterministic_and_aligned(self):
        a = RandomAddr(0x1000, 4096, seed=5, align=64)
        b = RandomAddr(0x1000, 4096, seed=5, align=64)
        seq = [a.next_addr() for _ in range(20)]
        assert seq == [b.next_addr() for _ in range(20)]
        assert all(addr % 64 == 0 for addr in seq)
        assert all(0x1000 <= addr < 0x1000 + 4096 for addr in seq)

    def test_chase_visits_every_line_once_per_pass(self):
        lines = 16
        p = ChaseAddr(0, lines, seed=3)
        visited = {p.next_addr() // 64 for _ in range(lines)}
        assert visited == set(range(lines))

    def test_chase_reset_restarts_permutation(self):
        p = ChaseAddr(0, 8, seed=1)
        first = [p.next_addr() for _ in range(8)]
        p.reset()
        assert [p.next_addr() for _ in range(8)] == first

    def test_list_addr_cycles(self):
        p = ListAddr([1, 2, 3])
        assert [p.next_addr() for _ in range(5)] == [1, 2, 3, 1, 2]

    def test_list_addr_rejects_empty(self):
        with pytest.raises(ValueError):
            ListAddr([])


class TestBranchPatterns:
    def test_always_and_never(self):
        assert AlwaysTaken().next_taken() is True
        assert NeverTaken().next_taken() is False

    def test_pattern_taken_cycles(self):
        p = PatternTaken("TTN")
        assert [p.next_taken() for _ in range(6)] == [True, True, False] * 2

    def test_pattern_taken_validates(self):
        with pytest.raises(ValueError):
            PatternTaken("TX")
        with pytest.raises(ValueError):
            PatternTaken("")

    def test_random_taken_rate_and_determinism(self):
        p = RandomTaken(0.8, seed=9)
        outcomes = [p.next_taken() for _ in range(500)]
        p.reset()
        assert outcomes == [p.next_taken() for _ in range(500)]
        rate = sum(outcomes) / len(outcomes)
        assert 0.7 < rate < 0.9

    @given(prob=st.floats(min_value=-2, max_value=2))
    def test_random_taken_validates_probability(self, prob):
        if 0.0 <= prob <= 1.0:
            RandomTaken(prob, seed=0)
        else:
            with pytest.raises(ValueError):
                RandomTaken(prob, seed=0)


class TestTargetPatterns:
    def test_cycle_targets_round_robin(self):
        p = CycleTargets([5, 9])
        assert [p.next_target() for _ in range(4)] == [5, 9, 5, 9]

    def test_random_targets_deterministic_within_set(self):
        p = RandomTargets([1, 2, 3], seed=4)
        seq = [p.next_target() for _ in range(30)]
        assert set(seq) <= {1, 2, 3}
        p.reset()
        assert seq == [p.next_target() for _ in range(30)]

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            CycleTargets([])
        with pytest.raises(ValueError):
            RandomTargets([], seed=0)
