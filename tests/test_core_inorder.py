"""In-order core timing behaviour."""

import pytest

from repro.core.inorder import InOrderCore
from repro.isa.decoder import Decoder
from repro.simulator import SnipeSim
from tests.conftest import make_alu_loop_trace, make_load_loop_trace


def _run(config, trace):
    core = InOrderCore(config)
    return core.run(trace, trace.decoded_with(Decoder()))


class TestThroughput:
    def test_independent_alu_dual_issues(self, a53_config):
        trace = make_alu_loop_trace(n_iters=100, body=8)
        stats = _run(a53_config, trace)
        # 2-wide in-order: CPI should approach 0.5 on independent ALU work.
        assert stats.cpi < 0.75

    def test_single_issue_config_halves_throughput(self, a53_config):
        trace = make_alu_loop_trace(n_iters=100, body=8)
        wide = _run(a53_config, trace).cpi
        narrow = _run(a53_config.with_updates({"pipeline.issue_width": 1}), trace).cpi
        assert narrow > 1.5 * wide

    def test_dependent_chain_serialises(self, a53_config):
        dep = make_alu_loop_trace(n_iters=100, body=8, dependent=True)
        indep = make_alu_loop_trace(n_iters=100, body=8, dependent=False)
        assert _run(a53_config, dep).cpi > 1.4 * _run(a53_config, indep).cpi

    def test_wrong_core_type_rejected(self, a72_config):
        with pytest.raises(ValueError):
            InOrderCore(a72_config)


class TestMemoryBehaviour:
    def test_l1_resident_loads_fast(self, a53_config):
        trace = make_load_loop_trace(window=8 * 1024, n_iters=300)
        stats = _run(a53_config, trace)
        # After the cold pass the stream hits in the L1.
        assert stats.l1d.miss_rate < 0.1
        assert stats.cpi < 3

    def test_dram_resident_loads_slow(self, a53_config):
        near = _run(a53_config, make_load_loop_trace(window=8 * 1024)).cpi
        far = _run(a53_config, make_load_loop_trace(window=8 * 1024 * 1024)).cpi
        assert far > 3 * near

    def test_higher_l2_latency_costs_cycles(self, a53_config):
        # 64 KB working set: spills the 32 KB L1D, lives in the L2.
        trace = make_load_loop_trace(window=64 * 1024, n_iters=400)
        fast = _run(a53_config.with_updates({"l2.hit_latency": 10}), trace).cycles
        slow = _run(a53_config.with_updates({"l2.hit_latency": 20}), trace).cycles
        assert slow > fast

    def test_stall_on_use_beats_stall_on_load(self, a53_config):
        trace = make_load_loop_trace(window=512 * 1024)
        on_use = _run(a53_config.with_updates({"pipeline.stall_on_use": True}), trace).cycles
        on_load = _run(a53_config.with_updates({"pipeline.stall_on_use": False}), trace).cycles
        assert on_use <= on_load


class TestBranchBehaviour:
    def test_mispredict_penalty_scales_cycles(self, a53_config):
        from repro.frontend.builder import ProgramBuilder
        from repro.frontend.interpreter import trace_program
        from repro.frontend.program import PatternTaken, RandomTaken
        from repro.isa.opclasses import OpClass
        from repro.isa.registers import int_reg

        b = ProgramBuilder("hard-branches")
        b.label("top")
        for k in range(4):
            b.branch(f"s{k}", RandomTaken(0.5, seed=k), cond_reg=int_reg(2))
            b.op(OpClass.IALU, int_reg(3), int_reg(1), int_reg(2))
            b.label(f"s{k}")
        b.branch("top", PatternTaken("T" * 99 + "N"), cond_reg=int_reg(2))
        trace = trace_program(b.build())

        cheap = _run(a53_config.with_updates({"branch.mispredict_penalty": 6}), trace)
        dear = _run(a53_config.with_updates({"branch.mispredict_penalty": 12}), trace)
        assert dear.cycles > cheap.cycles
        assert dear.branch.mispredicts == cheap.branch.mispredicts

    def test_better_predictor_fewer_mispredicts(self, a53_config):
        from repro.frontend.builder import ProgramBuilder
        from repro.frontend.interpreter import trace_program
        from repro.frontend.program import PatternTaken
        from repro.isa.opclasses import OpClass
        from repro.isa.registers import int_reg

        b = ProgramBuilder("patterned")
        b.label("top")
        for k in range(4):
            b.branch(f"s{k}", PatternTaken("TTNN"), cond_reg=int_reg(2))
            b.op(OpClass.IALU, int_reg(3), int_reg(1), int_reg(2))
            b.label(f"s{k}")
        b.branch("top", PatternTaken("T" * 199 + "N"), cond_reg=int_reg(2))
        trace = trace_program(b.build())

        static = _run(a53_config.with_updates({"branch.predictor": "static-taken"}), trace)
        gshare = _run(a53_config.with_updates({"branch.predictor": "gshare"}), trace)
        assert gshare.branch.mispredicts < static.branch.mispredicts
        assert gshare.cycles < static.cycles


class TestDeterminism:
    def test_same_trace_same_cycles(self, a53_config, alu_trace):
        assert _run(a53_config, alu_trace).cycles == _run(a53_config, alu_trace).cycles

    def test_simulator_facade_fresh_state_per_run(self, a53_config, load_trace):
        sim = SnipeSim(a53_config)
        first = sim.run(load_trace)
        second = sim.run(load_trace)
        assert first.cycles == second.cycles
        assert first.l1d.misses == second.l1d.misses
