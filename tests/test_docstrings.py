"""Docstring guard wired into the tier-1 gate.

Runs the same check CI's docs job runs (``tools/check_docstrings.py``)
so an undocumented public entry point fails locally before it fails in
CI.
"""

from __future__ import annotations

import os
import subprocess
import sys

ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))


def test_public_entry_points_are_documented():
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, "tools", "check_docstrings.py")],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, f"docstring guard failed:\n{proc.stdout}{proc.stderr}"


def test_intra_repo_markdown_links_resolve():
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, "tools", "check_links.py"), ROOT],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, f"link check failed:\n{proc.stdout}{proc.stderr}"
