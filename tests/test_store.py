"""Persistent experiment store: backends, registry, housekeeping."""

import threading

import pytest

from repro.core.config import cortex_a53_public_config
from repro.engine import EvaluationEngine
from repro.engine.keys import hw_key, sim_key
from repro.store import (
    SCHEMA_VERSION,
    MemoryBackend,
    ResultStore,
    SqliteBackend,
    open_store,
)
from repro.store.serialize import (
    encode_key,
    perf_from_payload,
    perf_to_payload,
    stats_from_payload,
    stats_to_payload,
)
from repro.workloads.microbench import get_microbenchmark

WORKLOADS = [get_microbenchmark(n) for n in ("ED1", "CCh")]


def make_engine(board, store=None, core="a53", **kwargs):
    kwargs.setdefault("scale", 0.5)
    return EvaluationEngine(hw=board.core(core), workloads=WORKLOADS,
                            store=store, **kwargs)


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        with open_store("memory") as s:
            yield s
    else:
        with open_store(str(tmp_path / "exp.sqlite")) as s:
            yield s


class TestSerialisation:
    def test_sim_stats_round_trip(self, board):
        engine = make_engine(board)
        stats = engine.simulate(cortex_a53_public_config(), "ED1")
        rebuilt = stats_from_payload(stats_to_payload(stats))
        assert rebuilt == stats

    def test_perf_result_round_trip(self, board):
        engine = make_engine(board)
        result = engine.measure_hw("ED1")
        rebuilt = perf_from_payload(perf_to_payload(result))
        assert rebuilt == result

    def test_key_encoding_is_content_addressed(self):
        config = cortex_a53_public_config()
        key = sim_key(config, "ED1", 0.5, {}, None.__class__)
        clone = sim_key(config.with_updates({}), "ED1", 0.5, {}, None.__class__)
        assert encode_key(key) == encode_key(clone)
        other = sim_key(config.with_updates({"l1d.hit_latency": 4}),
                        "ED1", 0.5, {}, None.__class__)
        assert encode_key(key) != encode_key(other)


class TestResultStore:
    def test_sim_round_trip(self, store, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        stats = engine.simulate(config, "ED1")
        key = engine.result_key(config, "ED1")
        assert store.get_sim(key) is None
        store.put_sim(key, stats)
        assert store.get_sim(key) == stats

    def test_hw_round_trip(self, store, board):
        engine = make_engine(board)
        result = engine.measure_hw("ED1")
        key = hw_key("a53", "ED1", 0.5, {})
        store.put_hw(key, result)
        assert store.get_hw(key) == result
        assert store.get_hw(hw_key("a72", "ED1", 0.5, {})) is None

    def test_cost_round_trip(self, store):
        key = ("cost", "run-1/stage1", (("l1d.hit_latency", 3),), "ED1")
        assert store.get_cost(key) is None
        store.put_cost_many([(key, 0.123456789012345)])
        assert store.get_cost(key) == 0.123456789012345

    def test_checkpoints(self, store):
        store.put_checkpoint("run-a", "stage1", {"x": 1})
        store.put_checkpoint("run-a", "stage2", {"x": 2})
        store.put_checkpoint("run-b", "stage1", {"x": 3})
        assert store.get_checkpoint("run-a", "stage1") == {"x": 1}
        assert store.get_checkpoint("run-a", "missing") is None
        assert sorted(store.list_checkpoints("run-a")) == ["stage1", "stage2"]
        assert store.delete_checkpoints("run-a") == 2
        assert store.list_checkpoints("run-a") == []
        assert store.get_checkpoint("run-b", "stage1") == {"x": 3}

    def test_stats_counts(self, store, board):
        engine = make_engine(board, store=store)
        engine.evaluate(cortex_a53_public_config(), "ED1")
        stats = store.stats()
        assert stats["sim_results"] == 1
        assert stats["hw_results"] == 1
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["backend"] in ("memory", "sqlite")

    def test_export_import_round_trip(self, store, board, tmp_path):
        engine = make_engine(board, store=store)
        engine.evaluate(cortex_a53_public_config(), "ED1")
        out = str(tmp_path / "export.json")
        counts = store.export_json(out)
        assert counts["sim_results"] == 1 and counts["hw_results"] == 1

        with open_store("memory") as other:
            imported = other.import_json(out)
            assert imported["sim_results"] == 1
            key = engine.result_key(cortex_a53_public_config(), "ED1")
            assert other.get_sim(key) == engine.simulate(
                cortex_a53_public_config(), "ED1")
            # Idempotent: a second import adds nothing.
            assert sum(other.import_json(out).values()) == 0

    def test_import_rejects_wrong_schema(self, store, tmp_path):
        from repro.analysis.io import save_result_json

        bad = str(tmp_path / "bad.json")
        save_result_json(bad, {"schema_version": 999, "tables": {}})
        with pytest.raises(RuntimeError, match="schema"):
            store.import_json(bad)

    def test_gc_drops_finished_runs_checkpoints(self, store):
        reg = store.registry
        done = reg.create("validate", core="a53")
        live = reg.create("validate", core="a72")
        store.put_checkpoint(done.run_id, "stage1", {"x": 1})
        store.put_checkpoint(live.run_id, "stage1", {"x": 2})
        reg.finish(done.run_id)
        removed = store.gc()
        assert removed["checkpoints_removed"] == 1
        assert store.get_checkpoint(done.run_id, "stage1") is None
        assert store.get_checkpoint(live.run_id, "stage1") == {"x": 2}

    def test_gc_prunes_old_rows(self, store):
        store.backend.put("sim_results", "old-key", "{}")
        # Everything just written is younger than any positive cutoff...
        assert store.gc(days=1)["rows_pruned"] == 0
        # ...and older than a cutoff in the future (negative days).
        assert store.gc(days=-1)["rows_pruned"] == 1


class TestRunRegistry:
    def test_create_get_finish(self, store):
        reg = store.registry
        record = reg.create("validate", core="a53", profile="fast", seed=7,
                            params={"stages": 2})
        assert record.status == "running"
        fetched = reg.get(record.run_id)
        assert fetched.core == "a53" and fetched.seed == 7
        assert fetched.params == {"stages": 2}
        done = reg.finish(record.run_id, telemetry={"unique_trials": 5})
        assert done.status == "completed"
        assert done.wall_seconds >= 0.0
        assert reg.get(record.run_id).telemetry == {"unique_trials": 5}

    def test_duplicate_run_id_rejected(self, store):
        store.registry.create("validate", run_id="fixed")
        with pytest.raises(ValueError, match="already registered"):
            store.registry.create("validate", run_id="fixed")

    def test_unknown_run_id(self, store):
        with pytest.raises(KeyError):
            store.registry.get("nope")

    def test_list_filters_and_orders(self, store):
        reg = store.registry
        a = reg.create("validate", core="a53")
        b = reg.create("sweep", core="a53")
        reg.finish(b.run_id)
        assert [r.run_id for r in reg.list(kind="validate")] == [a.run_id]
        assert [r.run_id for r in reg.list(status="completed")] == [b.run_id]
        assert len(reg.list()) == 2
        assert reg.latest(kind="sweep").run_id == b.run_id

    def test_reopen_marks_running(self, store):
        record = store.registry.create("validate")
        store.registry.finish(record.run_id, status="interrupted")
        reopened = store.registry.reopen(record.run_id)
        assert reopened.status == "running" and reopened.finished is None

    def test_summary_mentions_identity(self, store):
        record = store.registry.create("validate", core="a53", profile="fast")
        assert "validate" in record.summary() and "a53" in record.summary()


class TestBackends:
    def test_memory_and_sqlite_agree(self, tmp_path):
        mem, sql = MemoryBackend(), SqliteBackend(str(tmp_path / "b.sqlite"))
        for backend in (mem, sql):
            assert backend.put("sim_results", "k1", "v1")
            assert not backend.put("sim_results", "k1", "v2", replace=False)
            assert backend.get("sim_results", "k1") == "v1"
            backend.put("sim_results", "k1", "v2")
            assert backend.get("sim_results", "k1") == "v2"
            assert backend.count("sim_results") == 1
            assert [row[0] for row in backend.items("sim_results")] == ["k1"]
            assert backend.delete("sim_results", "k1")
            assert not backend.delete("sim_results", "k1")
        sql.close()

    def test_sqlite_schema_version_mismatch_fails(self, tmp_path):
        path = str(tmp_path / "v.sqlite")
        backend = SqliteBackend(path)
        backend._conn.execute(
            "UPDATE store_meta SET value = '999' WHERE key = 'schema_version'")
        backend.close()
        with pytest.raises(RuntimeError, match="schema v999"):
            SqliteBackend(path)

    def test_sqlite_two_connections_share_rows(self, tmp_path):
        path = str(tmp_path / "shared.sqlite")
        one, two = SqliteBackend(path), SqliteBackend(path)
        one.put("sim_results", "k", "from-one")
        assert two.get("sim_results", "k") == "from-one"
        two.put("hw_results", "h", "from-two")
        assert one.get("hw_results", "h") == "from-two"
        one.close(), two.close()

    def test_sqlite_concurrent_writers(self, tmp_path):
        path = str(tmp_path / "conc.sqlite")
        backends = [SqliteBackend(path) for _ in range(2)]

        def write(backend, tag):
            for i in range(50):
                backend.put("trial_costs", f"{tag}-{i}", str(i))

        threads = [threading.Thread(target=write, args=(b, t))
                   for b, t in zip(backends, ("a", "b"))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert backends[0].count("trial_costs") == 100
        for b in backends:
            b.close()

    def test_open_store_specs(self, tmp_path):
        assert open_store("memory").backend.kind == "memory"
        assert open_store(":memory:").backend.kind == "memory"
        disk = open_store(str(tmp_path / "sub" / "dir" / "s.sqlite"))
        assert disk.backend.kind == "sqlite"
        disk.close()

    def test_result_store_wraps_any_backend(self):
        store = ResultStore(MemoryBackend())
        assert store.stats()["backend"] == "memory"
