"""Validation campaign logic (without full-budget tuning runs)."""

import pytest

from repro.isa.decoder import BuggyDecoder, Decoder
from repro.validation.campaign import (
    BudgetProfile,
    PROFILES,
    ValidationCampaign,
)
from repro.workloads.microbench import get_microbenchmark

#: A small but representative sub-suite keeps campaign tests quick.
SUBSET = [get_microbenchmark(n) for n in
          ("ED1", "EM1", "EF", "MD", "ML2", "CCh", "CCe", "CS1", "STc", "DPT")]


@pytest.fixture()
def campaign(board):
    profile = BudgetProfile("test", 150, 150, first_test=4, n_elites=2)
    return ValidationCampaign(board, core="a53", profile=profile, seed=11, workloads=SUBSET)


class TestSteps:
    def test_step1_selects_core_config(self, board):
        a53 = ValidationCampaign(board, core="a53").step1_public_config()
        a72 = ValidationCampaign(board, core="a72").step1_public_config()
        assert a53.core_type == "inorder" and a72.core_type == "ooo"

    def test_step2_sets_latencies(self, campaign):
        config = campaign.step1_public_config()
        updated = campaign.step2_lmbench(config)
        assert updated.l1d.hit_latency >= 1
        assert updated.l2.hit_latency != config.l2.hit_latency or True
        assert updated.memsys.dram_latency > 100

    def test_evaluate_returns_per_workload_errors(self, campaign):
        config = campaign.step1_public_config()
        errors = campaign.evaluate(config)
        assert set(errors) == {wl.name for wl in SUBSET}
        assert all(err >= 0 for err in errors.values())

    def test_evaluator_saturates_cost(self, campaign):
        config = campaign.step1_public_config()
        evaluator = campaign.make_evaluator(config)
        for wl in SUBSET:
            assert evaluator({}, wl.name) <= campaign.cost_saturation


class TestInspection:
    def test_indirect_outlier_detected(self, campaign):
        errors = {wl.name: 0.05 for wl in SUBSET}
        errors["CS1"] = 0.9
        report = campaign.step5_inspect(errors)
        assert any("indirect" in r for r in report.recommendations)

    def test_uninitialised_array_detected(self, board):
        subset = SUBSET + [get_microbenchmark("MM")]
        camp = ValidationCampaign(board, core="a53", workloads=subset)
        errors = {wl.name: 0.05 for wl in subset}
        errors["MM"] = 8.0
        report = camp.step5_inspect(errors)
        assert any("zero page" in r for r in report.recommendations)
        camp.apply_fixes(report)
        assert camp.workload_overrides["MM"] == {"initialized": True}

    def test_decoder_bug_detected_only_with_buggy_decoder(self, board):
        camp = ValidationCampaign(board, core="a53", workloads=SUBSET, decoder=BuggyDecoder())
        errors = {wl.name: 0.05 for wl in SUBSET}
        errors["DPT"] = 0.8
        report = camp.step5_inspect(errors)
        assert any("decoder" in r for r in report.recommendations)
        camp.apply_fixes(report)
        assert isinstance(camp.decoder, Decoder) and not isinstance(camp.decoder, BuggyDecoder)

    def test_quiet_errors_produce_no_recommendations(self, campaign):
        errors = {wl.name: 0.04 for wl in SUBSET}
        report = campaign.step5_inspect(errors)
        assert report.recommendations == []
        assert report.overall == pytest.approx(0.04)

    def test_per_category_breakdown(self, campaign):
        errors = {wl.name: 0.1 for wl in SUBSET}
        report = campaign.step5_inspect(errors)
        assert set(report.per_category) <= {"memory", "control", "dataparallel",
                                            "execution", "store"}
        assert "overall" in report.summary()


class TestEndToEnd:
    def test_small_campaign_reduces_error(self, campaign):
        result = campaign.run(stages=2)
        assert result.tuned_mean_error < result.untuned_mean_error
        assert len(result.stages) == 2
        assert result.final_config.core_type == "inorder"
        assert "validation campaign" in result.summary()

    def test_profiles_registry(self):
        for name in ("fast", "default", "thorough", "paper"):
            assert PROFILES[name].stage1_budget > 0
