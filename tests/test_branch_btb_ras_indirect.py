"""BTB, return-address stack and indirect predictors."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.indirect import (
    LastTargetPredictor,
    NoIndirectPredictor,
    TaggedIndirectPredictor,
)
from repro.branch.ras import ReturnAddressStack


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16, assoc=2)
        assert btb.lookup(0x100) == -1
        btb.insert(0x100, 0x500)
        assert btb.lookup(0x100) == 0x500

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=2, assoc=2)  # one set
        btb.insert(0x100, 1)
        btb.insert(0x200, 2)
        btb.lookup(0x100)       # refresh 0x100
        btb.insert(0x300, 3)    # evicts 0x200
        assert btb.lookup(0x100) == 1
        assert btb.lookup(0x200) == -1
        assert btb.lookup(0x300) == 3

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(entries=4, assoc=2)
        btb.insert(0x100, 1)
        btb.insert(0x100, 9)
        assert btb.lookup(0x100) == 9

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, assoc=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=0, assoc=1)

    def test_reset(self):
        btb = BranchTargetBuffer(entries=4, assoc=2)
        btb.insert(0x100, 1)
        btb.reset()
        assert btb.lookup(0x100) == -1


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1
        assert ras.pop() == -1

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(entries=2)
        for value in (1, 2, 3):
            ras.push(value)
        assert ras.pop() == 3
        assert ras.pop() == 2
        # Entry 1 was overwritten by the circular wrap.
        assert ras.pop() == -1

    def test_depth_tracking(self):
        ras = ReturnAddressStack(entries=4)
        assert ras.depth == 0
        ras.push(1)
        assert ras.depth == 1
        ras.pop()
        assert ras.depth == 0


class TestIndirect:
    def test_no_indirect_never_predicts(self):
        p = NoIndirectPredictor()
        p.update(0x100, 0x900)
        assert p.predict(0x100) == -1

    def test_last_target_tracks_most_recent(self):
        p = LastTargetPredictor(entries=32)
        p.update(0x100, 0x900)
        assert p.predict(0x100) == 0x900
        p.update(0x100, 0xA00)
        assert p.predict(0x100) == 0xA00

    def test_last_target_mispredicts_cycling_dispatch(self):
        p = LastTargetPredictor(entries=32)
        targets = [0x900, 0xA00, 0xB00]
        correct = 0
        for i in range(90):
            target = targets[i % 3]
            if p.predict(0x100) == target:
                correct += 1
            p.update(0x100, target)
        assert correct == 0  # always predicts the previous arm

    def test_tagged_learns_cycling_dispatch(self):
        p = TaggedIndirectPredictor(entries=256, history_bits=8)
        targets = [0x900, 0xA00, 0xB00, 0xC00]
        correct = 0
        total = 200
        for i in range(total):
            target = targets[i % 4]
            if p.predict(0x100) == target:
                correct += 1
            p.update(0x100, target)
        assert correct / total > 0.8

    def test_tagged_reset(self):
        p = TaggedIndirectPredictor(entries=64, history_bits=4)
        p.update(0x100, 0x900)
        p.reset()
        assert p.predict(0x100) == -1
