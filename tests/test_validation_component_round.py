"""Step-5 component-focused tuning rounds (weighted cost)."""

import pytest

from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import ALL_MICROBENCHMARKS


@pytest.fixture()
def campaign(board):
    profile = BudgetProfile("test", 120, 120, first_test=4, n_elites=2)
    return ValidationCampaign(board, core="a53", profile=profile, seed=17,
                              workloads=list(ALL_MICROBENCHMARKS))


class TestComponentRound:
    def test_unknown_component_rejected(self, campaign):
        config = campaign.step1_public_config()
        with pytest.raises(ValueError, match="unknown component"):
            campaign.component_round(config, "noc")

    def test_branch_round_tunes_only_branch_parameters(self, campaign):
        config = campaign.step1_public_config()
        tuned, result = campaign.component_round(config, "branch", budget=120)
        assert result.best_assignment
        assert all(name.startswith("branch.") for name in result.best_assignment)
        # Non-branch sections untouched.
        assert tuned.l1d == config.l1d
        assert tuned.execute == config.execute

    def test_branch_round_improves_branch_workloads(self, campaign):
        """The public config's bimodal predictor and penalty guesses are
        wrong; a focused round with the weighted branch cost should cut
        the error on the control-flow kernels."""
        config = campaign.step2_lmbench(campaign.step1_public_config())
        before = sum(campaign.error_for(config, n) for n in ("CCh", "CCe", "CCm", "CCl"))
        tuned, _ = campaign.component_round(config, "branch", budget=250)
        after = sum(campaign.error_for(tuned, n) for n in ("CCh", "CCe", "CCm", "CCl"))
        assert after < before

    def test_execution_round_recovers_divide_latency(self, campaign):
        config = campaign.step2_lmbench(campaign.step1_public_config())
        tuned, result = campaign.component_round(config, "execution", budget=250)
        # The silicon divider early-exits at 4 cycles; the dated guess is 20.
        assert tuned.execute.idiv_latency <= 8
        assert campaign.error_for(tuned, "ED1") < campaign.error_for(config, "ED1")
