"""Program builder: labels, fixups, layout gaps."""

import pytest

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import AlwaysTaken, FixedAddr, PatternTaken
from repro.isa.encoding import decode_fields
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg


class TestLabels:
    def test_branch_target_resolved(self):
        b = ProgramBuilder()
        b.label("top").op(OpClass.IALU, int_reg(1))
        b.branch("top", AlwaysTaken())
        program = b.build()
        assert program.insts[1].branch_target == 0

    def test_forward_reference_resolved(self):
        b = ProgramBuilder()
        b.branch("end", PatternTaken("TN"))
        b.op(OpClass.IALU, int_reg(1))
        b.label("end").op(OpClass.NOP)
        assert b.build().insts[0].branch_target == 2

    def test_undefined_label_rejected(self):
        b = ProgramBuilder()
        b.jump("nowhere")
        with pytest.raises(ValueError, match="undefined label"):
            b.build()

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.label("x")


class TestEncodingOfOps:
    def test_load_encodes_base_register(self):
        b = ProgramBuilder()
        b.load(int_reg(3), FixedAddr(0), base=int_reg(7))
        opclass, dst, src1, _, _ = decode_fields(b.build().insts[0].word)
        assert opclass is OpClass.LOAD and dst == 3 and src1 == 7

    def test_store_encodes_data_register(self):
        b = ProgramBuilder()
        b.store(int_reg(4), FixedAddr(0), base=int_reg(8))
        opclass, _, src1, src2, _ = decode_fields(b.build().insts[0].word)
        assert opclass is OpClass.STORE and src1 == 8 and src2 == 4

    def test_pair_flag_selects_pair_opclass(self):
        b = ProgramBuilder()
        b.load(int_reg(1), FixedAddr(0), pair=True)
        b.store(int_reg(2), FixedAddr(0), pair=True)
        program = b.build()
        assert decode_fields(program.insts[0].word)[0] is OpClass.LDP
        assert decode_fields(program.insts[1].word)[0] is OpClass.STP

    def test_nop_count(self):
        b = ProgramBuilder()
        b.nop(3)
        assert len(b.build()) == 3


class TestLayout:
    def test_default_layout_is_dense(self):
        b = ProgramBuilder(base_pc=0x400)
        b.op(OpClass.NOP).op(OpClass.NOP)
        assert b.build().pcs == [0x400, 0x404]

    def test_org_gap_spreads_code(self):
        b = ProgramBuilder(base_pc=0)
        b.op(OpClass.NOP)
        b.org_gap(4096)
        b.op(OpClass.NOP)
        assert b.build().pcs == [0, 4 + 4096]

    def test_org_gap_validates(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.org_gap(3)
        with pytest.raises(ValueError):
            b.org_gap(0)

    def test_branch_target_outside_program_rejected(self):
        from repro.frontend.program import Program, StaticInst
        from repro.isa.encoding import encode

        inst = StaticInst(encode(OpClass.BRANCH), branch_pattern=AlwaysTaken(), branch_target=5)
        with pytest.raises(ValueError, match="outside program"):
            Program([inst])
