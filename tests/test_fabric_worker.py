"""Fabric worker + executor: distributed runs equal serial runs."""

import threading

import pytest

from repro.core.config import cortex_a53_public_config
from repro.engine import EvaluationEngine
from repro.engine.executors import FabricExecutor, make_executor
from repro.fabric import (
    FabricWorker,
    JobQueue,
    plan_simulations,
    sim_task,
    status_snapshot,
)
from repro.fabric.tasks import rebuild_config, resolve_decoder
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.store import open_store
from repro.workloads.microbench import MICROBENCHMARKS

WORKLOADS = [MICROBENCHMARKS[n] for n in ("CCa", "ED1", "MD")]
SCALE = 0.5


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "fabric.sqlite")


def run_worker_in_background(store_path, **kwargs):
    """A worker thread draining the queue until stopped."""
    kwargs.setdefault("lease", 10.0)
    kwargs.setdefault("poll", 0.02)
    worker = FabricWorker(store_path, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestTaskSpecs:
    def test_sim_task_key_is_the_store_address(self):
        config = cortex_a53_public_config()
        key, payload = sim_task(config, "CCa", SCALE, {}, Decoder())
        assert key.startswith("('sim'")
        assert payload["workload"] == "CCa"
        assert payload["config"]["core_type"] == "inorder"

    def test_rebuild_config_round_trips(self):
        config = cortex_a53_public_config().with_updates({"l1d.size": 16384})
        rebuilt = rebuild_config(config.flatten())
        assert rebuilt.flatten() == config.flatten()

    def test_resolve_decoder_round_trips(self):
        from repro.fabric.tasks import decoder_spec

        assert isinstance(resolve_decoder(decoder_spec(Decoder())), Decoder)
        assert isinstance(resolve_decoder(decoder_spec(BuggyDecoder())), BuggyDecoder)

    def test_resolve_decoder_rejects_non_decoders(self):
        with pytest.raises(TypeError, match="Decoder"):
            resolve_decoder("repro.core.config:SimConfig")


class TestPlanning:
    def test_expand_grid_feeds_the_planner(self):
        from repro.fabric import expand_grid

        base = cortex_a53_public_config()
        items = expand_grid(base, {"l1d.size": [16384, 32768]},
                            ["CCa", "ED1"], scale=SCALE)
        assert len(items) == 4  # 2 configs x 2 workloads
        plan = plan_simulations(items)
        assert len(plan.keys) == 4
        configs = {config.l1d.size for config, *_rest in items}
        assert configs == {16384, 32768}

    def test_expand_grid_empty_grid_is_base_config(self):
        from repro.fabric import expand_grid

        base = cortex_a53_public_config()
        items = expand_grid(base, {}, ["CCa"], scale=SCALE)
        assert len(items) == 1
        config, workload, scale, overrides, decoder = items[0]
        assert config.flatten() == base.flatten()
        assert workload == "CCa" and scale == SCALE and overrides == {}
        assert isinstance(decoder, Decoder)

    def test_plan_deduplicates_within_batch(self):
        config = cortex_a53_public_config()
        items = [(config, "CCa", SCALE, {}, Decoder())] * 3
        plan = plan_simulations(items)
        assert len(plan.tasks) == 1 and len(plan.keys) == 1

    def test_plan_deduplicates_against_store(self, store_path):
        config = cortex_a53_public_config()
        store = open_store(store_path)
        items = [(config, "CCa", SCALE, {}, Decoder())]
        # Prime the store through a normal engine run.
        with EvaluationEngine(workloads=WORKLOADS, scale=SCALE, store=store) as eng:
            eng.simulate(config, "CCa")
        plan = plan_simulations(items, store=store)
        assert plan.tasks == [] and plan.store_hits == plan.keys
        store.close()


class TestWorkerExecution:
    def test_drain_executes_and_persists(self, store_path):
        config = cortex_a53_public_config()
        store = open_store(store_path)
        plan = plan_simulations([(config, "CCa", SCALE, {}, Decoder())])
        with JobQueue(store_path) as queue:
            queue.enqueue(plan.tasks)
        stats = FabricWorker(store_path, drain=True, poll=0.02).run()
        assert stats.claimed == 1 and stats.completed == 1 and stats.failed == 0
        assert store.get_sim(plan.keys[0]) is not None
        store.close()

    def test_worker_results_match_serial(self, store_path):
        config = cortex_a53_public_config()
        with EvaluationEngine(workloads=WORKLOADS, scale=SCALE) as eng:
            ref = eng.simulate(config, "ED1")
        plan = plan_simulations([(config, "ED1", SCALE, {}, Decoder())])
        with JobQueue(store_path) as queue:
            queue.enqueue(plan.tasks)
        FabricWorker(store_path, drain=True, poll=0.02).run()
        with open_store(store_path) as store:
            assert store.get_sim(plan.keys[0]) == ref

    def test_unknown_kind_dead_letters(self, store_path):
        with JobQueue(store_path) as queue:
            queue.enqueue([("bad-task", "mystery", {})])
        stats = FabricWorker(store_path, max_tasks=3, drain=True, poll=0.02).run()
        assert stats.failed >= 1
        with JobQueue(store_path) as queue:
            # Budget takes three failures to exhaust; drain again.
            while queue.counts()["dead"] == 0:
                FabricWorker(store_path, drain=True, poll=0.02).run()
            (dead,) = queue.dead()
        assert "unknown task kind" in dead[2]

    def test_max_tasks_bounds_the_session(self, store_path):
        config = cortex_a53_public_config()
        items = [(config, name, SCALE, {}, Decoder()) for name in ("CCa", "ED1")]
        plan = plan_simulations(items)
        with JobQueue(store_path) as queue:
            queue.enqueue(plan.tasks)
        stats = FabricWorker(store_path, max_tasks=1, poll=0.02).run()
        assert stats.claimed == 1
        with JobQueue(store_path) as queue:
            assert queue.depth() == 1


class TestFabricExecutor:
    def test_needs_a_sqlite_store(self):
        with pytest.raises(ValueError, match="SQLite"):
            FabricExecutor(None)
        with pytest.raises(ValueError, match="SQLite"):
            FabricExecutor(open_store("memory"))
        with pytest.raises(ValueError, match="SQLite"):
            make_executor(1, "fabric")

    def test_factory_builds_fabric(self, store_path):
        store = open_store(store_path)
        executor = make_executor(1, "fabric", store=store)
        assert executor.name == "fabric"
        executor.close()
        store.close()

    def test_batch_matches_serial_and_is_cached(self, store_path):
        base = cortex_a53_public_config()
        configs = [base, base.with_updates({"l1d.size": 16384})]
        pairs = [(c, wl.name) for c in configs for wl in WORKLOADS]
        with EvaluationEngine(workloads=WORKLOADS, scale=SCALE) as eng:
            ref = eng.simulate_batch(pairs)

        store = open_store(store_path)
        executor = FabricExecutor(store, poll=0.02, timeout=60)
        engine = EvaluationEngine(workloads=WORKLOADS, scale=SCALE,
                                  store=store, executor=executor)
        worker, thread = run_worker_in_background(store_path)
        try:
            got = engine.simulate_batch(pairs)
            assert got == ref
            assert engine.telemetry.unique_trials == len(pairs)
            # Second submission: answered from cache, no new tasks.
            assert engine.simulate_batch(pairs) == ref
            assert engine.telemetry.unique_trials == len(pairs)
        finally:
            worker.stop()
            thread.join(timeout=10)
            engine.close()
        snap = status_snapshot(store_path)
        assert snap["queue"]["done"] == len(pairs)
        assert snap["queue"]["dead"] == 0
        store.close()

    def test_timeout_without_workers(self, store_path):
        store = open_store(store_path)
        executor = FabricExecutor(store, poll=0.02, timeout=0.2)
        engine = EvaluationEngine(workloads=WORKLOADS, scale=SCALE,
                                  store=store, executor=executor)
        with pytest.raises(TimeoutError, match="repro worker"):
            engine.simulate(cortex_a53_public_config(), "CCa")
        engine.close()
        store.close()

    def test_fresh_submission_revives_dead_keys(self, store_path):
        """A key dead-lettered in an earlier run must not poison a new
        batch: resubmitting restores its claim budget and it executes."""
        store = open_store(store_path)
        base = cortex_a53_public_config()
        plan = plan_simulations([(base, "CCa", SCALE, {}, Decoder())])
        with JobQueue(store_path, max_attempts=1) as queue:
            queue.enqueue(plan.tasks)
            task = queue.claim("w1")
            queue.fail(task.key, "w1", "transient crash in an old run")
            assert queue.counts()["dead"] == 1
        executor = FabricExecutor(store, poll=0.02, timeout=60)
        engine = EvaluationEngine(workloads=WORKLOADS, scale=SCALE,
                                  store=store, executor=executor)
        worker, thread = run_worker_in_background(store_path)
        try:
            stats = engine.simulate(base, "CCa")
            assert stats is not None
        finally:
            worker.stop()
            thread.join(timeout=10)
            engine.close()
        with JobQueue(store_path) as queue:
            assert queue.counts() == {"queued": 0, "leased": 0,
                                      "done": 1, "dead": 0}
        store.close()

    def test_no_store_writeback_after_fabric_batch(self, store_path):
        """The engine must not rewrite results the workers already
        persisted (write traffic on the shared file would double)."""
        store = open_store(store_path)
        executor = FabricExecutor(store, poll=0.02, timeout=60)
        engine = EvaluationEngine(workloads=WORKLOADS, scale=SCALE,
                                  store=store, executor=executor)
        writes = []
        original = store.put_sim_many

        def recording_put(items):
            items = list(items)
            writes.append(items)
            return original(items)

        store.put_sim_many = recording_put
        worker, thread = run_worker_in_background(store_path)
        try:
            engine.simulate(cortex_a53_public_config(), "CCa")
        finally:
            worker.stop()
            thread.join(timeout=10)
            engine.close()
            store.put_sim_many = original
        # The worker wrote through its own store handle; the driver's
        # handle must have issued no sim writes at all.
        assert writes == []
        with open_store(store_path) as check:
            assert check.stats()["sim_results"] == 1
        store.close()

    def test_task_dying_mid_batch_surfaces_as_error(self, store_path):
        """A task that exhausts its claim budget *during* the batch
        dead-letters and fails the waiting driver with the error."""
        store = open_store(store_path)
        base = cortex_a53_public_config()
        plan = plan_simulations([(base, "CCa", SCALE, {}, Decoder())])
        # Pre-seed the executor's key with a payload no worker can run
        # (unresolvable decoder) and a claim budget of one: the worker
        # fails it once, it dead-letters mid-batch, the driver raises.
        (key, kind, payload) = plan.tasks[0]
        broken = dict(payload, decoder="nonexistent.module:Nope")
        with JobQueue(store_path, max_attempts=1) as queue:
            queue.enqueue([(key, kind, broken)])
        executor = FabricExecutor(store, poll=0.02, timeout=30)
        engine = EvaluationEngine(workloads=WORKLOADS, scale=SCALE,
                                  store=store, executor=executor)
        worker, thread = run_worker_in_background(store_path)
        try:
            with pytest.raises(RuntimeError, match="dead-letter"):
                engine.simulate(base, "CCa")
        finally:
            worker.stop()
            thread.join(timeout=10)
            engine.close()
        store.close()


class TestSharedColumnarTraceCache:
    def test_second_worker_attaches_instead_of_recording(self, store_path, monkeypatch):
        """Two workers, one host: the first records and persists each
        columnar blob next to the store; the second memory-maps them —
        recording is forbidden outright — and its stats stay identical
        to the serial reference."""
        import glob
        import os

        from repro.engine.tracestore import TraceStore

        base = cortex_a53_public_config()
        other = base.with_updates({"l1d.size": 16384})
        with EvaluationEngine(workloads=WORKLOADS, scale=SCALE) as eng:
            ref1 = [eng.simulate(base, wl.name) for wl in WORKLOADS]
            ref2 = [eng.simulate(other, wl.name) for wl in WORKLOADS]

        plan1 = plan_simulations(
            [(base, wl.name, SCALE, {}, Decoder()) for wl in WORKLOADS])
        with JobQueue(store_path) as queue:
            queue.enqueue(plan1.tasks)
        stats1 = FabricWorker(store_path, drain=True, poll=0.02).run()
        assert stats1.completed == len(WORKLOADS) and stats1.failed == 0
        blobs = glob.glob(os.path.join(store_path + ".traces", "*.rcol"))
        assert len(blobs) == len(WORKLOADS)

        # Second worker session: any attempt to materialise a recorded
        # trace fails the task, so completing the batch proves every
        # simulation ran off an attached blob.
        def no_recording(self, name, overrides=None):
            raise AssertionError(f"worker re-recorded trace {name!r}")

        monkeypatch.setattr(TraceStore, "get", no_recording)
        plan2 = plan_simulations(
            [(other, wl.name, SCALE, {}, Decoder()) for wl in WORKLOADS])
        with JobQueue(store_path) as queue:
            queue.enqueue(plan2.tasks)
        stats2 = FabricWorker(store_path, drain=True, poll=0.02).run()
        assert stats2.completed == len(WORKLOADS) and stats2.failed == 0

        with open_store(store_path) as store:
            for key, expect in zip(plan1.keys, ref1):
                assert store.get_sim(key) == expect
            for key, expect in zip(plan2.keys, ref2):
                assert store.get_sim(key) == expect


class TestStatusSnapshot:
    def test_snapshot_shape(self, store_path):
        with JobQueue(store_path) as queue:
            queue.enqueue([("k1", "sleep", {"seconds": 0})])
            queue.register_worker("w1", pid=1)
        snap = status_snapshot(store_path)
        assert snap["depth"] == 1
        assert snap["queue"]["queued"] == 1
        assert snap["workers"][0]["worker_id"] == "w1"
        assert set(snap["results"]) == {"sim_results", "hw_results", "trial_costs"}

    def test_snapshot_surfaces_engine_telemetry(self, store_path):
        config = cortex_a53_public_config()
        plan = plan_simulations([(config, "CCa", SCALE, {}, Decoder())])
        with JobQueue(store_path) as queue:
            queue.enqueue(plan.tasks)
        FabricWorker(store_path, drain=True, poll=0.02).run()
        (worker,) = status_snapshot(store_path)["workers"]
        assert worker["tasks_done"] == 1
        assert worker["unique_trials"] == 1
        assert worker["requested_trials"] == 1
