"""Checkpoint/resume: interrupted campaigns replay bit-identically."""

import pytest

from repro.analysis.io import result_fingerprint
from repro.store import open_store
from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import get_microbenchmark

SUBSET = [get_microbenchmark(n) for n in
          ("ED1", "EM1", "EF", "MD", "CCh", "CS1", "STc")]

PROFILE = BudgetProfile("test", 120, 120, first_test=4, n_elites=2)


def make_campaign(board, store=None, run_id=None):
    return ValidationCampaign(board, core="a53", profile=PROFILE, seed=11,
                              workloads=SUBSET, store=store, run_id=run_id)


def result_payload(result) -> dict:
    """The CLI's --out payload — the byte-identity acceptance artefact."""
    return {
        "core": result.core,
        "profile": result.profile,
        "untuned_errors": result.untuned_errors,
        "final_errors": result.final_errors,
        "tuned_assignment": result.stages[-1].irace.best_assignment,
    }


@pytest.fixture(scope="module")
def uninterrupted(board):
    """Reference: the same campaign run start-to-finish without a store."""
    campaign = make_campaign(board)
    result = campaign.run(stages=2)
    campaign.close()
    return result


class TestCheckpointResume:
    def test_store_attaches_without_changing_results(self, board, uninterrupted):
        with open_store("memory") as store:
            campaign = make_campaign(board, store=store, run_id="run-attach")
            result = campaign.run(stages=2)
            campaign.close()
        assert result_fingerprint(result_payload(result)) == \
            result_fingerprint(result_payload(uninterrupted))

    def test_killed_after_stage1_resumes_bit_identically(self, board, uninterrupted, tmp_path):
        path = str(tmp_path / "exp.sqlite")
        # "Kill" the campaign after stage 1: run only one stage, drop the
        # process state, keep the store.
        with open_store(path) as store:
            partial = make_campaign(board, store=store, run_id="run-killed")
            partial.run(stages=1)
            partial.close()
            assert sorted(store.list_checkpoints("run-killed")) == ["setup", "stage1"]

        # A fresh process resumes from the checkpoints and finishes.
        with open_store(path) as store:
            resumed = make_campaign(board, store=store, run_id="run-killed")
            result = resumed.run(stages=2, resume=True)
            resumed.close()
            # Stage 1 was not re-tuned: no stage-1-budget worth of trials.
            assert result.stages[0].irace.requested_trials > 0
            assert sorted(store.list_checkpoints("run-killed")) == \
                ["setup", "stage1", "stage2"]

        assert result_fingerprint(result_payload(result)) == \
            result_fingerprint(result_payload(uninterrupted))

    def test_mid_stage_kill_replays_trials_from_store(self, board, uninterrupted, tmp_path):
        """Losing the stage-2 checkpoint (a mid-stage kill) still resumes:
        the stage re-races, but every trial replays from the store."""
        path = str(tmp_path / "exp.sqlite")
        with open_store(path) as store:
            full = make_campaign(board, store=store, run_id="run-mid")
            full.run(stages=2)
            full.close()
            assert store.delete_checkpoints("run-mid") == 3
            # Re-create the pre-kill checkpoints only.
            partial = make_campaign(board, store=store, run_id="run-mid2")
            partial.run(stages=1)
            partial.close()

        with open_store(path) as store:
            resumed = make_campaign(board, store=store, run_id="run-mid2")
            result = resumed.run(stages=2, resume=True)
            telemetry = resumed.engine.telemetry
            resumed.close()
            # Zero new simulations: stage 2's trials were all in the store.
            assert telemetry.unique_trials == 0
            assert telemetry.hw_measurements == 0

        assert result_fingerprint(result_payload(result)) == \
            result_fingerprint(result_payload(uninterrupted))

    def test_completed_run_resumes_from_checkpoints_alone(self, board, uninterrupted):
        with open_store("memory") as store:
            first = make_campaign(board, store=store, run_id="run-done")
            first.run(stages=2)
            first.close()

            replay = make_campaign(board, store=store, run_id="run-done")
            result = replay.run(stages=2, resume=True)
            telemetry = replay.engine.telemetry
            replay.close()
            # Every stage restored verbatim: no trials at all.
            assert telemetry.requested_trials == 0
            assert telemetry.unique_trials == 0
        assert result_fingerprint(result_payload(result)) == \
            result_fingerprint(result_payload(uninterrupted))

    def test_second_full_run_against_warm_store_simulates_nothing(self, board, uninterrupted):
        with open_store("memory") as store:
            first = make_campaign(board, store=store, run_id="warm-1")
            first.run(stages=2)
            first.close()

            second = make_campaign(board, store=store, run_id="warm-2")
            result = second.run(stages=2)  # fresh run id, no checkpoints
            telemetry = second.engine.telemetry
            second.close()
            assert telemetry.unique_trials == 0
            assert telemetry.hw_measurements == 0
            assert telemetry.store_hits > 0
        assert result_fingerprint(result_payload(result)) == \
            result_fingerprint(result_payload(uninterrupted))

    def test_resume_without_store_rejected(self, board):
        campaign = make_campaign(board)
        with pytest.raises(ValueError, match="resume"):
            campaign.run(stages=1, resume=True)
        campaign.close()

    def test_resume_with_foreign_run_id_runs_fresh(self, board, uninterrupted):
        """resume=True with no checkpoints yet just runs (and checkpoints)."""
        with open_store("memory") as store:
            campaign = make_campaign(board, store=store, run_id="never-ran")
            result = campaign.run(stages=1, resume=True)
            campaign.close()
            assert sorted(store.list_checkpoints("never-ran")) == ["setup", "stage1"]
        assert result.stages[0].errors
