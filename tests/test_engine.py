"""Unified evaluation engine: caching, batching, parallel determinism."""

import pytest

from repro.core.config import cortex_a53_public_config
from repro.engine import (
    EvaluationEngine,
    TrialCache,
    make_executor,
    sim_key,
)
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.tuning.race import race
from repro.validation.campaign import BudgetProfile, ValidationCampaign
from repro.workloads.microbench import get_microbenchmark

SUBSET_NAMES = ("ED1", "CCh", "STc", "MD", "EM1", "EF")
SUBSET = [get_microbenchmark(n) for n in SUBSET_NAMES]


def make_engine(board, **kwargs):
    kwargs.setdefault("scale", 0.5)
    kwargs.setdefault("workloads", SUBSET)
    return EvaluationEngine(hw=board.core("a53"), **kwargs)


class TestCacheKeys:
    def test_identical_flattened_configs_hit(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        clone = config.with_updates({})
        assert engine.result_key(config, "ED1") == engine.result_key(clone, "ED1")
        first = engine.evaluate(config, "ED1")
        second = engine.evaluate(clone, "ED1")
        assert first == second
        assert engine.telemetry.unique_trials == 1
        assert engine.telemetry.requested_trials == 2
        assert engine.telemetry.sim_cache_hits == 1

    def test_distinct_configs_never_collide(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        variants = [
            config.with_updates({"l1d.hit_latency": 4}),
            config.with_updates({"l1d.prefetcher": "stride"}),
            config.with_updates({"branch.predictor": "gshare"}),
        ]
        keys = {engine.result_key(c, "ED1") for c in [config] + variants}
        assert len(keys) == 4
        for c in [config] + variants:
            engine.evaluate(c, "ED1")
        assert engine.telemetry.unique_trials == 4

    def test_workload_distinguishes_keys(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        assert engine.result_key(config, "ED1") != engine.result_key(config, "CCh")

    def test_decoder_identity_in_key(self, board):
        config = cortex_a53_public_config()
        correct = sim_key(config, "EF", 0.5, {}, Decoder())
        buggy = sim_key(config, "EF", 0.5, {}, BuggyDecoder())
        assert correct != buggy

    def test_swapping_decoder_never_reuses_stale_runs(self, board):
        engine = make_engine(board, workloads=[get_microbenchmark("DPT")])
        config = cortex_a53_public_config()
        # DPT chains FP operations through their second source operand —
        # exactly what the buggy decoder drops — so the two libraries
        # must produce different runs, not a stale cache hit.
        with_correct = engine.evaluate(config, "DPT")
        engine.decoder = BuggyDecoder()
        with_buggy = engine.evaluate(config, "DPT")
        assert engine.telemetry.unique_trials == 2
        assert with_correct != with_buggy

    def test_overrides_in_key(self, board):
        engine = make_engine(board, workloads=[get_microbenchmark("MM")])
        config = cortex_a53_public_config()
        plain = engine.result_key(config, "MM")
        engine.overrides["MM"] = {"initialized": True}
        assert engine.result_key(config, "MM") != plain


class TestTraceStore:
    def test_each_trace_built_once_per_key(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        other = config.with_updates({"l1d.hit_latency": 4})
        pairs = [(c, n) for c in (config, other) for n in SUBSET_NAMES]
        engine.evaluate_batch(pairs)
        assert engine.traces.builds == len(SUBSET_NAMES)
        engine.evaluate_batch(pairs)  # all cached: no new builds
        assert engine.traces.builds == len(SUBSET_NAMES)
        assert len(engine.traces) == engine.traces.builds

    def test_override_records_new_variant(self, board):
        engine = make_engine(board, workloads=[get_microbenchmark("MM")])
        engine.trace("MM")
        engine.overrides["MM"] = {"initialized": True}
        fixed = engine.trace("MM")
        assert engine.traces.builds == 2
        assert "initialized" in fixed.name

    def test_workload_overrides_rebinding_reaches_engine(self, board):
        # Benchmarks assign campaign.workload_overrides wholesale; the
        # campaign must forward that to the engine it wraps.
        campaign = ValidationCampaign(
            board, core="a53", workloads=[get_microbenchmark("MM")]
        )
        campaign.workload_overrides = {"MM": {"initialized": True}}
        assert campaign.engine.overrides == {"MM": {"initialized": True}}
        assert "initialized" in campaign.engine.trace("MM").name

    def test_hardware_measured_once_per_workload(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        engine.evaluate_batch([(config, n) for n in SUBSET_NAMES])
        engine.evaluate_batch(
            [(config.with_updates({"l2.hit_latency": 9}), n) for n in SUBSET_NAMES]
        )
        assert engine.telemetry.hw_measurements == len(SUBSET_NAMES)
        assert engine.telemetry.hw_cache_hits == len(SUBSET_NAMES)


class TestBatching:
    def test_in_batch_duplicates_run_once(self, board):
        engine = make_engine(board)
        config = cortex_a53_public_config()
        costs = engine.evaluate_batch([(config, "ED1"), (config, "ED1")])
        assert costs[0] == costs[1]
        assert engine.telemetry.unique_trials == 1
        assert engine.telemetry.sim_cache_hits == 1

    def test_serial_and_process_costs_identical(self, board):
        config = cortex_a53_public_config()
        variants = [config.with_updates({"l1d.hit_latency": v}) for v in (1, 2, 3)]
        pairs = [(c, n) for c in variants for n in SUBSET_NAMES]
        with make_engine(board, jobs=1) as serial, make_engine(board, jobs=2) as par:
            assert serial.evaluate_batch(pairs) == par.evaluate_batch(pairs)

    #: Matches make_engine's scale=0.5 so supplied-engine tests line up.
    HALF_SCALE = BudgetProfile("half", 120, 120, microbench_scale=0.5,
                               first_test=4, n_elites=2)

    def test_external_engine_honours_decoder_and_rejects_jobs(self, board):
        engine = make_engine(board)
        campaign = ValidationCampaign(
            board, core="a53", profile=self.HALF_SCALE, workloads=SUBSET,
            decoder=BuggyDecoder(), engine=engine,
        )
        assert isinstance(campaign.decoder, BuggyDecoder)
        assert engine.decoder is campaign.decoder
        with pytest.raises(ValueError):
            ValidationCampaign(board, core="a53", profile=self.HALF_SCALE,
                               workloads=SUBSET, engine=engine, jobs=2)

    def test_external_engine_must_cover_campaign_workloads(self, board):
        engine = make_engine(board)  # knows only SUBSET
        with pytest.raises(ValueError, match="cannot run campaign workloads"):
            ValidationCampaign(board, core="a53", profile=self.HALF_SCALE,
                               engine=engine)

    def test_external_engine_core_mismatch_rejected(self, board):
        engine = make_engine(board)  # measures the a53 cluster
        with pytest.raises(ValueError, match="different hardware core"):
            ValidationCampaign(board, core="a72", profile=self.HALF_SCALE,
                               workloads=SUBSET, engine=engine)

    def test_external_engine_scale_conflict_rejected(self, board):
        engine = make_engine(board)  # scale 0.5 vs default profile's 1.0
        with pytest.raises(ValueError, match="scale"):
            ValidationCampaign(board, core="a53", workloads=SUBSET, engine=engine)

    def test_executor_factory(self):
        assert make_executor(1).name == "serial"
        assert make_executor(4).name == "process"
        assert make_executor(4, "serial").name == "serial"
        with pytest.raises(ValueError):
            make_executor(2, "gpu")


class TestTrialCache:
    def test_memoises_and_counts(self):
        calls = []

        def evaluate(assignment, instance):
            calls.append((tuple(sorted(assignment.items())), instance))
            return assignment["x"] + instance

        trials = TrialCache(evaluate)
        assert trials({"x": 1}, 10) == 11
        assert trials({"x": 1}, 10) == 11
        assert trials.evaluate_batch([({"x": 1}, 10), ({"x": 2}, 10)]) == [11, 12]
        assert len(calls) == 2
        assert trials.unique_trials == 2
        assert trials.requested_trials == 4

    def test_batch_deduplicates(self):
        calls = []

        def batch(pairs):
            calls.append(len(pairs))
            return [a["x"] for a, _ in pairs]

        trials = TrialCache(batch_evaluate=batch)
        out = trials.evaluate_batch(
            [({"x": 5}, "i"), ({"x": 5}, "i"), ({"x": 6}, "i")]
        )
        assert out == [5, 5, 6]
        assert calls == [2]

    def test_requires_an_evaluator(self):
        with pytest.raises(ValueError):
            TrialCache()


class TestRaceBatch:
    def test_batch_path_matches_scalar_path(self):
        configs = [{"id": i} for i in range(5)]
        true_costs = {0: 0.1, 1: 0.5, 2: 0.6, 3: 0.2, 4: 0.9}

        def evaluate(config, instance):
            return true_costs[config["id"]] + 0.01 * (instance % 3)

        def batch(pairs):
            return [evaluate(c, i) for c, i in pairs]

        scalar = race(configs, list(range(12)), evaluate, first_test=3)
        batched = race(configs, list(range(12)), batch_evaluate=batch, first_test=3)
        assert scalar.survivors == batched.survivors
        assert scalar.mean_costs == batched.mean_costs
        assert scalar.evaluations == batched.evaluations
        assert scalar.eliminated_after == batched.eliminated_after

    def test_race_needs_some_evaluator(self):
        with pytest.raises(ValueError):
            race([{"id": 0}], [0])


class TestParallelDeterminism:
    """jobs=1 and jobs=2 must produce bit-identical campaign results."""

    PROFILE = BudgetProfile("engine-test", 120, 120, microbench_scale=0.3,
                            first_test=4, n_elites=2)

    def _run(self, board, jobs):
        campaign = ValidationCampaign(
            board, core="a53", profile=self.PROFILE, seed=11,
            workloads=SUBSET, jobs=jobs,
        )
        try:
            return campaign.run(stages=2), campaign.engine
        finally:
            campaign.close()

    def test_campaign_identical_and_traces_built_once(self, board):
        serial_result, serial_engine = self._run(board, jobs=1)
        parallel_result, parallel_engine = self._run(board, jobs=2)

        assert serial_result.untuned_errors == parallel_result.untuned_errors
        assert serial_result.final_errors == parallel_result.final_errors
        assert (serial_result.stages[-1].irace.best_assignment
                == parallel_result.stages[-1].irace.best_assignment)
        assert (serial_result.stages[-1].irace.best_cost
                == parallel_result.stages[-1].irace.best_cost)

        # Each workload trace recorded at most once per (scale, overrides)
        # across the entire campaign.
        for engine in (serial_engine, parallel_engine):
            assert engine.traces.builds == len(engine.traces)
            assert engine.traces.builds == len(SUBSET)
            assert engine.telemetry.unique_trials < engine.telemetry.requested_trials

    def test_irace_accounting_consistent(self, board):
        result, _engine = self._run(board, jobs=1)
        for stage in result.stages:
            assert stage.irace.total_evaluations == stage.irace.unique_trials
            assert stage.irace.requested_trials >= stage.irace.unique_trials
            assert "unique trials" in stage.irace.summary()
