"""Cache set-index hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.hashing import MaskHash, MersenneHash, XorHash, build_hash


class TestMask:
    def test_power_of_two_masks_low_bits(self):
        h = MaskHash(128)
        assert h.index(0) == 0
        assert h.index(129) == 1

    def test_non_power_of_two_uses_modulo(self):
        h = MaskHash(100)
        assert h.index(250) == 50

    def test_same_set_stride_conflicts(self):
        """The pathological case the MC kernel exploits."""
        h = MaskHash(128)
        indices = {h.index(i * 128) for i in range(8)}
        assert indices == {0}


class TestXor:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            XorHash(100)

    def test_spreads_same_set_stride(self):
        h = XorHash(128)
        indices = {h.index(i * 128) for i in range(8)}
        assert len(indices) == 8

    @given(line=st.integers(0, 2**40))
    def test_index_in_range(self, line):
        h = XorHash(256)
        assert 0 <= h.index(line) < 256


class TestMersenne:
    def test_uses_largest_mersenne_prime(self):
        assert MersenneHash(128).prime == 127
        assert MersenneHash(127).prime == 127
        assert MersenneHash(512).prime == 127
        assert MersenneHash(8192).prime == 8191

    def test_effective_sets_reduced(self):
        h = MersenneHash(128)
        assert h.effective_sets == 127

    def test_spreads_power_of_two_strides(self):
        h = MersenneHash(128)
        indices = {h.index(i * 128) for i in range(8)}
        assert len(indices) == 8

    def test_too_small_cache_rejected(self):
        with pytest.raises(ValueError):
            MersenneHash(2)

    @given(line=st.integers(0, 2**40))
    def test_index_within_prime(self, line):
        h = MersenneHash(256)
        assert 0 <= h.index(line) < h.prime


class TestSkew:
    def test_requires_power_of_two(self):
        from repro.memory.hashing import SkewHash

        with pytest.raises(ValueError):
            SkewHash(100)

    def test_spreads_same_set_stride(self):
        from repro.memory.hashing import SkewHash

        h = SkewHash(128)
        # Lines one mask-set apart (stride = n_sets) all collide under
        # mask indexing; skewing must spread them over many sets.
        indices = {h.index(128 * i) for i in range(64)}
        assert len(indices) > 16

    def test_beats_mask_on_set_multiple_stride(self):
        from repro.memory.hashing import MaskHash, SkewHash

        skew = SkewHash(128)
        mask = MaskHash(128)
        stride = 128 * 3  # still only gcd-limited sets under masking
        skewed = {skew.index(stride * i) for i in range(64)}
        masked = {mask.index(stride * i) for i in range(64)}
        assert len(skewed) > len(masked)

    def test_deterministic(self):
        from repro.memory.hashing import SkewHash

        a, b = SkewHash(256), SkewHash(256)
        for line in (0, 1, 12345, 2**30 + 7):
            assert a.index(line) == b.index(line)

    @given(line=st.integers(0, 2**48))
    def test_index_in_range(self, line):
        from repro.memory.hashing import SkewHash

        h = SkewHash(256)
        assert 0 <= h.index(line) < 256


class TestFactory:
    def test_known_kinds(self):
        for kind in ("mask", "xor", "mersenne", "skew"):
            assert build_hash(kind, 128).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown hash"):
            build_hash("crc", 128)

    @given(
        kind=st.sampled_from(["mask", "xor", "mersenne", "skew"]),
        line=st.integers(0, 2**48),
    )
    def test_all_hashes_stay_in_range(self, kind, line):
        h = build_hash(kind, 512)
        assert 0 <= h.index(line) < 512
