"""Property-based racing: invariants over hundreds of random race traces.

Each seed draws a random race shape (candidate count, instance count,
cost landscape, noise, statistical test, budget, ``first_test``,
``min_survivors``) from ``random.Random(seed)`` — stdlib only, fully
reproducible — and runs it through every execution variant:

- synchronous barrier loop (the reference);
- async with ``lookahead=0`` (frontier-only speculation);
- async with a random lookahead;
- async over an adversarial completion-order-shuffling source;
- async over a source whose ``cancel`` is a silent no-op (late results
  for eliminated candidates must be ignored, never committed).

Invariants checked on every trace:

1. every variant's decision record equals the synchronous one
   (lookahead never changes survivors, means, or elimination order);
2. eliminated candidates never resurrect — the alive set passed to the
   statistical test only ever shrinks;
3. survivors and eliminated candidates partition the field;
4. the trial budget is never exceeded;
5. cancellation is always safe: ignoring it changes telemetry at most.
"""

import random

import pytest

from repro.tuning.race import FunctionRaceSource, race
from tests.test_race_async import ShuffledSource

N_TRACES = 200
CHUNK = 10

POLICIES = ["reverse", "interleaved", "loser_first"]


def _draw_trace(seed):
    """One random race shape, a pure function of the seed."""
    rng = random.Random(seed)
    n_configs = rng.randint(2, 7)
    n_instances = rng.randint(3, 15)
    base = [rng.uniform(0.05, 1.0) for _ in range(n_configs)]
    sigma = rng.choice([0.0, 0.01, 0.05, 0.15])
    return {
        "configs": [{"id": i} for i in range(n_configs)],
        "instances": list(range(n_instances)),
        "true_costs": base,
        "sigma": sigma,
        "first_test": rng.randint(2, n_instances),
        "min_survivors": rng.randint(1, min(3, n_configs)),
        "budget": rng.choice([None, rng.randint(n_configs,
                                                n_configs * n_instances)]),
        "test": rng.choice(["friedman", "ttest"]),
        "alpha": rng.choice([0.05, 0.2]),
        "lookahead": rng.randint(1, n_instances),
        "policy": rng.choice(POLICIES),
    }


def _make_evaluate(trace):
    true_costs, sigma = trace["true_costs"], trace["sigma"]

    def evaluate(config, instance):
        noise_rng = random.Random(config["id"] * 7919 + instance * 104729)
        return true_costs[config["id"]] + noise_rng.gauss(0, sigma)

    return evaluate


class _ShrinkingAliveCheck:
    """Wraps the race's evaluator untouched but audits the alive sets the
    statistical test sees: once eliminated, a candidate must never
    reappear."""

    def __init__(self):
        self.alive_history = []

    def audit(self, eliminate_fn):
        def wrapped(costs, alive, alpha):
            if self.alive_history:
                assert set(alive) <= set(self.alive_history[-1]), \
                    f"alive set grew: {self.alive_history[-1]} -> {alive}"
            self.alive_history.append(list(alive))
            return eliminate_fn(costs, alive, alpha)

        return wrapped


class _IgnoreCancelSource:
    """A fleet that never honours cancellation: every submitted trial
    completes and is delivered. The scheduler must drop the unwanted
    results on the floor rather than commit them."""

    def __init__(self, evaluate):
        self.inner = FunctionRaceSource(evaluate)
        self.cancel_requests = 0

    def submit(self, requests):
        self.inner.submit(requests)

    def poll(self):
        return self.inner.poll()

    def cancel(self, tokens):
        self.cancel_requests += len(list(tokens))  # acknowledged, ignored


def _run_variants(trace):
    """The sync reference plus every async variant for one trace."""
    evaluate = _make_evaluate(trace)
    kwargs = dict(
        budget=trace["budget"],
        first_test=trace["first_test"],
        alpha=trace["alpha"],
        min_survivors=trace["min_survivors"],
        test=trace["test"],
        poll_interval=0.0,
        timeout=30,
    )
    common = (trace["configs"], trace["instances"])
    sync = race(*common, evaluate=evaluate, **kwargs)
    ignore = _IgnoreCancelSource(evaluate)
    variants = {
        "async-0": race(*common, evaluate=evaluate, mode="async",
                        lookahead=0, **kwargs),
        "async-L": race(*common, evaluate=evaluate, mode="async",
                        lookahead=trace["lookahead"], **kwargs),
        "adversarial": race(*common, evaluate=evaluate, mode="async",
                            lookahead=trace["lookahead"],
                            source=ShuffledSource(evaluate, trace["policy"]),
                            **kwargs),
        "ignore-cancel": race(*common, evaluate=evaluate, mode="async",
                              lookahead=trace["lookahead"], source=ignore,
                              **kwargs),
    }
    return sync, variants


@pytest.mark.parametrize("chunk", range(N_TRACES // CHUNK))
def test_random_race_traces_hold_all_invariants(chunk):
    for seed in range(chunk * CHUNK, (chunk + 1) * CHUNK):
        trace = _draw_trace(seed)
        sync, variants = _run_variants(trace)
        reference = sync.decision_record()

        all_ids = {c["id"] for c in trace["configs"]}
        for name, result in [("sync", sync), *variants.items()]:
            record = result.decision_record()
            assert record == reference, \
                f"seed {seed}: {name} diverged from sync"
            # Survivors and eliminated partition the field.
            assert set(result.survivors).isdisjoint(result.eliminated_after), \
                f"seed {seed}: {name} resurrected a candidate"
            assert set(result.survivors) | set(result.eliminated_after) \
                == all_ids, f"seed {seed}: {name} lost candidates"
            if trace["budget"] is not None:
                assert result.evaluations <= trace["budget"], \
                    f"seed {seed}: {name} overspent the budget"
            assert result.instances_used <= len(trace["instances"])
            assert result.wasted_evaluations >= 0


def test_alive_set_only_shrinks():
    """Direct audit of invariant 2 on traces that actually eliminate."""
    audited = 0
    for seed in range(40):
        trace = _draw_trace(seed)
        check = _ShrinkingAliveCheck()
        evaluate = _make_evaluate(trace)
        import importlib

        race_mod = importlib.import_module("repro.tuning.race")
        fn = (race_mod._friedman_eliminate if trace["test"] == "friedman"
              else race_mod._ttest_eliminate)
        state = race_mod._RaceState(
            n_configs=len(trace["configs"]),
            n_instances=len(trace["instances"]),
            eliminate_fn=check.audit(fn),
            alpha=trace["alpha"],
            budget=trace["budget"],
            first_test=trace["first_test"],
            min_survivors=trace["min_survivors"],
        )
        scheduler = race_mod.AsyncRaceScheduler(
            trace["configs"], trace["instances"],
            FunctionRaceSource(evaluate), state,
            lookahead=trace["lookahead"], poll_interval=0.0, timeout=30)
        result = scheduler.run()
        if result.eliminated_after:
            audited += 1
    assert audited > 0, "no trace eliminated anything; audit is vacuous"


def test_cancellation_is_never_load_bearing():
    """A fleet that ignores cancel outright still yields identical
    decisions — only the wasted-work telemetry may grow."""
    for seed in (3, 17, 42):
        trace = _draw_trace(seed)
        evaluate = _make_evaluate(trace)
        ignore = _IgnoreCancelSource(evaluate)
        honoured = race(trace["configs"], trace["instances"],
                        evaluate=evaluate, mode="async",
                        lookahead=trace["lookahead"],
                        first_test=trace["first_test"],
                        min_survivors=trace["min_survivors"],
                        test=trace["test"], alpha=trace["alpha"],
                        poll_interval=0.0, timeout=30)
        ignored = race(trace["configs"], trace["instances"],
                       evaluate=evaluate, mode="async",
                       lookahead=trace["lookahead"], source=ignore,
                       first_test=trace["first_test"],
                       min_survivors=trace["min_survivors"],
                       test=trace["test"], alpha=trace["alpha"],
                       poll_interval=0.0, timeout=30)
        assert ignored.decision_record() == honoured.decision_record()
