"""Crash tolerance: SIGKILLed workers lose nothing and change nothing.

Two layers of proof:

- queue level — a subprocess worker is SIGKILLed mid-task; the lease
  expires, a second worker reclaims the task (attempt 2) and finishes;
- campaign level — a distributed ``validate`` run whose workers include
  one killed mid-stage still produces output JSON *byte-identical* to
  the serial run, because results are content-addressed and idempotent.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.fabric import FabricWorker, JobQueue
from repro.fabric.tasks import KIND_SLEEP

#: Environment for subprocess workers: the repo's src on PYTHONPATH.
def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_worker(store_path, *extra):
    """A real `repro worker` subprocess against ``store_path``."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--store", str(store_path),
         "--poll", "0.05", *extra],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSigkillRequeue:
    def test_sigkill_mid_task_requeues_after_lease_expiry(self, tmp_path):
        store_path = tmp_path / "fab.sqlite"
        queue = JobQueue(store_path, lease_seconds=1.0)
        # A task long enough to guarantee the kill lands mid-execution.
        queue.enqueue([("victim-task", KIND_SLEEP, {"seconds": 60.0})])

        proc = spawn_worker(store_path, "--lease", "1.0", "--max-idle", "30")
        try:
            assert wait_for(lambda: queue.counts()["leased"] == 1), \
                "worker never leased the task"
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)

            # No heartbeats now; the lease must expire and the task be
            # claimable again — the expiry-driven requeue path.
            assert wait_for(
                lambda: queue.claim("rescuer", lease_seconds=30.0) is not None,
                timeout=10.0,
            ), "expired lease never became claimable"
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=5)
        # The rescuer holds attempt 2; finish it.
        assert queue.heartbeat("victim-task", "rescuer")
        assert queue.complete("victim-task", "rescuer")
        assert queue.counts()["done"] == 1
        queue.close()

    def test_second_worker_finishes_killed_workers_sim(self, tmp_path):
        """End to end: kill one worker mid-queue, a fresh one completes
        the remaining simulations and the store ends up fully populated."""
        from repro.core.config import cortex_a53_public_config
        from repro.fabric import plan_simulations
        from repro.isa.decoder import Decoder
        from repro.store import open_store

        store_path = tmp_path / "fab.sqlite"
        config = cortex_a53_public_config()
        items = ([(config, name, 0.5, {}, Decoder())
                  for name in ("CCa", "ED1", "MD", "STc")]
                 # A long sleep first, so the victim is mid-task when killed.
                 )
        plan = plan_simulations(items)
        with JobQueue(store_path, lease_seconds=1.0) as queue:
            queue.enqueue([("blocker", KIND_SLEEP, {"seconds": 60.0})])
            queue.enqueue(plan.tasks)

        victim = spawn_worker(store_path, "--lease", "1.0", "--max-idle", "30")
        with JobQueue(store_path) as queue:
            assert wait_for(lambda: queue.counts()["leased"] >= 1)
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10)

        # The rescuer must wait out the blocker's expired lease, claim
        # it (it sleeps 60s — fail it fast via max_attempts exhaustion
        # is not needed: lease 1s + drain ignores it by completing sims
        # first in creation order... instead give the rescuer its own
        # path: requeue the blocker as done by claiming and completing).
        time.sleep(1.2)  # let the blocker's lease lapse
        with JobQueue(store_path) as queue:
            blocker = queue.claim("cleanup", lease_seconds=60.0)
            assert blocker is not None and blocker.key == "blocker"
            queue.complete("blocker", "cleanup")

        rescuer = FabricWorker(store_path, drain=True, poll=0.05, lease=10.0)
        stats = rescuer.run()
        assert stats.failed == 0
        with open_store(store_path) as store:
            missing = [key for key in plan.keys if store.get_sim(key) is None]
        assert missing == []


#: Tiny-but-real campaign settings shared by both halves of the
#: byte-identity proof (kept small: this runs in the tier-1 gate).
CAMPAIGN_ARGS = ["--core", "a53", "--profile", "fast", "--stages", "1",
                 "--seed", "7"]


def run_validate(tmp_path, out_name, *extra):
    out = tmp_path / out_name
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "validate", *CAMPAIGN_ARGS,
         "--out", str(out), *extra],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return out.read_bytes()


class TestDistributedByteIdentity:
    def test_fabric_campaign_with_sigkill_matches_serial(self, tmp_path):
        serial = run_validate(tmp_path, "serial.json")

        store_path = tmp_path / "fab.sqlite"
        workers = [spawn_worker(store_path, "--lease", "5", "--max-idle", "120")
                   for _ in range(2)]
        victim = workers[0]
        try:
            import threading

            # Kill one worker as soon as any task is leased (mid-stage).
            def killer():
                deadline = time.monotonic() + 120
                while time.monotonic() < deadline:
                    try:
                        with JobQueue(store_path) as queue:
                            if queue.counts()["leased"] >= 1:
                                victim.send_signal(signal.SIGKILL)
                                return
                    except Exception:
                        pass
                    time.sleep(0.2)

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            fabric = run_validate(tmp_path, "fabric.json",
                                  "--executor", "fabric",
                                  "--store", str(store_path))
            thread.join(timeout=5)
            assert victim.poll() is not None, "victim worker was never killed"
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10)

        assert fabric == serial, "distributed campaign JSON diverged from serial"
        # Sanity guard on the comparison itself: the bytes decode to a
        # real campaign payload, not an error artefact.
        payload = json.loads(serial)
        assert payload["core"] == "a53" and payload["final_errors"]
        # The killed worker's work was reclaimed: everything finished,
        # nothing dead-lettered, nothing left outstanding.
        with JobQueue(store_path) as queue:
            counts = queue.counts()
        assert counts["dead"] == 0
        assert counts["queued"] == 0 and counts["leased"] == 0
