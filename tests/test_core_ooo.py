"""Out-of-order core timing behaviour."""

import pytest

from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.isa.decoder import Decoder
from tests.conftest import make_alu_loop_trace, make_load_loop_trace


def _run(config, trace):
    core = OutOfOrderCore(config)
    return core.run(trace, trace.decoded_with(Decoder()))


class TestWindow:
    def test_wrong_core_type_rejected(self, a53_config):
        with pytest.raises(ValueError):
            OutOfOrderCore(a53_config)

    def test_ooo_overlaps_misses_better_than_inorder(self, a53_config, a72_config):
        trace = make_load_loop_trace(window=1024 * 1024, n_iters=40)
        inorder = InOrderCore(a53_config)
        in_cpi = inorder.run(trace, trace.decoded_with(Decoder())).cpi
        ooo_cpi = _run(a72_config, trace).cpi
        assert ooo_cpi < 0.8 * in_cpi

    def test_bigger_rob_helps_memory_parallelism(self, a72_config):
        trace = make_load_loop_trace(window=4 * 1024 * 1024, n_iters=40)
        small = _run(a72_config.with_updates({"pipeline.rob_size": 8}), trace).cycles
        large = _run(a72_config.with_updates({"pipeline.rob_size": 192}), trace).cycles
        assert large < small

    def test_ldq_bounds_outstanding_loads(self, a72_config):
        trace = make_load_loop_trace(window=4 * 1024 * 1024, n_iters=30)
        tiny = _run(a72_config.with_updates({"pipeline.ldq_entries": 2}), trace).cycles
        wide = _run(a72_config.with_updates({"pipeline.ldq_entries": 24}), trace).cycles
        assert wide <= tiny

    def test_commit_width_bounds_ipc(self, a72_config):
        trace = make_alu_loop_trace(n_iters=150, body=12)
        stats = _run(a72_config, trace)
        # IPC can never exceed the commit width.
        assert stats.ipc <= a72_config.pipeline.commit_width + 1e-9

    def test_narrow_commit_throttles(self, a72_config):
        trace = make_alu_loop_trace(n_iters=150, body=12)
        narrow = _run(a72_config.with_updates({"pipeline.commit_width": 1}), trace)
        wide = _run(a72_config.with_updates({"pipeline.commit_width": 3}), trace)
        assert narrow.cycles > 1.5 * wide.cycles


class TestLatencyHiding:
    def test_dependent_chain_bound_by_latency(self, a72_config):
        dep = make_alu_loop_trace(n_iters=150, body=8, dependent=True)
        indep = make_alu_loop_trace(n_iters=150, body=8, dependent=False)
        assert _run(a72_config, dep).cpi > 1.5 * _run(a72_config, indep).cpi

    def test_mispredict_penalty_matters(self, a72_config):
        from repro.frontend.builder import ProgramBuilder
        from repro.frontend.interpreter import trace_program
        from repro.frontend.program import PatternTaken, RandomTaken
        from repro.isa.opclasses import OpClass
        from repro.isa.registers import int_reg

        b = ProgramBuilder("hard-branches")
        b.label("top")
        for k in range(4):
            b.branch(f"s{k}", RandomTaken(0.5, seed=k), cond_reg=int_reg(2))
            b.op(OpClass.IALU, int_reg(3), int_reg(1), int_reg(2))
            b.label(f"s{k}")
        b.branch("top", PatternTaken("T" * 99 + "N"), cond_reg=int_reg(2))
        trace = trace_program(b.build())
        cheap = _run(a72_config.with_updates({"branch.mispredict_penalty": 10}), trace)
        dear = _run(a72_config.with_updates({"branch.mispredict_penalty": 18}), trace)
        assert dear.cycles > cheap.cycles

    def test_determinism(self, a72_config, alu_trace):
        assert _run(a72_config, alu_trace).cycles == _run(a72_config, alu_trace).cycles
