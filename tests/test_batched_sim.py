"""Batched simulation: bit-identity, columnar blobs, pickling.

``simulate_batch`` shares one columnar trace pass across K core
instances; these tests pin its contract: results are *bit-identical* to
K independent ``simulate`` calls (and therefore to the pre-optimisation
golden stats), for both cores, both decoder libraries, K=1, mixed
batches, odd chunk sizes and the hardware-effects path. The columnar
blob round-trips losslessly and traces pickle without dragging their
columnar caches along.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import asdict

import pytest

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.hardware import HardwareEffects
from repro.hardware.groundtruth import cortex_a53_effects, cortex_a53_ground_truth
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.simulator import simulate, simulate_batch
from repro.trace.columnar import BLOB_VERSION, ColumnarTrace
from repro.workloads.microbench import MICROBENCHMARKS
from repro.workloads.spec import SPEC_WORKLOADS

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_stats.json")


def _golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _workload(name):
    return MICROBENCHMARKS.get(name) or SPEC_WORKLOADS[name]


def _config(core):
    return cortex_a53_public_config() if core == "a53" else cortex_a72_public_config()


GOLDEN = _golden()


class TestBatchBitIdentity:
    @pytest.mark.parametrize(
        "entry", GOLDEN["sim"],
        ids=[f"{e['core']}-{e['workload']}-{e['decoder']}" for e in GOLDEN["sim"]],
    )
    def test_k1_batch_matches_golden(self, entry):
        """A batch of one is the serial reference, down to the bit."""
        decoder = BuggyDecoder() if entry["decoder"] == "buggy" else Decoder()
        trace = _workload(entry["workload"]).trace()
        (stats,) = simulate_batch(trace, [_config(entry["core"])], decoder=decoder)
        assert asdict(stats) == entry["stats"]

    @pytest.mark.parametrize("core", ["a53", "a72"])
    @pytest.mark.parametrize("workload", ["MM", "CCa", "CS1"])
    def test_mixed_config_batch_matches_serial(self, core, workload):
        base = _config(core)
        configs = [
            base,
            base.with_updates({"branch.mispredict_penalty": 6}),
            base.with_updates({"l1d.size": 16384, "branch.btb_entries": 256}),
        ]
        trace = _workload(workload).trace()
        decoder = Decoder()
        batched = simulate_batch(trace, configs, decoder=decoder)
        for config, stats in zip(configs, batched):
            assert asdict(stats) == asdict(simulate(config, trace, decoder=decoder))

    def test_mixed_core_batch_on_one_trace(self):
        """In-order and out-of-order candidates share the same pass."""
        configs = [_config("a53"), _config("a72")]
        trace = _workload("ED1").trace()
        batched = simulate_batch(trace, configs)
        for config, stats in zip(configs, batched):
            assert asdict(stats) == asdict(simulate(config, trace))

    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    def test_chunk_size_is_invisible(self, chunk_size):
        config = _config("a53")
        trace = _workload("CCa").trace()
        (stats,) = simulate_batch(trace, [config], chunk_size=chunk_size)
        assert asdict(stats) == asdict(simulate(config, trace))

    def test_buggy_decoder_batch_matches_serial(self):
        """The decoder-bug study fuses too — same bug, same numbers."""
        config = _config("a53")
        trace = _workload("MM").trace()
        decoder = BuggyDecoder()
        (stats,) = simulate_batch(trace, [config], decoder=decoder)
        assert asdict(stats) == asdict(simulate(config, trace, decoder=BuggyDecoder()))

    def test_empty_batch(self):
        assert simulate_batch(_workload("MM").trace(), []) == []

    def test_effects_batch_matches_serial(self):
        """Hardware effects are stateful per run: each candidate gets its
        own instance and still matches K independent ground-truth runs."""
        truth = cortex_a53_ground_truth()
        configs = [truth, truth.with_updates({"branch.mispredict_penalty": 6})]
        trace = _workload("CCa").trace()
        effects = [HardwareEffects(cortex_a53_effects()) for _ in configs]
        batched = simulate_batch(trace, configs, effects=effects)
        for config, stats in zip(configs, batched):
            serial = simulate(config, trace, effects=HardwareEffects(cortex_a53_effects()))
            assert asdict(stats) == asdict(serial)

    def test_effects_must_be_parallel_to_configs(self):
        trace = _workload("CCa").trace()
        with pytest.raises(ValueError, match="parallel to configs"):
            simulate_batch(trace, [_config("a53")], effects=[])

    def test_columnar_trace_accepted_directly(self):
        """simulate_batch over an already-columnar trace (the fabric
        worker's mmap-attached form) is the same pass."""
        config = _config("a53")
        trace = _workload("MM").trace()
        decoder = Decoder()
        columns = trace.columns_with(decoder)
        (stats,) = simulate_batch(columns, [config], decoder=decoder)
        assert asdict(stats) == asdict(simulate(config, trace, decoder=decoder))


class TestColumnarBlob:
    def test_blob_round_trip_is_lossless_and_stable(self):
        trace = _workload("CCa").trace()
        cols = trace.columns_with(Decoder())
        blob = cols.to_blob()
        restored = ColumnarTrace.from_blob(blob)
        assert restored.name == cols.name
        assert restored.library == cols.library
        assert len(restored) == len(cols) == len(trace)
        assert restored.tuples(0, len(restored)) == cols.tuples(0, len(cols))
        # Re-serialising the attached form reproduces the blob byte for
        # byte — the content address is stable across hops.
        assert restored.to_blob() == blob

    def test_blob_matches_stream(self):
        trace = _workload("MM").trace()
        decoder = Decoder()
        cols = ColumnarTrace.from_blob(trace.columns_with(decoder).to_blob())
        assert cols.stream_with(decoder) == trace.stream_with(decoder)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            ColumnarTrace.from_blob(b"NOPE" + b"\0" * 32)

    def test_future_version_rejected(self):
        trace = _workload("CCa").trace()
        blob = bytearray(trace.columns_with(Decoder()).to_blob())
        blob[4:6] = (BLOB_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(ValueError, match="version"):
            ColumnarTrace.from_blob(bytes(blob))

    def test_library_mismatch_raises(self):
        cols = _workload("CCa").trace().columns_with(Decoder())
        assert cols.matches(Decoder())
        assert not cols.matches(BuggyDecoder())
        with pytest.raises(ValueError, match="re-record"):
            cols.stream_with(BuggyDecoder())
        with pytest.raises(ValueError, match="re-record"):
            cols.columns_with(BuggyDecoder())

    def test_columnar_trace_pickles_via_blob(self):
        cols = _workload("ED1").trace().columns_with(Decoder())
        clone = pickle.loads(pickle.dumps(cols))
        assert clone.library == cols.library
        assert clone.tuples(0, len(clone)) == cols.tuples(0, len(cols))


class TestTracePickle:
    def test_trace_pickle_drops_columnar_cache(self):
        """Satellite contract: a pickled Trace never carries the blob."""
        trace = _workload("CCa").trace()
        decoder = Decoder()
        cols = trace.columns_with(decoder)
        assert trace._columnar_cache  # populated by the call above
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._columnar_cache == {}
        assert clone._stream_cache == {}
        # The receiver rebuilds an identical columnar form on demand.
        rebuilt = clone.columns_with(decoder)
        assert rebuilt.to_blob() == cols.to_blob()

    def test_old_pickles_gain_the_cache_slot(self):
        """__setstate__ backfills _columnar_cache for pre-PR-6 pickles."""
        trace = _workload("CCa").trace()
        state = trace.__getstate__()
        state.pop("_columnar_cache", None)
        fresh = object.__new__(type(trace))
        fresh.__setstate__(state)
        assert fresh._columnar_cache == {}
        assert asdict(simulate(_config("a53"), fresh)) == asdict(
            simulate(_config("a53"), trace)
        )
