"""Micro-op expansion."""

from repro.isa.decoder import Decoder
from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, int_reg
from repro.isa.uops import expand_to_uops


def _decode(opclass, dst=NO_REG, src1=NO_REG, src2=NO_REG):
    return Decoder().decode(encode(opclass, dst, src1, src2))


class TestUopExpansion:
    def test_simple_op_is_one_uop(self):
        uops = expand_to_uops(_decode(OpClass.IALU, int_reg(1), int_reg(2), int_reg(3)))
        assert len(uops) == 1
        assert uops[0].opclass is OpClass.IALU
        assert (uops[0].dst, uops[0].src1, uops[0].src2) == (1, 2, 3)

    def test_ldp_cracks_into_two_loads(self):
        uops = expand_to_uops(_decode(OpClass.LDP, int_reg(4), int_reg(10)))
        assert [u.opclass for u in uops] == [OpClass.LOAD, OpClass.LOAD]
        assert uops[0].dst == 4 and uops[1].dst == 5
        assert uops[0].addr_offset == 0 and uops[1].addr_offset == 8

    def test_stp_cracks_into_two_stores(self):
        uops = expand_to_uops(_decode(OpClass.STP, NO_REG, int_reg(10), int_reg(6)))
        assert [u.opclass for u in uops] == [OpClass.STORE, OpClass.STORE]
        assert uops[0].src2 == 6 and uops[1].src2 == 7

    def test_pair_with_no_register_keeps_no_reg(self):
        uops = expand_to_uops(_decode(OpClass.LDP))
        assert uops[1].dst == NO_REG

    def test_branch_is_single_uop(self):
        uops = expand_to_uops(_decode(OpClass.BRANCH, NO_REG, int_reg(2)))
        assert len(uops) == 1 and uops[0].opclass is OpClass.BRANCH
