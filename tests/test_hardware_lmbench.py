"""lmbench-style latency estimation (methodology step #2)."""

import pytest

from repro.core.config import cortex_a53_public_config
from repro.hardware.groundtruth import cortex_a53_ground_truth, cortex_a72_ground_truth
from repro.hardware.lmbench import (
    LatencyEstimates,
    apply_latency_estimates,
    build_chase_program,
    lat_mem_rd,
)
from repro.frontend.interpreter import trace_program
from repro.isa.opclasses import OpClass
from repro.trace.stats import compute_trace_stats


class TestChaseProgram:
    def test_loads_are_dependent_chain(self):
        program = build_chase_program(window=8 * 1024, loads=64)
        trace = trace_program(program, max_instructions=100_000)
        stats = compute_trace_stats(trace)
        assert stats.loads >= 64

    def test_every_page_initialised(self):
        window = 64 * 1024
        program = build_chase_program(window=window, loads=64)
        trace = trace_program(program, max_instructions=100_000)
        shift = 27
        store = int(OpClass.STORE)
        pages = {rec.addr // 4096 for rec in trace.records if rec.word >> shift == store}
        assert len(pages) == window // 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            build_chase_program(window=100, loads=64)
        with pytest.raises(ValueError):
            build_chase_program(window=8192, loads=4)


class TestEstimates:
    """Calibration: estimates must land near the (hidden) ground truth.

    These tests read the ground truth deliberately — they verify that the
    measurement tool works, which is a precondition for the experiment
    being well-posed; tuning code never does this.
    """

    def test_a53_estimates_near_truth(self, board):
        truth = cortex_a53_ground_truth()
        est = lat_mem_rd(board.a53, l1_size=truth.l1d.size, l2_size=truth.l2.size)
        l1_true = truth.l1d.hit_latency + truth.execute.agu_latency
        assert abs(est.l1_load_to_use - l1_true) <= 1.5
        l2_true = truth.l2.hit_latency + truth.execute.agu_latency + 1
        assert abs(est.l2_load_to_use - l2_true) <= 5
        # DRAM estimate may exceed truth (TLB walks are real on hardware).
        assert truth.memsys.dram_latency * 0.8 <= est.dram_load_to_use <= \
            truth.memsys.dram_latency * 1.5

    def test_a72_estimates_ordered(self, board):
        truth = cortex_a72_ground_truth()
        est = lat_mem_rd(board.a72, l1_size=truth.l1d.size, l2_size=truth.l2.size)
        assert est.l1_load_to_use < est.l2_load_to_use < est.dram_load_to_use

    def test_apply_latency_estimates(self):
        config = cortex_a53_public_config()
        est = LatencyEstimates(l1_load_to_use=3.1, l2_load_to_use=17.2, dram_load_to_use=190.0)
        updated = apply_latency_estimates(config, est)
        assert updated.l1d.hit_latency == 2
        assert updated.l2.hit_latency == 15
        assert 180 <= updated.memsys.dram_latency <= 190
        assert updated.memsys.dram_page_hit_latency < updated.memsys.dram_latency

    def test_apply_clamps_degenerate_estimates(self):
        config = cortex_a53_public_config()
        est = LatencyEstimates(0.1, 0.2, 1.0)
        updated = apply_latency_estimates(config, est)
        assert updated.l1d.hit_latency >= 1
        assert updated.l2.hit_latency >= 2
        assert updated.memsys.dram_latency >= 20

    def test_summary_string(self):
        est = LatencyEstimates(3.0, 17.0, 190.0)
        assert "L1 3.0" in est.summary()
