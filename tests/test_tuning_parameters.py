"""Parameter-space definition."""

import pytest

from repro.tuning.parameters import (
    BooleanParam,
    CategoricalParam,
    OrdinalParam,
    ParamSpace,
)


def _space():
    return ParamSpace([
        CategoricalParam("pf", ["none", "stride", "ghb"]),
        OrdinalParam("degree", [1, 2, 4], condition=lambda a: a.get("pf") != "none"),
        BooleanParam("on_hit"),
        OrdinalParam("latency", [2, 3, 4]),
    ])


class TestParams:
    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            CategoricalParam("x", ["only"])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParam("x", ["a", "a"])

    def test_ordinal_requires_sorted(self):
        with pytest.raises(ValueError):
            OrdinalParam("x", [3, 1, 2])

    def test_index_of(self):
        p = OrdinalParam("x", [10, 20, 30])
        assert p.index_of(20) == 1
        with pytest.raises(ValueError):
            p.index_of(15)

    def test_boolean_is_false_true(self):
        assert BooleanParam("x").values == [False, True]


class TestSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace([BooleanParam("x"), BooleanParam("x")])

    def test_lookup_and_membership(self):
        space = _space()
        assert "pf" in space and "nope" not in space
        assert space.get("degree").kind == "ordinal"
        with pytest.raises(KeyError):
            space.get("nope")

    def test_total_combinations(self):
        assert _space().total_combinations() == 3 * 3 * 2 * 3

    def test_validate_assignment(self):
        space = _space()
        space.validate_assignment({"pf": "ghb", "latency": 3})
        with pytest.raises(ValueError):
            space.validate_assignment({"latency": 99})
        with pytest.raises(KeyError):
            space.validate_assignment({"bogus": 1})

    def test_conditional_activity(self):
        space = _space()
        active = {p.name for p in space.active_params({"pf": "none"})}
        assert "degree" not in active
        active = {p.name for p in space.active_params({"pf": "stride"})}
        assert "degree" in active

    def test_default_assignment_prefers_base_values(self):
        space = _space()
        default = space.default_assignment({"latency": 4, "pf": "stride"})
        assert default["latency"] == 4
        assert default["pf"] == "stride"
        # Unknown base value falls back to the middle candidate.
        default = space.default_assignment({"latency": 99})
        assert default["latency"] == 3

    def test_neighbor_values_ordinal_are_adjacent(self):
        space = _space()
        p = space.get("latency")
        assert space.neighbor_values(p, 3) == [2, 4]
        assert space.neighbor_values(p, 2) == [3]

    def test_neighbor_values_categorical_any_other(self):
        space = _space()
        p = space.get("pf")
        assert set(space.neighbor_values(p, "stride")) == {"none", "ghb"}

    def test_neighbors_single_step_only(self):
        space = _space()
        assignment = {"pf": "stride", "degree": 2, "on_hit": False, "latency": 3}
        for neighbor in space.neighbors(assignment):
            diffs = [k for k in assignment if neighbor[k] != assignment[k]]
            assert len(diffs) == 1

    def test_neighbors_skip_inactive_params(self):
        space = _space()
        assignment = {"pf": "none", "degree": 2, "on_hit": False, "latency": 3}
        touched = {k for n in space.neighbors(assignment)
                   for k in n if n[k] != assignment[k]}
        assert "degree" not in touched
