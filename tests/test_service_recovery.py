"""Remote-fleet crash tolerance: the acceptance proof over HTTP.

The local fabric's byte-identity guarantee
(``tests/test_fabric_recovery.py``) re-proven with every hop over the
wire: a ``repro serve`` subprocess fronts the store, two ``repro
worker --url`` subprocesses execute, and the campaign output must be
byte-identical to a serial run even when

- one worker is SIGKILLed mid-stage (its lease expires server-side and
  the survivor reclaims the task), and
- the *server itself* is SIGKILLed and restarted mid-campaign (all
  state is in the SQLite file; clients ride out the gap in their
  connection-retry loop).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

from repro.service.client import HttpQueue, ServiceError

TOKEN = "recovery-test-secret"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TOKEN"] = TOKEN
    return env


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn_serve(store_path, port):
    """A real ``repro serve`` subprocess on a fixed port."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_path),
         "--port", str(port)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def spawn_worker(url, *extra):
    """A real ``repro worker --url`` subprocess (token via REPRO_TOKEN)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--url", url,
         "--poll", "0.05", *extra],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_until_serving(url, timeout=20.0):
    queue = HttpQueue(url, token=TOKEN, max_retries=0)
    assert wait_for(lambda: _pings(queue), timeout=timeout), \
        f"service at {url} never came up"


def _pings(queue) -> bool:
    try:
        queue.counts()
        return True
    except ServiceError:
        return False


#: Tiny-but-real campaign settings (mirrors test_fabric_recovery).
CAMPAIGN_ARGS = ["--core", "a53", "--profile", "fast", "--stages", "1",
                 "--seed", "7"]


def run_validate(tmp_path, out_name, *extra):
    out = tmp_path / out_name
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "validate", *CAMPAIGN_ARGS,
         "--out", str(out), *extra],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return out.read_bytes()


class TestPipelinedWorkerSigkill:
    """A worker dying with a stocked prefetch pipeline strands nothing.

    The pipelined worker holds several leases at once — the task it is
    executing plus ``PREFETCH_DEPTH`` prefetched-but-unstarted ones.
    SIGKILL it mid-stock: every held lease must expire cleanly, a
    survivor must drain the whole plan within the attempt budget, and
    the results must be identical to a serial engine's.
    """

    def test_sigkill_with_prefetched_tasks_still_matches_serial(
            self, tmp_path):
        from repro.core.config import cortex_a53_public_config
        from repro.engine import EvaluationEngine
        from repro.fabric import expand_grid, plan_simulations
        from repro.store import open_store
        from repro.store.serialize import stats_to_payload
        from repro.workloads.microbench import MICROBENCHMARKS

        scale = 0.5
        names = ["CCa", "ED1", "MD", "STc"]
        grid = {"l1d.size": [16384, 32768], "branch.btb_entries": [256, 512]}
        items = expand_grid(cortex_a53_public_config(), grid, names,
                            scale=scale)
        plan = plan_simulations(items)

        # Serial reference, fully in-process.
        workloads = [MICROBENCHMARKS[n] for n in names]
        with EvaluationEngine(workloads=workloads, scale=scale) as engine:
            serial = engine.simulate_batch(
                [(config, workload) for config, workload, *_rest in items])

        store_path = tmp_path / "svc.sqlite"
        port = free_port()
        url = f"http://127.0.0.1:{port}"
        server = spawn_serve(store_path, port)
        victim = survivor = None
        try:
            wait_until_serving(url)
            queue = HttpQueue(url, token=TOKEN)
            queue.enqueue(plan.tasks, submitted_by="chaos")

            # Short lease: the stranded prefetch leases expire fast.
            victim = spawn_worker(url, "--lease", "2", "--max-idle", "60")
            assert wait_for(lambda: queue.counts()["leased"] >= 2,
                            timeout=60), \
                "victim never stocked its prefetch pipeline"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)

            survivor = spawn_worker(url, "--lease", "5", "--max-idle", "120")
            assert wait_for(
                lambda: queue.counts()["done"] == len(plan.tasks),
                timeout=180), f"queue never drained: {queue.counts()}"

            counts = queue.counts()
            assert counts["dead"] == 0, \
                "expired prefetch leases burned the attempt budget"
            assert counts["queued"] == 0 and counts["leased"] == 0

            remote_store = open_store(url, token=TOKEN)
            remote = remote_store.get_sims(plan.keys)
            remote_store.close()
            assert [stats_to_payload(remote[key]) for key in plan.keys] \
                == [stats_to_payload(stats) for stats in serial], \
                "post-crash fleet results diverged from serial"
        finally:
            for proc in (victim, survivor, server):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                if proc is not None:
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        pass


class TestRemoteFleetByteIdentity:
    def test_http_campaign_with_sigkill_and_server_restart_matches_serial(
            self, tmp_path):
        serial = run_validate(tmp_path, "serial.json")

        store_path = tmp_path / "svc.sqlite"
        port = free_port()
        url = f"http://127.0.0.1:{port}"
        server = spawn_serve(store_path, port)
        workers = []
        try:
            wait_until_serving(url)
            workers = [spawn_worker(url, "--lease", "5", "--max-idle", "120")
                       for _ in range(2)]
            victim = workers[0]
            monitor = HttpQueue(url, token=TOKEN, max_retries=2)
            flags = {"killed_worker": False, "restarted_server": False}

            def chaos():
                """SIGKILL a worker at first lease; then bounce the server."""
                deadline = time.monotonic() + 180
                while time.monotonic() < deadline:
                    try:
                        counts = monitor.counts()
                    except ServiceError:
                        counts = None
                    if counts is not None:
                        if (not flags["killed_worker"]
                                and counts["leased"] >= 1):
                            victim.send_signal(signal.SIGKILL)
                            flags["killed_worker"] = True
                        elif (flags["killed_worker"]
                                and not flags["restarted_server"]
                                and counts["done"] >= 5):
                            server.send_signal(signal.SIGKILL)
                            server.wait(timeout=10)
                            replacement = spawn_serve(store_path, port)
                            servers.append(replacement)
                            flags["restarted_server"] = True
                            return
                    time.sleep(0.2)

            servers = [server]
            thread = threading.Thread(target=chaos, daemon=True)
            thread.start()
            fabric = run_validate(tmp_path, "fabric.json",
                                  "--executor", "fabric",
                                  "--store", str(store_path))
            thread.join(timeout=10)
            assert flags["killed_worker"], "victim worker was never killed"
            assert flags["restarted_server"], "server was never restarted"
            assert victim.poll() is not None
            server = servers[-1]

            assert fabric == serial, \
                "remote-fleet campaign JSON diverged from serial"
            payload = json.loads(serial)
            assert payload["core"] == "a53" and payload["final_errors"]

            # Queue fully drained through every failure: nothing dead,
            # nothing outstanding.
            wait_until_serving(url)
            final = HttpQueue(url, token=TOKEN)
            counts = final.counts()
            assert counts["dead"] == 0
            assert counts["queued"] == 0 and counts["leased"] == 0
        finally:
            for proc in [*workers, server]:
                if proc.poll() is None:
                    proc.kill()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    pass
