"""Direction predictors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.simple import StaticNotTakenPredictor, StaticTakenPredictor
from repro.branch.tage import TAGEPredictor
from repro.branch.tournament import TournamentPredictor

ALL_PREDICTORS = [
    lambda: StaticTakenPredictor(),
    lambda: StaticNotTakenPredictor(),
    lambda: BimodalPredictor(index_bits=8),
    lambda: GSharePredictor(history_bits=8),
    lambda: TournamentPredictor(history_bits=8, chooser_bits=8),
    lambda: TAGEPredictor(table_bits=8),
]


def _accuracy(predictor, outcomes, pc=0x1000):
    correct = 0
    for taken in outcomes:
        if predictor.predict_update(pc, taken) == taken:
            correct += 1
    return correct / len(outcomes)


class TestStatic:
    def test_static_taken_predicts_taken(self):
        p = StaticTakenPredictor()
        assert p.predict(0x10) is True
        p.update(0x10, False)
        assert p.predict(0x10) is True

    def test_static_nottaken(self):
        assert StaticNotTakenPredictor().predict(0x10) is False


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(index_bits=8)
        acc = _accuracy(p, [True] * 100)
        assert acc > 0.95

    def test_hysteresis_tolerates_single_flip(self):
        p = BimodalPredictor(index_bits=8)
        for _ in range(10):
            p.update(0x40, True)
        p.update(0x40, False)  # one anomaly
        assert p.predict(0x40) is True

    def test_distinct_pcs_do_not_interfere_without_aliasing(self):
        p = BimodalPredictor(index_bits=10)
        for _ in range(5):
            p.update(0x100, True)
            p.update(0x200, False)
        assert p.predict(0x100) is True
        assert p.predict(0x200) is False

    def test_reset_forgets(self):
        p = BimodalPredictor(index_bits=6)
        for _ in range(10):
            p.update(0x40, False)
        p.reset()
        assert p.predict(0x40) is True  # back to weakly-taken init

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BimodalPredictor(index_bits=1)


class TestGShare:
    def test_learns_alternating_pattern_better_than_bimodal(self):
        outcomes = [bool(i % 2) for i in range(400)]
        gshare = _accuracy(GSharePredictor(history_bits=10), outcomes)
        bimodal = _accuracy(BimodalPredictor(index_bits=10), outcomes)
        assert gshare > 0.9
        assert gshare > bimodal

    def test_random_outcomes_near_chance(self):
        rng = random.Random(3)
        outcomes = [rng.random() < 0.5 for _ in range(600)]
        acc = _accuracy(GSharePredictor(history_bits=10), outcomes)
        assert 0.3 < acc < 0.7


class TestTournament:
    def test_beats_or_matches_components_on_mixed_workload(self):
        rng = random.Random(7)
        # One strongly biased branch plus one patterned branch.
        seq = []
        for i in range(600):
            seq.append((0x100, rng.random() < 0.95))
            seq.append((0x200, bool(i % 2)))

        def run(predictor):
            correct = 0
            for pc, taken in seq:
                if predictor.predict_update(pc, taken) == taken:
                    correct += 1
            return correct / len(seq)

        tournament = run(TournamentPredictor(history_bits=10, chooser_bits=10))
        assert tournament > 0.9


class TestTAGE:
    def test_learns_biased_branch(self):
        assert _accuracy(TAGEPredictor(table_bits=8), [True] * 200) > 0.95

    def test_learns_history_pattern_bimodal_cannot(self):
        # Period-4 pattern T,T,N,N: bimodal counters oscillate, a
        # history-indexed tagged table converges.
        pattern = [True, True, False, False] * 200
        tage = _accuracy(TAGEPredictor(table_bits=10), pattern)
        bimodal = _accuracy(BimodalPredictor(index_bits=10), pattern)
        assert tage > bimodal
        assert tage > 0.8

    def test_reset_forgets_training(self):
        p = TAGEPredictor(table_bits=8)
        for _ in range(100):
            p.predict_update(0x40, False)
        p.reset()
        assert p.predict(0x40) is True  # back to weakly-taken base

    def test_table_bits_validated(self):
        with pytest.raises(ValueError):
            TAGEPredictor(table_bits=2)


class TestPredictUpdateConsistency:
    @pytest.mark.parametrize("factory", ALL_PREDICTORS)
    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=50),
           pcs=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_predict_update_equals_predict_then_update(self, factory, outcomes, pcs):
        """The fused hot-loop helper must match the two-call protocol."""
        fused = factory()
        split = factory()
        for i, taken in enumerate(outcomes):
            pc = pcs[i % len(pcs)]
            prediction_fused = fused.predict_update(pc, taken)
            prediction_split = split.predict(pc)
            split.update(pc, taken)
            assert prediction_fused == prediction_split
