"""Decoder library behaviour, including the deliberate bug mode."""

from repro.isa.decoder import BuggyDecoder, Decoder
from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, fp_reg, int_reg


class TestDecoder:
    def test_decode_extracts_fields(self):
        word = encode(OpClass.IMUL, int_reg(3), int_reg(4), int_reg(5), imm=7)
        inst = Decoder().decode(word)
        assert inst.opclass is OpClass.IMUL
        assert (inst.dst, inst.src1, inst.src2, inst.imm) == (3, 4, 5, 7)

    def test_decode_is_interned_per_word(self):
        decoder = Decoder()
        word = encode(OpClass.IALU, int_reg(1), int_reg(2))
        assert decoder.decode(word) is decoder.decode(word)

    def test_cache_size_counts_unique_words(self):
        decoder = Decoder()
        words = [encode(OpClass.IALU, int_reg(k)) for k in range(5)]
        for word in words * 3:
            decoder.decode(word)
        assert decoder.cache_size() == 5

    def test_decode_many_matches_individual_decodes(self):
        decoder = Decoder()
        words = [encode(OpClass.LOAD, int_reg(k), int_reg(2)) for k in range(4)]
        assert decoder.decode_many(words) == [decoder.decode(w) for w in words]

    def test_sources_skips_absent_operands(self):
        inst = Decoder().decode(encode(OpClass.IALU, int_reg(1), int_reg(2)))
        assert inst.sources() == (2,)


class TestBuggyDecoder:
    def test_fp_second_source_dropped(self):
        word = encode(OpClass.FPMUL, fp_reg(1), fp_reg(2), fp_reg(3))
        buggy = BuggyDecoder().decode(word)
        correct = Decoder().decode(word)
        assert correct.src2 == fp_reg(3)
        assert buggy.src2 == NO_REG
        assert buggy.src1 == correct.src1

    def test_integer_instructions_unaffected(self):
        word = encode(OpClass.IALU, int_reg(1), int_reg(2), int_reg(3))
        assert BuggyDecoder().decode(word) == Decoder().decode(word)

    def test_all_fp_classes_affected(self):
        for opclass in (OpClass.FPALU, OpClass.FPDIV, OpClass.SIMD_MUL, OpClass.FCVT):
            word = encode(opclass, fp_reg(0), fp_reg(1), fp_reg(2))
            assert BuggyDecoder().decode(word).src2 == NO_REG

    def test_decoder_names_differ(self):
        assert Decoder().name != BuggyDecoder().name
