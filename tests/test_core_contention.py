"""Functional-unit contention model."""

from repro.core.config import ExecConfig
from repro.core.contention import ContentionModel
from repro.isa.opclasses import OpClass

_IALU = int(OpClass.IALU)
_IMUL = int(OpClass.IMUL)
_IDIV = int(OpClass.IDIV)
_FPALU = int(OpClass.FPALU)
_FPDIV = int(OpClass.FPDIV)
_LOAD = int(OpClass.LOAD)
_NOP = int(OpClass.NOP)
_BRANCH = int(OpClass.BRANCH)


class TestPools:
    def test_pipelined_unit_accepts_one_per_cycle(self):
        model = ContentionModel(ExecConfig(n_imul=1, imul_latency=3))
        t0 = model.probe(_IMUL, 0)
        model.commit(_IMUL, t0)
        t1 = model.probe(_IMUL, 0)
        assert t1 == t0 + 1  # pipelined: next cycle, not after latency

    def test_non_pipelined_divider_blocks_for_latency(self):
        model = ContentionModel(ExecConfig(idiv_latency=12, idiv_pipelined=False))
        model.commit(_IDIV, 0)
        assert model.probe(_IDIV, 0) == 12

    def test_pipelined_divider_option(self):
        model = ContentionModel(ExecConfig(idiv_latency=12, idiv_pipelined=True))
        model.commit(_IDIV, 0)
        assert model.probe(_IDIV, 0) == 1

    def test_multiple_units_absorb_bursts(self):
        two = ContentionModel(ExecConfig(n_ialu=2))
        two.commit(_IALU, 0)
        assert two.probe(_IALU, 0) == 0  # second ALU free
        two.commit(_IALU, 0)
        assert two.probe(_IALU, 0) == 1

    def test_mul_and_div_share_the_multiply_pipe(self):
        model = ContentionModel(ExecConfig(n_imul=1, idiv_latency=10, idiv_pipelined=False))
        model.commit(_IDIV, 0)
        assert model.probe(_IMUL, 0) == 10

    def test_nop_uses_no_unit(self):
        model = ContentionModel(ExecConfig())
        assert model.probe(_NOP, 5) == 5
        assert model.commit(_NOP, 5) == 6  # completes next cycle

    def test_commit_returns_completion(self):
        model = ContentionModel(ExecConfig(fpalu_latency=4))
        assert model.commit(_FPALU, 10) == 14

    def test_latency_lookup(self):
        model = ContentionModel(ExecConfig(imul_latency=5))
        assert model.latency(_IMUL) == 5
        assert model.latency(_IALU) == 1

    def test_reset_frees_units(self):
        model = ContentionModel(ExecConfig(idiv_latency=20, idiv_pipelined=False))
        model.commit(_IDIV, 0)
        model.reset()
        assert model.probe(_IDIV, 0) == 0


class TestPairingRules:
    def test_mul_blocks_fp_same_cycle(self):
        assert ContentionModel.pairing_conflict(_FPALU, issued_mul=True, issued_fp=False)
        assert ContentionModel.pairing_conflict(_IMUL, issued_mul=False, issued_fp=True)

    def test_alu_pairs_with_anything(self):
        assert not ContentionModel.pairing_conflict(_IALU, True, True)

    def test_mem_and_branch_unconstrained_by_pairing(self):
        assert not ContentionModel.pairing_conflict(_LOAD, True, True)
        assert not ContentionModel.pairing_conflict(_BRANCH, True, True)
