"""Interpreter control-flow semantics."""

import pytest

from repro.frontend.builder import ProgramBuilder
from repro.frontend.interpreter import Interpreter, trace_program
from repro.frontend.program import (
    AlwaysTaken,
    CycleTargets,
    FixedAddr,
    NeverTaken,
    PatternTaken,
)
from repro.isa.encoding import decode_fields
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg


def _opclasses(trace):
    return [decode_fields(rec.word)[0] for rec in trace.records]


class TestBasics:
    def test_straight_line_one_iteration(self):
        b = ProgramBuilder()
        b.op(OpClass.IALU, int_reg(1)).op(OpClass.IALU, int_reg(2))
        trace = trace_program(b.build(), iterations=1)
        assert len(trace) == 2
        assert trace[0].pc + 4 == trace[1].pc

    def test_iterations_repeat_program(self):
        b = ProgramBuilder()
        b.op(OpClass.IALU, int_reg(1))
        trace = trace_program(b.build(), iterations=5)
        assert len(trace) == 5
        assert len({rec.pc for rec in trace.records}) == 1

    def test_max_instructions_caps_trace(self):
        b = ProgramBuilder()
        b.label("top").op(OpClass.IALU, int_reg(1)).jump("top")  # endless loop
        trace = Interpreter(max_instructions=100).run(b.build(), iterations=1)
        assert len(trace) == 100

    def test_invalid_iterations_rejected(self):
        b = ProgramBuilder()
        b.op(OpClass.NOP)
        with pytest.raises(ValueError):
            trace_program(b.build(), iterations=0)

    def test_memory_addresses_recorded(self):
        b = ProgramBuilder()
        b.load(int_reg(1), FixedAddr(0xABC0))
        trace = trace_program(b.build())
        assert trace[0].addr == 0xABC0


class TestControlFlow:
    def test_taken_branch_redirects(self):
        b = ProgramBuilder()
        b.branch("skip", AlwaysTaken())
        b.op(OpClass.IALU, int_reg(1))  # skipped
        b.label("skip").op(OpClass.IALU, int_reg(2))
        trace = trace_program(b.build())
        assert len(trace) == 2
        assert trace[0].taken and trace[0].target == trace[1].pc

    def test_not_taken_branch_falls_through(self):
        b = ProgramBuilder()
        b.branch("skip", NeverTaken())
        b.op(OpClass.IALU, int_reg(1))
        b.label("skip").op(OpClass.IALU, int_reg(2))
        trace = trace_program(b.build())
        assert len(trace) == 3
        assert not trace[0].taken and trace[0].target == 0

    def test_pattern_branch_loop_count(self):
        b = ProgramBuilder()
        b.label("top").op(OpClass.IALU, int_reg(1))
        b.branch("top", PatternTaken("TTN"))
        trace = trace_program(b.build())
        # Body+branch executed 3 times (taken, taken, fall out).
        assert len(trace) == 6

    def test_indirect_branch_follows_target_pattern(self):
        b = ProgramBuilder()
        b.indirect(CycleTargets([2, 1]))
        b.op(OpClass.IALU, int_reg(1))  # index 1
        b.op(OpClass.IALU, int_reg(2))  # index 2
        trace = trace_program(b.build(), iterations=2)
        # First iteration dispatches to index 2, second to index 1.
        assert trace[1].pc == trace[0].pc + 8
        assert [rec.taken for rec in trace.records][0] is True

    def test_call_and_ret_use_stack(self):
        b = ProgramBuilder()
        b.jump("main")
        b.label("fn").op(OpClass.IALU, int_reg(1)).ret()
        b.label("main").call("fn").op(OpClass.IALU, int_reg(2))
        trace = trace_program(b.build())
        ops = _opclasses(trace)
        assert OpClass.CALL in ops and OpClass.RET in ops
        ret_idx = ops.index(OpClass.RET)
        call_idx = ops.index(OpClass.CALL)
        # Return lands right after the call site.
        assert trace[ret_idx].target == trace[call_idx].pc + 4

    def test_ret_with_empty_stack_falls_through(self):
        b = ProgramBuilder()
        b.ret()
        b.op(OpClass.IALU, int_reg(1))
        trace = trace_program(b.build())
        assert len(trace) == 2
        assert not trace[0].taken

    def test_call_stack_cleared_between_iterations(self):
        b = ProgramBuilder()
        b.call("fn")
        b.label("fn").op(OpClass.IALU, int_reg(1))
        # Call pushes, but the program ends before any ret; next
        # iteration must not see a stale return address.
        trace = trace_program(b.build(), iterations=2)
        rets = [rec for rec in trace.records if decode_fields(rec.word)[0] is OpClass.RET]
        assert not rets

    def test_determinism_across_runs(self):
        b = ProgramBuilder()
        b.label("top").op(OpClass.IALU, int_reg(1))
        b.branch("top", PatternTaken("T" * 9 + "N"))
        program = b.build()
        t1 = trace_program(program, iterations=1)
        t2 = trace_program(program, iterations=1)
        assert t1.records == t2.records
