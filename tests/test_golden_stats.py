"""Golden-trace regression: optimised hot path == pre-optimised results.

``tests/golden/golden_stats.json`` was captured from the pre-PR-3
(naive-loop) simulator at commit ``0ca23a4``: full ``SimStats`` payloads
for a mix of cores, workload categories and decoder libraries, plus
hardware-path perf counters. The optimised hot path (flattened streams,
inlined contention, cache fast paths) must reproduce every counter
bit-for-bit — this is the contract that makes the performance layer
safe to evolve.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import pytest

from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.hardware.board import FireflyRK3399
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.simulator import SnipeSim, simulate
from repro.trace.record import build_stream
from repro.workloads.microbench import MICROBENCHMARKS
from repro.workloads.spec import SPEC_WORKLOADS

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "golden_stats.json")


def _golden():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


def _workload(name):
    return MICROBENCHMARKS.get(name) or SPEC_WORKLOADS[name]


def _config(core):
    return cortex_a53_public_config() if core == "a53" else cortex_a72_public_config()


GOLDEN = _golden()


@pytest.mark.parametrize(
    "entry", GOLDEN["sim"],
    ids=[f"{e['core']}-{e['workload']}-{e['decoder']}" for e in GOLDEN["sim"]],
)
def test_sim_stats_match_pre_optimisation_golden(entry):
    decoder = BuggyDecoder() if entry["decoder"] == "buggy" else Decoder()
    stats = simulate(_config(entry["core"]), _workload(entry["workload"]).trace(),
                     decoder=decoder)
    assert asdict(stats) == entry["stats"]


@pytest.mark.parametrize(
    "entry", GOLDEN["hw"],
    ids=[f"{e['core']}-{e['workload']}" for e in GOLDEN["hw"]],
)
def test_hardware_counters_match_golden(entry):
    """The effects-attached (ground truth) path is bit-identical too."""
    board = FireflyRK3399()
    result = board.core(entry["core"]).measure(_workload(entry["workload"]).trace())
    assert result.counters == entry["counters"]
    assert result.cpi == entry["cpi"]


class TestStreamEquivalence:
    """The compatibility ``run(trace, decoded)`` API and the memoised
    stream path produce identical stats."""

    @pytest.mark.parametrize("core,workload", [("a53", "MM"), ("a72", "CS1")])
    def test_run_equals_run_stream(self, core, workload):
        config = _config(core)
        trace = _workload(workload).trace()
        decoder = Decoder()
        via_sim = simulate(config, trace, decoder=decoder)

        sim = SnipeSim(config, decoder=decoder)
        core_model = sim._build_core()
        decoded = trace.decoded_with(decoder)
        via_run = core_model.run(trace, decoded)
        via_run.decoder = decoder.name
        assert asdict(via_run) == asdict(via_sim)

    def test_stream_is_memoised_per_decoder_library(self):
        trace = _workload("CCa").trace()
        a = trace.stream_with(Decoder())
        b = trace.stream_with(Decoder())
        assert a is b  # one flatten per decoder library
        c = trace.stream_with(BuggyDecoder())
        assert c is not a

    def test_build_stream_layout(self):
        trace = _workload("CCa").trace()
        decoder = Decoder()
        stream = build_stream(trace.records, trace.decoded_with(decoder))
        assert len(stream) == len(trace)
        for (opclass, kind, dst, src1, src2, pc, addr, taken, target), rec in zip(
            stream, trace.records
        ):
            assert isinstance(opclass, int)
            assert isinstance(kind, int)
            assert pc == rec.pc and addr == rec.addr
            assert taken == rec.taken and target == rec.target
            break  # layout check on the first record is enough
