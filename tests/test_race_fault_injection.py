"""Fault-injected async racing: speculation survives a hostile fleet.

The async race keeps speculative work in flight across a remote fleet,
so the crash-tolerance story has more to prove than the synchronous
campaign (``tests/test_service_recovery.py``): a SIGKILLed worker may
die holding a *speculative* task (one the race may cancel before it
ever commits), and a server restart interrupts not just result polls
but speculative enqueues and cancellations mid-flight.

The acceptance bar is unchanged and absolute: the campaign JSON from an
async fabric race under chaos is byte-identical to a synchronous serial
run, and afterwards the queue is fully drained — nothing queued,
nothing leased, and *no dead letters*, i.e. cancelled speculation never
rots into poisoned tasks.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

from repro.service.client import HttpQueue, ServiceError

TOKEN = "race-chaos-secret"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_TOKEN"] = TOKEN
    return env


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn_serve(store_path, port):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_path),
         "--port", str(port)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def spawn_worker(url):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--url", url,
         "--poll", "0.05", "--lease", "5", "--max-idle", "120"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def wait_until_serving(url, timeout=20.0):
    queue = HttpQueue(url, token=TOKEN, max_retries=0)

    def pings():
        try:
            queue.counts()
            return True
        except ServiceError:
            return False

    assert wait_for(pings, timeout=timeout), f"service at {url} never came up"


CAMPAIGN_ARGS = ["--core", "a53", "--profile", "fast", "--stages", "1",
                 "--seed", "7"]


def run_validate(tmp_path, out_name, *extra):
    out = tmp_path / out_name
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "validate", *CAMPAIGN_ARGS,
         "--out", str(out), *extra],
        env=_env(), capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return out.read_bytes()


class TestAsyncRaceUnderChaos:
    def test_sigkilled_worker_and_server_restart_match_serial_sync(
            self, tmp_path):
        serial = run_validate(tmp_path, "serial.json")

        store_path = tmp_path / "svc.sqlite"
        port = free_port()
        url = f"http://127.0.0.1:{port}"
        server = spawn_serve(store_path, port)
        workers = []
        try:
            wait_until_serving(url)
            workers = [spawn_worker(url) for _ in range(2)]
            victim = workers[0]
            monitor = HttpQueue(url, token=TOKEN, max_retries=2)
            flags = {"killed_worker": False, "restarted_server": False}
            servers = [server]

            def chaos():
                """SIGKILL a worker at first lease (it dies holding an
                in-flight — possibly speculative — task); once progress
                resumes, bounce the server mid-race."""
                deadline = time.monotonic() + 180
                while time.monotonic() < deadline:
                    try:
                        counts = monitor.counts()
                    except ServiceError:
                        counts = None
                    if counts is not None:
                        if (not flags["killed_worker"]
                                and counts["leased"] >= 1):
                            victim.send_signal(signal.SIGKILL)
                            flags["killed_worker"] = True
                        elif (flags["killed_worker"]
                                and not flags["restarted_server"]
                                and counts["done"] >= 5):
                            servers[-1].send_signal(signal.SIGKILL)
                            servers[-1].wait(timeout=10)
                            servers.append(spawn_serve(store_path, port))
                            flags["restarted_server"] = True
                            return
                    time.sleep(0.2)

            thread = threading.Thread(target=chaos, daemon=True)
            thread.start()
            fabric = run_validate(tmp_path, "async.json",
                                  "--executor", "fabric",
                                  "--store", str(store_path),
                                  "--race-mode", "async",
                                  "--lookahead", "3")
            thread.join(timeout=10)
            assert flags["killed_worker"], "victim worker was never killed"
            assert flags["restarted_server"], "server was never restarted"
            assert victim.poll() is not None
            server = servers[-1]

            assert fabric == serial, \
                "async fabric campaign JSON diverged from sync serial"
            payload = json.loads(serial)
            assert payload["core"] == "a53" and payload["final_errors"]

            # The queue drained clean through every failure: cancelled
            # speculation must not linger as queued work or dead letters.
            wait_until_serving(url)
            counts = HttpQueue(url, token=TOKEN).counts()
            assert counts["dead"] == 0, "speculative task rotted into a dead letter"
            assert counts["queued"] == 0 and counts["leased"] == 0
        finally:
            for proc in [*workers, server]:
                if proc.poll() is None:
                    proc.kill()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    pass
