"""Composite branch unit redirect classification."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.indirect import NoIndirectPredictor, TaggedIndirectPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.simple import StaticTakenPredictor, StaticNotTakenPredictor
from repro.branch.unit import (
    REDIRECT_BTB,
    REDIRECT_MISPREDICT,
    REDIRECT_NONE,
    BranchUnit,
    build_direction_predictor,
    build_indirect_predictor,
)
from repro.isa.opclasses import OpClass

_BRANCH = int(OpClass.BRANCH)
_JUMP = int(OpClass.JUMP)
_CALL = int(OpClass.CALL)
_RET = int(OpClass.RET)
_IBRANCH = int(OpClass.IBRANCH)


def _unit(direction=None, indirect=None):
    return BranchUnit(
        direction=direction or StaticTakenPredictor(),
        btb=BranchTargetBuffer(entries=64, assoc=2),
        ras=ReturnAddressStack(entries=8),
        indirect=indirect or NoIndirectPredictor(),
    )


class TestConditional:
    def test_wrong_direction_is_full_mispredict(self):
        unit = _unit(direction=StaticNotTakenPredictor())
        assert unit.access(_BRANCH, 0x100, True, 0x200) == REDIRECT_MISPREDICT
        assert unit.stats.direction_mispredicts == 1

    def test_correct_direction_unknown_target_is_btb_bubble(self):
        unit = _unit(direction=StaticTakenPredictor())
        assert unit.access(_BRANCH, 0x100, True, 0x200) == REDIRECT_BTB
        # Second time the BTB knows the target.
        assert unit.access(_BRANCH, 0x100, True, 0x200) == REDIRECT_NONE

    def test_correct_nottaken_needs_no_btb(self):
        unit = _unit(direction=StaticNotTakenPredictor())
        assert unit.access(_BRANCH, 0x100, False, 0) == REDIRECT_NONE


class TestUnconditional:
    def test_jump_btb_warmup(self):
        unit = _unit()
        assert unit.access(_JUMP, 0x100, True, 0x400) == REDIRECT_BTB
        assert unit.access(_JUMP, 0x100, True, 0x400) == REDIRECT_NONE
        assert unit.stats.btb_misses == 1

    def test_call_ret_pair_predicted_by_ras(self):
        unit = _unit()
        unit.access(_CALL, 0x100, True, 0x400)   # pushes 0x104
        assert unit.access(_RET, 0x40C, True, 0x104) == REDIRECT_NONE

    def test_ret_with_wrong_target_mispredicts(self):
        unit = _unit()
        unit.access(_CALL, 0x100, True, 0x400)
        assert unit.access(_RET, 0x40C, True, 0x999) == REDIRECT_MISPREDICT
        assert unit.stats.ras_mispredicts == 1

    def test_ret_fallthrough_not_counted_as_redirect(self):
        unit = _unit()
        assert unit.access(_RET, 0x100, False, 0) == REDIRECT_NONE


class TestIndirectDispatch:
    def test_no_indirect_predictor_always_redirects(self):
        unit = _unit(indirect=NoIndirectPredictor())
        for _ in range(3):
            assert unit.access(_IBRANCH, 0x100, True, 0x700) == REDIRECT_MISPREDICT
        assert unit.stats.indirect_mispredicts == 3

    def test_tagged_predictor_learns_monomorphic_site(self):
        unit = _unit(indirect=TaggedIndirectPredictor(entries=64))
        unit.access(_IBRANCH, 0x100, True, 0x700)
        assert unit.access(_IBRANCH, 0x100, True, 0x700) == REDIRECT_NONE


class TestStatsAndFactories:
    def test_stats_accumulate(self):
        unit = _unit(direction=StaticNotTakenPredictor())
        unit.access(_BRANCH, 0x100, True, 0x200)
        unit.access(_BRANCH, 0x104, False, 0)
        assert unit.stats.branches == 2
        assert unit.stats.mispredicts == 1
        assert 0 < unit.stats.mispredict_rate < 1

    def test_non_branch_opclass_rejected(self):
        with pytest.raises(ValueError):
            _unit().access(int(OpClass.IALU), 0x100, False, 0)

    def test_reset_clears_state(self):
        unit = _unit()
        unit.access(_JUMP, 0x100, True, 0x400)
        unit.reset()
        assert unit.stats.branches == 0
        assert unit.access(_JUMP, 0x100, True, 0x400) == REDIRECT_BTB

    def test_direction_factory_known_kinds(self):
        for kind in ("static-taken", "static-nottaken", "bimodal", "gshare",
                     "tournament", "tage"):
            assert build_direction_predictor(kind, 10) is not None
        with pytest.raises(ValueError, match="unknown direction component"):
            build_direction_predictor("perceptron", 10)

    def test_indirect_factory_known_kinds(self):
        for kind in ("none", "last-target", "tagged"):
            assert build_indirect_predictor(kind, 128) is not None
        with pytest.raises(ValueError, match="unknown indirect component"):
            build_indirect_predictor("ittage", 128)
