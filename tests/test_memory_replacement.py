"""Replacement policies over the cache's per-set dicts."""

import pytest

from repro.memory.cache import _Line
from repro.memory.replacement import ClockPLRU, LRUPolicy, RandomPolicy, build_replacement


def _set_with(tags):
    return {tag: _Line() for tag in tags}


class TestLRU:
    def test_victim_is_oldest(self):
        policy = LRUPolicy()
        entries = _set_with([1, 2, 3])
        assert policy.choose_victim(entries) == 1

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy()
        entries = _set_with([1, 2, 3])
        policy.on_hit(entries, 1)
        assert policy.choose_victim(entries) == 2


class TestClockPLRU:
    def test_unreferenced_line_evicted_first(self):
        policy = ClockPLRU()
        entries = _set_with([1, 2, 3])
        policy.on_hit(entries, 1)  # sets 1's reference bit
        assert policy.choose_victim(entries) == 2

    def test_all_referenced_second_pass_clears(self):
        policy = ClockPLRU()
        entries = _set_with([1, 2])
        policy.on_hit(entries, 1)
        policy.on_hit(entries, 2)
        victim = policy.choose_victim(entries)
        assert victim in (1, 2)
        # Scan must have cleared bits on the way.
        assert not all(line.referenced for line in entries.values())


class TestRandom:
    def test_victim_is_member_and_deterministic_per_seed(self):
        entries = _set_with([10, 20, 30])
        a = RandomPolicy(seed=1)
        b = RandomPolicy(seed=1)
        seq_a = [a.choose_victim(entries) for _ in range(10)]
        seq_b = [b.choose_victim(entries) for _ in range(10)]
        assert seq_a == seq_b
        assert set(seq_a) <= {10, 20, 30}


class TestSRRIP:
    def test_inserted_lines_evict_before_promoted_ones(self):
        from repro.memory.replacement import SRRIPPolicy

        policy = SRRIPPolicy()
        entries = _set_with([10, 20, 30, 40])
        policy.on_hit(entries, 10)  # promote to near-immediate
        # 20/30/40 carry the insertion RRPV and age to distant first.
        assert policy.choose_victim(entries) == 20

    def test_hit_promotion_survives_multiple_scans(self):
        from repro.memory.replacement import SRRIPPolicy

        policy = SRRIPPolicy()
        entries = _set_with([1, 2, 3, 4])
        policy.on_hit(entries, 1)
        victims = []
        for _ in range(3):
            victim = policy.choose_victim(entries)
            victims.append(victim)
            del entries[victim]
            entries[100 + len(victims)] = object()  # fresh scan line
        assert 1 not in victims

    def test_victim_state_dropped_on_eviction(self):
        from repro.memory.replacement import SRRIPPolicy

        policy = SRRIPPolicy()
        entries = _set_with([1, 2])
        policy.on_hit(entries, 1)
        victim = policy.choose_victim(entries)
        assert victim == 2
        # A re-inserted line must restart at the insertion RRPV, not
        # inherit stale promotion state.
        assert 2 not in policy._rrpv

    def test_reset_clears_rrpv_map(self):
        from repro.memory.replacement import SRRIPPolicy

        policy = SRRIPPolicy()
        entries = _set_with([1, 2])
        policy.on_hit(entries, 1)
        policy.reset()
        assert policy._rrpv == {}


class TestFactory:
    def test_known_kinds(self):
        for kind in ("lru", "plru", "random", "srrip"):
            assert build_replacement(kind).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            build_replacement("fifo")
