"""SPEC CPU2017 proxy workloads (Table II)."""

import pytest

from repro.trace.stats import compute_trace_stats
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    SPEC_PROFILES,
    SPEC_WORKLOADS,
    get_spec_benchmark,
)

TABLE2 = {
    "mcf": ("psimplex.c", 331, "12 Billion"),
    "povray": ("povray.cpp", 258, "2.45 Billion"),
    "omnetpp": ("simulator/cmdenv.cc", 268, "10.8 Billion"),
    "xalancbmk": ("XalanExe.cpp", 842, "443 Million"),
    "deepsjeng": ("epd.cpp", 365, "14.9 Billion"),
    "x264": ("x264_src/x264.c", 173, "14.8 Billion"),
    "nab": ("nabmd.c", 127, "14.2 Billion"),
    "leela": ("Leela.cpp", 62, "10.3 Billion"),
    "imagick": ("wang/mogrify.cpp", 168, "13.4 Billion"),
    "gcc": ("toplev.c", 2461, "9 Billion"),
    "xz": ("spec_xz.c", 229, "10.8 Billion"),
}


class TestRegistry:
    def test_all_eleven_applications(self):
        assert len(SPEC_BENCHMARKS) == 11
        assert set(SPEC_WORKLOADS) == set(TABLE2)

    def test_table2_provenance_recorded(self):
        by_name = {p.name: p for p in SPEC_PROFILES}
        for name, (fname, line, insns) in TABLE2.items():
            profile = by_name[name]
            assert profile.paper_file == fname
            assert profile.paper_line == line
            assert profile.paper_instructions == insns

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_spec_benchmark("blender")


class TestTraces:
    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_trace_builds(self, name):
        trace = get_spec_benchmark(name).trace()
        assert 1500 <= len(trace) <= 40_000

    def test_determinism(self):
        wl = get_spec_benchmark("gcc")
        from repro.frontend.interpreter import trace_program

        assert trace_program(wl.builder(1.0)).records == trace_program(wl.builder(1.0)).records


class TestMixSignatures:
    def test_fp_applications_have_fp(self):
        for name in ("povray", "nab"):
            stats = compute_trace_stats(get_spec_benchmark(name).trace())
            assert stats.fp_fraction > 0.15, name

    def test_simd_applications_have_fp_or_simd(self):
        for name in ("x264", "imagick"):
            stats = compute_trace_stats(get_spec_benchmark(name).trace())
            assert stats.fp_fraction > 0.12, name

    def test_integer_applications_have_no_fp(self):
        for name in ("mcf", "deepsjeng", "xz", "gcc"):
            stats = compute_trace_stats(get_spec_benchmark(name).trace())
            assert stats.fp_fraction < 0.05, name

    def test_pointer_chasers_have_large_footprints(self):
        mcf = compute_trace_stats(get_spec_benchmark("mcf").trace())
        leela = compute_trace_stats(get_spec_benchmark("leela").trace())
        assert mcf.unique_cachelines > 2 * leela.unique_cachelines

    def test_dispatchy_applications_use_indirect_branches(self):
        for name in ("omnetpp", "xalancbmk", "gcc"):
            stats = compute_trace_stats(get_spec_benchmark(name).trace())
            assert stats.indirect_branches > 0, name

    def test_all_have_realistic_mixes(self):
        for wl in SPEC_BENCHMARKS:
            stats = compute_trace_stats(wl.trace())
            assert 0.10 < stats.load_fraction < 0.55, wl.name
            assert 0.02 < stats.branch_fraction < 0.40, wl.name

    def test_code_footprint_applications(self):
        gcc = compute_trace_stats(get_spec_benchmark("gcc").trace())
        nab = compute_trace_stats(get_spec_benchmark("nab").trace())
        assert gcc.unique_pcs > nab.unique_pcs


class TestHardwareBehaviour:
    def test_mcf_is_memory_bound_on_both_cores(self, board):
        trace = get_spec_benchmark("mcf").trace()
        assert board.a53.measure(trace).cpi > 10
        assert board.a72.measure(trace).cpi > 10

    def test_compute_apps_faster_than_mcf(self, board):
        mcf = board.a53.measure(get_spec_benchmark("mcf").trace()).cpi
        povray = board.a53.measure(get_spec_benchmark("povray").trace()).cpi
        assert povray < mcf / 2
