"""The content-addressed result store.

:class:`ResultStore` is the durable counterpart of the
:class:`~repro.engine.engine.EvaluationEngine`'s in-memory result cache:
simulator statistics, hardware measurements and memoised trial costs,
addressed by the engine's own content keys (:mod:`repro.engine.keys`),
persisted through a pluggable backend (:mod:`repro.store.backend`).
An engine given a store reads and writes through it transparently, so
successive processes — CLI invocations, tuning sessions, CI jobs —
share one experiment database the way the paper's methodology shares
one set of hardware measurements.

Beyond result rows it also holds campaign/tuner **checkpoints** (stage
payloads keyed by run id, see :mod:`repro.store.checkpoint`) and the
**run registry** rows (:mod:`repro.store.registry`), plus the
housekeeping surface the CLI exposes: :meth:`stats`, :meth:`gc`,
:meth:`export_json` and :meth:`import_json`.
"""

from __future__ import annotations

import time

from repro.analysis.io import load_result_json, save_result_json
from repro.store.backend import SCHEMA_VERSION, TABLES, make_backend
from repro.store.serialize import (
    dumps,
    encode_key,
    loads,
    perf_from_payload,
    perf_to_payload,
    stats_from_payload,
    stats_to_payload,
)

#: Separator between run id and stage name in checkpoint keys.
_CK_SEP = "::"


class ResultStore:
    """Durable, shared experiment results over one backend."""

    def __init__(self, backend) -> None:
        self.backend = backend

    @property
    def registry(self):
        """The run registry view of this store."""
        from repro.store.registry import RunRegistry

        return RunRegistry(self)

    # ------------------------------------------------------------------
    # Simulator statistics
    # ------------------------------------------------------------------
    def get_sim(self, key):
        """Stored :class:`SimStats` for an engine sim key, or ``None``."""
        text = self.backend.get("sim_results", encode_key(key))
        return stats_from_payload(loads(text)) if text is not None else None

    def get_sims(self, keys) -> dict:
        """``{key: SimStats_or_None}`` for many keys in one round trip.

        Backed by the backend's ``get_many`` (one SQL query locally,
        one HTTP request remotely), which is what keeps result polling
        for K racing candidates from costing K wire round trips.
        """
        keys = list(keys)
        encoded = [encode_key(key) for key in keys]
        raw = self.backend.get_many("sim_results", encoded)
        return {
            key: (stats_from_payload(loads(raw[enc]))
                  if raw.get(enc) is not None else None)
            for key, enc in zip(keys, encoded)
        }

    def put_sim(self, key, stats) -> None:
        """Persist one simulation result under its content key."""
        self.put_sim_many([(key, stats)])

    def put_sim_many(self, items) -> int:
        """Persist ``[(key, stats), ...]``; returns rows newly written."""
        return self.backend.put_many(
            "sim_results",
            [(encode_key(key), dumps(stats_to_payload(stats))) for key, stats in items],
        )

    # ------------------------------------------------------------------
    # Hardware measurements
    # ------------------------------------------------------------------
    def get_hw(self, key):
        """Stored hardware measurement for an engine hw key, or ``None``."""
        text = self.backend.get("hw_results", encode_key(key))
        return perf_from_payload(loads(text)) if text is not None else None

    def put_hw(self, key, result) -> None:
        """Persist one hardware measurement under its content key."""
        self.backend.put("hw_results", encode_key(key), dumps(perf_to_payload(result)))

    # ------------------------------------------------------------------
    # Trial costs (the tuner's memo, persisted)
    # ------------------------------------------------------------------
    def get_cost(self, key):
        """Stored trial cost for a tuner memo key, or ``None``."""
        text = self.backend.get("trial_costs", encode_key(key))
        return loads(text) if text is not None else None

    def put_cost_many(self, items) -> int:
        """Persist ``[(key, cost), ...]``; returns rows newly written."""
        return self.backend.put_many(
            "trial_costs", [(encode_key(key), dumps(cost)) for key, cost in items]
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def put_checkpoint(self, run_id: str, stage: str, payload: dict) -> None:
        """Write a stage-granular checkpoint payload for ``run_id``."""
        self.backend.put("checkpoints", f"{run_id}{_CK_SEP}{stage}", dumps(payload))

    def get_checkpoint(self, run_id: str, stage: str):
        """Checkpoint payload for ``(run_id, stage)``, or ``None``."""
        text = self.backend.get("checkpoints", f"{run_id}{_CK_SEP}{stage}")
        return loads(text) if text is not None else None

    def list_checkpoints(self, run_id: str) -> list:
        """Stage names checkpointed under ``run_id`` (storage order)."""
        prefix = f"{run_id}{_CK_SEP}"
        return [
            key[len(prefix):]
            for key, _value, _created in self.backend.items("checkpoints")
            if key.startswith(prefix)
        ]

    def delete_checkpoints(self, run_id: str) -> int:
        """Drop all checkpoints of ``run_id``; returns rows removed."""
        removed = 0
        for stage in self.list_checkpoints(run_id):
            removed += self.backend.delete("checkpoints", f"{run_id}{_CK_SEP}{stage}")
        return removed

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Row counts, backend identity, schema version, on-disk size."""
        out = {
            "backend": self.backend.kind,
            "path": self.backend.path,
            "schema_version": getattr(self.backend, "schema_version", SCHEMA_VERSION),
            "size_bytes": self.backend.size_bytes(),
        }
        for table in TABLES:
            out[table] = self.backend.count(table)
        return out

    def gc(self, days: float = None) -> dict:
        """Garbage-collect: checkpoints of finished runs, old result rows.

        Checkpoints exist to resume interrupted runs, so any run whose
        registry status is terminal loses its checkpoints. When ``days``
        is given, result rows older than that many days are pruned too
        (result rows are content-addressed, so pruning only costs future
        cache hits — never correctness).
        """
        from repro.store.registry import RunRegistry

        removed_checkpoints = 0
        for record in RunRegistry(self).list():
            if record.status in ("completed", "failed"):
                removed_checkpoints += self.delete_checkpoints(record.run_id)
        pruned = 0
        if days is not None:
            cutoff = time.time() - days * 86400.0
            for table in ("sim_results", "hw_results", "trial_costs"):
                pruned += self.backend.prune(table, cutoff)
        self.backend.vacuum()
        return {"checkpoints_removed": removed_checkpoints, "rows_pruned": pruned}

    def export_json(self, path: str) -> dict:
        """Dump every table to a portable JSON file (machine-transferable)."""
        tables = {table: [list(row) for row in self.backend.items(table)]
                  for table in TABLES}
        counts = {table: len(rows) for table, rows in tables.items()}
        save_result_json(path, {"schema_version": SCHEMA_VERSION, "tables": tables})
        return counts

    def import_json(self, path: str, replace: bool = False) -> dict:
        """Merge an exported file into this store.

        Existing keys win by default (``replace=False``): content-equal
        keys hold content-equal payloads, so skipping duplicates is safe
        and keeps imports idempotent.
        """
        payload = load_result_json(path)
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise RuntimeError(
                f"export file {path!r} has schema v{version}, expected v{SCHEMA_VERSION}"
            )
        counts = {}
        for table in TABLES:
            rows = payload["tables"].get(table, [])
            counts[table] = self.backend.put_many(
                table, [(key, value) for key, value, _created in rows], replace=replace
            )
        return counts

    def close(self) -> None:
        """Release the backend (flushes and closes SQLite handles)."""
        self.backend.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_store(spec, token: str = None, max_retries: int = None) -> ResultStore:
    """Open a store: ``"memory"``/``":memory:"``, a SQLite file path, or
    an ``http(s)://`` experiment-service URL (see :mod:`repro.service`).

    ``token``/``max_retries`` configure the HTTP client for URL specs
    and are ignored otherwise.
    """
    return ResultStore(make_backend(spec, token=token, max_retries=max_retries))
