"""Persistent experiment store: durable results, runs, checkpoints.

The durable counterpart of the in-memory evaluation engine cache. One
subsystem, three pieces:

- :class:`ResultStore` (:func:`open_store`) — content-addressed
  simulator stats, hardware measurements and trial costs behind a
  pluggable backend (``memory`` | ``sqlite`` WAL file). The engine's
  ``store=`` argument reads/writes through it, so successive processes
  share cache hits.
- :class:`RunRegistry` — provenance records (run id, core, profile,
  seed, git describe, wall time, telemetry) for every campaign, tuner
  and CLI run against a store.
- checkpoints (:mod:`repro.store.checkpoint`) — stage-granular campaign
  state enabling ``validate --resume <run-id>``.
"""

from repro.store.backend import (
    SCHEMA_VERSION,
    TABLES,
    MemoryBackend,
    SqliteBackend,
    make_backend,
)
from repro.store.checkpoint import (
    SETUP_STAGE,
    irace_result_from_payload,
    irace_result_to_payload,
    stage_name,
)
from repro.store.registry import RunRecord, RunRegistry, git_describe
from repro.store.resultstore import ResultStore, open_store
from repro.store.serialize import (
    encode_key,
    perf_from_payload,
    perf_to_payload,
    stats_from_payload,
    stats_to_payload,
)

__all__ = [
    "ResultStore",
    "open_store",
    "RunRegistry",
    "RunRecord",
    "git_describe",
    "MemoryBackend",
    "SqliteBackend",
    "make_backend",
    "SCHEMA_VERSION",
    "TABLES",
    "SETUP_STAGE",
    "stage_name",
    "irace_result_to_payload",
    "irace_result_from_payload",
    "encode_key",
    "stats_to_payload",
    "stats_from_payload",
    "perf_to_payload",
    "perf_from_payload",
]
