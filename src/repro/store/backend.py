"""Storage backends for the persistent experiment store.

Two interchangeable backends implement the same five-table key/value
protocol (``sim_results``, ``hw_results``, ``trial_costs``, ``runs``,
``checkpoints`` — every row is ``(key, value, created)`` with JSON text
values):

- :class:`MemoryBackend` — plain dicts, process-local. The default when
  no ``--store`` path is given; it makes the :class:`ResultStore` layer
  testable without touching disk and gives an engine-without-store the
  exact same code path.
- :class:`SqliteBackend` — one SQLite file in WAL mode. WAL plus a busy
  timeout makes concurrent engines (separate processes, successive CLI
  runs, CI jobs sharing a cache artifact) safe: readers never block the
  writer and point lookups stay lock-free.

The schema carries an explicit version stamp; opening a store written
by an incompatible schema fails loudly instead of silently misreading
rows.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time

#: Bump when a table's row format changes incompatibly.
SCHEMA_VERSION = 1

#: Every logical table both backends expose.
TABLES = ("sim_results", "hw_results", "trial_costs", "runs", "checkpoints")

#: Default SQLite busy timeout, seconds. Applied both as the driver-level
#: connect timeout and as ``PRAGMA busy_timeout`` so lock waits are
#: handled inside SQLite before the Python-level retry loop ever fires.
BUSY_TIMEOUT = 30.0

#: Attempts the :func:`retry_busy` wrapper makes before giving up.
BUSY_RETRIES = 6

#: First backoff sleep of :func:`retry_busy`; doubles per attempt.
BUSY_BACKOFF = 0.05


def is_busy_error(exc: BaseException) -> bool:
    """True when ``exc`` is SQLite reporting lock contention.

    ``SQLITE_BUSY``/``SQLITE_LOCKED`` both surface through the Python
    driver as ``sqlite3.OperationalError`` with a message naming the
    locked database; anything else (corruption, syntax, missing table)
    is a real error and must propagate.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return "locked" in text or "busy" in text


def retry_busy(op, attempts: int = BUSY_RETRIES, backoff: float = BUSY_BACKOFF):
    """Run ``op()``; on ``SQLITE_BUSY`` retry with exponential backoff.

    The busy timeout already makes SQLite wait for locks, but a writer
    can still lose the race under sustained multi-process hammering
    (WAL checkpoints, ``BEGIN IMMEDIATE`` upgrades). This wrapper is the
    second line of defence: bounded retries with exponential backoff,
    re-raising the final error so persistent contention stays loud.
    """
    for attempt in range(attempts):
        try:
            return op()
        except sqlite3.OperationalError as exc:
            if not is_busy_error(exc) or attempt == attempts - 1:
                raise
            time.sleep(backoff * (2 ** attempt))


def connect_sqlite(path: str, busy_timeout: float = BUSY_TIMEOUT) -> sqlite3.Connection:
    """Open ``path`` the way every writer in this project must: WAL mode,
    ``NORMAL`` synchronous, an explicit busy timeout, autocommit
    (``isolation_level=None``) so transactions are always explicit."""
    conn = sqlite3.connect(
        path, timeout=busy_timeout, check_same_thread=False, isolation_level=None
    )
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
    return conn


class MemoryBackend:
    """In-process backend: one dict per table, values kept as text."""

    kind = "memory"
    path = None

    def __init__(self) -> None:
        self._tables = {name: {} for name in TABLES}
        self.schema_version = SCHEMA_VERSION

    def get(self, table: str, key: str):
        row = self._tables[table].get(key)
        return row[0] if row is not None else None

    def get_many(self, table: str, keys) -> dict:
        """``{key: value_or_None}`` for many keys in one call."""
        rows = self._tables[table]
        return {key: (rows[key][0] if key in rows else None) for key in keys}

    def put(self, table: str, key: str, value: str, replace: bool = True) -> bool:
        if not replace and key in self._tables[table]:
            return False
        self._tables[table][key] = (value, time.time())
        return True

    def put_many(self, table: str, items, replace: bool = True) -> int:
        return sum(self.put(table, key, value, replace=replace) for key, value in items)

    def delete(self, table: str, key: str) -> bool:
        return self._tables[table].pop(key, None) is not None

    def items(self, table: str):
        """All rows of ``table`` as ``(key, value, created)`` tuples."""
        return [(k, v, c) for k, (v, c) in sorted(self._tables[table].items())]

    def count(self, table: str) -> int:
        return len(self._tables[table])

    def prune(self, table: str, older_than: float) -> int:
        doomed = [k for k, (_v, c) in self._tables[table].items() if c < older_than]
        for key in doomed:
            del self._tables[table][key]
        return len(doomed)

    def size_bytes(self) -> int:
        return sum(
            len(k) + len(v)
            for table in self._tables.values()
            for k, (v, _c) in table.items()
        )

    def vacuum(self) -> None:
        pass

    def close(self) -> None:
        pass


class SqliteBackend:
    """SQLite-file backend (WAL mode, concurrency-safe).

    One connection per backend instance, guarded by a lock so a single
    engine driving parallel workers stays thread-safe; cross-process
    safety comes from WAL + ``busy_timeout`` + the :func:`retry_busy`
    wrapper around every statement (fabric workers hammer one store
    file from many processes at once).
    """

    kind = "sqlite"

    def __init__(self, path: str, busy_timeout: float = BUSY_TIMEOUT) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self.busy_timeout = busy_timeout
        self._conn = connect_sqlite(self.path, busy_timeout=busy_timeout)
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock:
            retry_busy(self._create_tables)

    def _create_tables(self) -> None:
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS store_meta"
            " (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO store_meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            row = (str(SCHEMA_VERSION),)
        self.schema_version = int(row[0])
        if self.schema_version != SCHEMA_VERSION:
            raise RuntimeError(
                f"store {self.path!r} has schema v{self.schema_version}, "
                f"this code speaks v{SCHEMA_VERSION}; export from the old "
                "code and import here"
            )
        for table in TABLES:
            self._conn.execute(
                f"CREATE TABLE IF NOT EXISTS {table} (key TEXT PRIMARY KEY,"
                " value TEXT NOT NULL, created REAL NOT NULL)"
            )

    def get(self, table: str, key: str):
        with self._lock:
            row = retry_busy(lambda: self._conn.execute(
                f"SELECT value FROM {table} WHERE key = ?", (key,)
            ).fetchone())
        return row[0] if row is not None else None

    def get_many(self, table: str, keys) -> dict:
        """``{key: value_or_None}`` for many keys, one query per 500."""
        keys = list(keys)
        out = {key: None for key in keys}
        with self._lock:
            for start in range(0, len(keys), 500):
                chunk = keys[start:start + 500]
                marks = ",".join("?" for _ in chunk)
                rows = retry_busy(lambda c=chunk, m=marks: list(
                    self._conn.execute(
                        f"SELECT key, value FROM {table} WHERE key IN ({m})", c
                    )))
                out.update(rows)
        return out

    def put(self, table: str, key: str, value: str, replace: bool = True) -> bool:
        return self.put_many(table, [(key, value)], replace=replace) == 1

    def put_many(self, table: str, items, replace: bool = True) -> int:
        verb = "INSERT OR REPLACE" if replace else "INSERT OR IGNORE"
        now = time.time()
        rows = [(key, value, now) for key, value in items]
        if not rows:
            return 0
        with self._lock:
            return retry_busy(lambda: self._conn.executemany(
                f"{verb} INTO {table} VALUES (?, ?, ?)", rows
            ).rowcount)

    def delete(self, table: str, key: str) -> bool:
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                f"DELETE FROM {table} WHERE key = ?", (key,)
            ).rowcount) > 0

    def items(self, table: str):
        with self._lock:
            return retry_busy(lambda: list(
                self._conn.execute(
                    f"SELECT key, value, created FROM {table} ORDER BY key"
                )
            ))

    def count(self, table: str) -> int:
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0])

    def prune(self, table: str, older_than: float) -> int:
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                f"DELETE FROM {table} WHERE created < ?", (older_than,)
            ).rowcount)

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def vacuum(self) -> None:
        with self._lock:
            retry_busy(lambda: self._conn.execute("VACUUM"))

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def make_backend(spec, token: str = None, max_retries: int = None):
    """``spec`` to backend: ``None``/``"memory"``/``":memory:"``, an
    ``http(s)://`` service URL, or a SQLite file path.

    ``token`` and ``max_retries`` only apply to URL specs (auth and
    transient-failure budget of the HTTP client); they are ignored for
    local backends so call sites can forward them unconditionally.
    """
    if spec is None or spec in ("memory", ":memory:"):
        return MemoryBackend()
    if isinstance(spec, str) and spec.startswith(("http://", "https://")):
        # Local import: the service client is pure stdlib but lives in a
        # package that imports fabric modules; keep the store importable
        # on its own.
        from repro.service.client import DEFAULT_MAX_RETRIES, HttpBackend

        return HttpBackend(
            spec, token=token,
            max_retries=DEFAULT_MAX_RETRIES if max_retries is None else max_retries,
        )
    return SqliteBackend(spec)
