"""Run registry: provenance for every campaign, tuner and CLI run.

Each run that touches a store gets a :class:`RunRecord` — what was run
(kind, core, profile, seed, free-form params), against which code
(``git describe``), when, for how long, with what outcome, and the
engine telemetry snapshot at the end. The registry is what makes a
store auditable ("which runs produced these rows?") and what makes
``--resume <run-id>`` possible: the record carries everything needed to
re-enter the run deterministically.
"""

from __future__ import annotations

import dataclasses
import subprocess
import time
import uuid
from dataclasses import dataclass, field

from repro.store.serialize import dumps, loads

#: Run states. "running" rows belong to live or interrupted-without-
#: cleanup processes; "interrupted" rows were cleanly marked resumable.
RUN_STATUSES = ("running", "interrupted", "completed", "failed")


def git_describe() -> str:
    """Best-effort code identity of the running checkout."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
        described = out.stdout.strip()
        return described if out.returncode == 0 and described else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass
class RunRecord:
    """One registered run."""

    run_id: str
    kind: str
    core: str = None
    profile: str = None
    seed: int = None
    params: dict = field(default_factory=dict)
    git: str = "unknown"
    started: float = 0.0
    finished: float = None
    wall_seconds: float = None
    status: str = "running"
    telemetry: dict = None

    def summary(self) -> str:
        parts = [f"{self.run_id} [{self.kind}]", self.status]
        if self.core:
            parts.append(f"core={self.core}")
        if self.profile:
            parts.append(f"profile={self.profile}")
        if self.wall_seconds is not None:
            parts.append(f"{self.wall_seconds:.1f}s")
        return " ".join(parts)


class RunRegistry:
    """Query/record runs in one :class:`~repro.store.resultstore.ResultStore`."""

    def __init__(self, store) -> None:
        self.store = store

    # ------------------------------------------------------------------
    def create(
        self,
        kind: str,
        core: str = None,
        profile: str = None,
        seed: int = None,
        params: dict = None,
        run_id: str = None,
    ) -> RunRecord:
        """Register a new run (status "running"); returns its record."""
        record = RunRecord(
            run_id=run_id or f"{kind}-{uuid.uuid4().hex[:8]}",
            kind=kind,
            core=core,
            profile=profile,
            seed=seed,
            params=dict(params or {}),
            git=git_describe(),
            started=time.time(),
        )
        if self.store.backend.get("runs", record.run_id) is not None:
            raise ValueError(f"run id {record.run_id!r} already registered")
        self.save(record)
        return record

    def save(self, record: RunRecord) -> None:
        self.store.backend.put("runs", record.run_id, dumps(dataclasses.asdict(record)))

    def get(self, run_id: str) -> RunRecord:
        text = self.store.backend.get("runs", run_id)
        if text is None:
            raise KeyError(f"unknown run id {run_id!r}")
        return RunRecord(**loads(text))

    def finish(
        self, run_id: str, status: str = "completed", telemetry: dict = None
    ) -> RunRecord:
        """Mark a run terminal (or "interrupted") with its telemetry."""
        if status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {status!r}; use one of {RUN_STATUSES}")
        record = self.get(run_id)
        record.finished = time.time()
        record.wall_seconds = max(0.0, record.finished - record.started)
        record.status = status
        if telemetry is not None:
            record.telemetry = dict(telemetry)
        self.save(record)
        return record

    def reopen(self, run_id: str) -> RunRecord:
        """Mark a resumable run as running again (``--resume`` path).

        ``started`` is reset so ``wall_seconds`` measures the resumed
        session's work, not the idle days between kill and resume.
        """
        record = self.get(run_id)
        record.status = "running"
        record.started = time.time()
        record.finished = None
        record.wall_seconds = None
        self.save(record)
        return record

    def list(self, kind: str = None, status: str = None) -> list:
        """All matching records, most recently started first."""
        records = [
            RunRecord(**loads(text))
            for _key, text, _created in self.store.backend.items("runs")
        ]
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if status is not None:
            records = [r for r in records if r.status == status]
        records.sort(key=lambda r: r.started, reverse=True)
        return records

    def latest(self, kind: str = None) -> RunRecord:
        records = self.list(kind=kind)
        if not records:
            raise KeyError(f"no registered runs{f' of kind {kind!r}' if kind else ''}")
        return records[0]
