"""Row (de)serialisation for the persistent experiment store.

The store keeps three result payload shapes: simulator statistics
(:class:`~repro.core.stats.SimStats`, with nested branch/cache counter
dataclasses), hardware measurements
(:class:`~repro.hardware.perf.PerfResult`) and scalar trial costs.
Payloads are canonical JSON (sorted keys, no whitespace) so identical
results always serialise to identical bytes — the property the
byte-identical resume guarantee rests on.

Keys stay the engine's own content-addressed tuples
(:mod:`repro.engine.keys`); :func:`encode_key` renders them to text.
The tuples contain only ``str``/``int``/``float``/``bool`` leaves, whose
``repr`` is deterministic across processes and Python sessions, so the
text form is as content-addressed as the tuple.
"""

from __future__ import annotations

import dataclasses
import json

from repro.branch.unit import BranchStats
from repro.core.stats import SimStats
from repro.hardware.perf import PerfResult
from repro.memory.cache import CacheStats


def encode_key(key) -> str:
    """Deterministic text form of an engine cache-key tuple.

    Pass-through for strings: fabric task keys travel pre-rendered (the
    queue stores text), and re-encoding them would double-quote the
    address out from under the result.
    """
    if isinstance(key, str):
        return key
    return repr(key)


def dumps(payload) -> str:
    """Canonical JSON text: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def loads(text: str):
    return json.loads(text)


# ----------------------------------------------------------------------
# Simulator statistics
# ----------------------------------------------------------------------
def stats_to_payload(stats: SimStats) -> dict:
    return dataclasses.asdict(stats)


def stats_from_payload(payload: dict) -> SimStats:
    d = dict(payload)
    d["branch"] = BranchStats(**d["branch"])
    for level in ("l1i", "l1d", "l2"):
        d[level] = CacheStats(**d[level])
    return SimStats(**d)


# ----------------------------------------------------------------------
# Hardware measurements
# ----------------------------------------------------------------------
def perf_to_payload(result: PerfResult) -> dict:
    return dataclasses.asdict(result)


def perf_from_payload(payload: dict) -> PerfResult:
    return PerfResult(
        workload=payload["workload"],
        core=payload["core"],
        counters=dict(payload["counters"]),
    )
