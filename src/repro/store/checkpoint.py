"""Stage-granular checkpoints for resumable campaigns.

A checkpoint is one JSON payload per completed unit of work — the
campaign's lmbench/untuned setup, then each tuning stage — written to
the store under ``(run_id, stage)``. Resume loads completed stages
verbatim (bit-identical to the uninterrupted run, because payloads are
canonical JSON of exact Python floats) and re-enters the first missing
stage; trials inside that stage then replay from the store's
content-addressed results, so even a mid-stage kill loses almost
nothing.

This module owns the generic payload plumbing plus the
:class:`~repro.tuning.irace.IraceResult` (de)serialisers; the
campaign-shaped payloads live with
:class:`~repro.validation.campaign.ValidationCampaign`, which knows its
own dataclasses.
"""

from __future__ import annotations

import dataclasses

from repro.tuning.irace import IraceIteration, IraceResult

#: Checkpoint name of the campaign's pre-stage work (lmbench + untuned).
SETUP_STAGE = "setup"


def stage_name(stage: int) -> str:
    return f"stage{stage}"


# ----------------------------------------------------------------------
# IraceResult payloads
# ----------------------------------------------------------------------
def irace_result_to_payload(result: IraceResult) -> dict:
    return dataclasses.asdict(result)


def irace_result_from_payload(payload: dict) -> IraceResult:
    d = dict(payload)
    d["history"] = [IraceIteration(**it) for it in d.get("history", [])]
    return IraceResult(**d)
