"""Functional interpreter producing dynamic traces.

This is the tracing half of the DynamoRIO substitution: it "executes" a
:class:`~repro.frontend.program.Program` by walking its static
instructions, consulting the behavioural patterns for memory addresses,
branch outcomes and indirect targets, and emitting one
:class:`~repro.trace.record.DynInst` per dynamic instruction.

Control-flow semantics:

- conditional branches consult their :class:`BranchPattern`; taken
  branches redirect to their static ``branch_target``;
- unconditional jumps always redirect;
- indirect branches take a target index from their :class:`TargetPattern`;
- calls push the return index on an interpreter-maintained call stack,
  returns pop it (a return with an empty stack falls through);
- falling past the last instruction completes one *iteration* and
  restarts at index 0.
"""

from __future__ import annotations

from repro.frontend.program import Program
from repro.isa.opclasses import OpClass
from repro.trace.record import DynInst, Trace

_OPCLASS_SHIFT = 27

_BRANCH = int(OpClass.BRANCH)
_JUMP = int(OpClass.JUMP)
_IBRANCH = int(OpClass.IBRANCH)
_CALL = int(OpClass.CALL)
_RET = int(OpClass.RET)
_MEM_LO = int(OpClass.LOAD)
_MEM_HI = int(OpClass.STP)

#: Dispatch kinds for the precomputed per-static-instruction table.
_KIND_PLAIN = 0
_KIND_MEM = 1
_KIND_BRANCH = 2
_KIND_JUMP = 3
_KIND_IBRANCH = 4
_KIND_CALL = 5
_KIND_RET = 6


class Interpreter:
    """Executes programs into dynamic instruction traces."""

    def __init__(self, max_instructions: int = 1_000_000) -> None:
        #: Hard safety cap on emitted dynamic instructions per trace.
        self.max_instructions = max_instructions

    def run(self, program: Program, iterations: int = 1) -> Trace:
        """Trace ``iterations`` passes over ``program``.

        Tracing also stops at :attr:`max_instructions`, which both bounds
        runaway control flow and lets callers cap trace length directly.
        """
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        program.reset_patterns()
        insts = program.insts
        pcs = program.pcs
        n = len(insts)
        limit = self.max_instructions

        # Per-static-instruction dispatch table, computed once per run:
        # (word, kind, pattern callable, static branch target). The
        # dynamic loop — which typically revisits each static
        # instruction many times — then chases no attributes at all.
        table = []
        for inst in insts:
            word = inst.word
            opclass = word >> _OPCLASS_SHIFT
            if _MEM_LO <= opclass <= _MEM_HI:
                entry = (word, _KIND_MEM, inst.addr_pattern.next_addr, 0)
            elif opclass == _BRANCH:
                entry = (word, _KIND_BRANCH, inst.branch_pattern.next_taken,
                         inst.branch_target)
            elif opclass == _JUMP:
                entry = (word, _KIND_JUMP, None, inst.branch_target)
            elif opclass == _IBRANCH:
                entry = (word, _KIND_IBRANCH, inst.target_pattern.next_target, 0)
            elif opclass == _CALL:
                entry = (word, _KIND_CALL, None, inst.branch_target)
            elif opclass == _RET:
                entry = (word, _KIND_RET, None, 0)
            else:
                entry = (word, _KIND_PLAIN, None, 0)
            table.append(entry)

        records: list = []
        append = records.append
        call_stack: list = []
        index = 0
        done_iterations = 0
        emitted = 0

        while done_iterations < iterations and emitted < limit:
            word, kind, action, branch_target = table[index]
            pc = pcs[index]
            addr = 0
            taken = False
            target_pc = 0
            next_index = index + 1

            if kind == _KIND_MEM:
                addr = action()
            elif kind == _KIND_PLAIN:
                pass
            elif kind == _KIND_BRANCH:
                taken = action()
                if taken:
                    next_index = branch_target
            elif kind == _KIND_JUMP:
                taken = True
                next_index = branch_target
            elif kind == _KIND_IBRANCH:
                taken = True
                next_index = action()
            elif kind == _KIND_CALL:
                taken = True
                call_stack.append(index + 1)
                next_index = branch_target
            else:  # _KIND_RET
                if call_stack:
                    taken = True
                    next_index = call_stack.pop()

            if taken:
                target_pc = pcs[next_index] if next_index < n else pcs[0]

            append(DynInst(pc, word, addr, taken, target_pc))
            emitted += 1

            if next_index >= n:
                done_iterations += 1
                index = 0
                call_stack.clear()
            else:
                index = next_index

        return Trace(records, name=program.name)


def trace_program(program: Program, iterations: int = 1, max_instructions: int = 1_000_000) -> Trace:
    """Convenience wrapper: trace ``program`` with a fresh interpreter."""
    return Interpreter(max_instructions=max_instructions).run(program, iterations=iterations)
