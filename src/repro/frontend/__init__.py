"""Program front-end: the reproduction's DynamoRIO stand-in.

The paper instruments unmodified AArch64 binaries with DynamoRIO to record
dynamic instruction traces. Here, workloads are synthetic programs —
static instruction sequences whose memory addresses, branch outcomes and
indirect targets are driven by deterministic pattern generators — and the
:class:`~repro.frontend.interpreter.Interpreter` functionally executes them
to produce the same kind of dynamic record stream (pc, word, address,
branch outcome) that DBI-based tracing yields.
"""

from repro.frontend.program import (
    AddrPattern,
    BranchPattern,
    ChaseAddr,
    CycleTargets,
    FixedAddr,
    ListAddr,
    NeverTaken,
    AlwaysTaken,
    PatternTaken,
    Program,
    RandomAddr,
    RandomTaken,
    RandomTargets,
    SequentialAddr,
    StaticInst,
    TargetPattern,
)
from repro.frontend.builder import ProgramBuilder
from repro.frontend.interpreter import Interpreter, trace_program

__all__ = [
    "AddrPattern",
    "BranchPattern",
    "TargetPattern",
    "FixedAddr",
    "SequentialAddr",
    "RandomAddr",
    "ChaseAddr",
    "ListAddr",
    "AlwaysTaken",
    "NeverTaken",
    "PatternTaken",
    "RandomTaken",
    "CycleTargets",
    "RandomTargets",
    "StaticInst",
    "Program",
    "ProgramBuilder",
    "Interpreter",
    "trace_program",
]
