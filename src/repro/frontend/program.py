"""Static program representation with behavioural patterns.

A :class:`Program` is a list of :class:`StaticInst` — an encoded
instruction word plus the *behavioural annotations* the interpreter needs
to produce a dynamic trace without a full dataflow interpreter:

- memory instructions carry an :class:`AddrPattern` yielding effective
  addresses (sequential, random-in-window, pointer-chase, ...);
- conditional branches carry a :class:`BranchPattern` yielding outcomes;
- indirect branches carry a :class:`TargetPattern` yielding targets.

Patterns are restartable (``reset``) so the same program can be traced
multiple times deterministically.
"""

from __future__ import annotations

import random

from repro.isa.registers import NO_REG


class AddrPattern:
    """Yields the effective address for successive executions."""

    def reset(self) -> None:
        """Restart the pattern for a fresh trace."""

    def next_addr(self) -> int:
        raise NotImplementedError


class FixedAddr(AddrPattern):
    """Every execution touches the same address."""

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def next_addr(self) -> int:
        return self.addr


class SequentialAddr(AddrPattern):
    """Strided walk over a window, wrapping at the end.

    This is the streaming-array access of bandwidth and cache-sweep
    kernels: ``base, base+stride, ...`` wrapping modulo ``window``.
    """

    def __init__(self, base: int, stride: int, window: int) -> None:
        if stride == 0:
            raise ValueError("stride must be non-zero")
        if window <= 0:
            raise ValueError("window must be positive")
        self.base = base
        self.stride = stride
        self.window = window
        self._offset = 0

    def reset(self) -> None:
        self._offset = 0

    def next_addr(self) -> int:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.window
        return addr


class RandomAddr(AddrPattern):
    """Uniformly random aligned addresses within a window."""

    def __init__(self, base: int, window: int, seed: int, align: int = 8) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.base = base
        self.window = window
        self.seed = seed
        self.align = align
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def next_addr(self) -> int:
        slots = max(1, self.window // self.align)
        return self.base + self._rng.randrange(slots) * self.align


class ChaseAddr(AddrPattern):
    """Pointer-chase over a random permutation of cache lines.

    The lmbench ``lat_mem_rd`` access pattern: each access depends on the
    previous one (enforced in programs via a register dependence) and the
    permutation defeats prefetching, exposing raw load-to-use latency.
    """

    def __init__(self, base: int, lines: int, seed: int, line_size: int = 64) -> None:
        if lines <= 0:
            raise ValueError("lines must be positive")
        self.base = base
        self.lines = lines
        self.line_size = line_size
        rng = random.Random(seed)
        order = list(range(lines))
        rng.shuffle(order)
        self._order = order
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def next_addr(self) -> int:
        line = self._order[self._pos]
        self._pos = (self._pos + 1) % self.lines
        return self.base + line * self.line_size


class ListAddr(AddrPattern):
    """Cycles through an explicit address list (conflict-miss kernels)."""

    def __init__(self, addrs) -> None:
        addrs = list(addrs)
        if not addrs:
            raise ValueError("address list must be non-empty")
        self.addrs = addrs
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def next_addr(self) -> int:
        addr = self.addrs[self._pos]
        self._pos = (self._pos + 1) % len(self.addrs)
        return addr


class BranchPattern:
    """Yields taken/not-taken outcomes for successive executions."""

    def reset(self) -> None:
        """Restart the pattern for a fresh trace."""

    def next_taken(self) -> bool:
        raise NotImplementedError


class AlwaysTaken(BranchPattern):
    def next_taken(self) -> bool:
        return True


class NeverTaken(BranchPattern):
    def next_taken(self) -> bool:
        return False


class PatternTaken(BranchPattern):
    """Cycles a fixed outcome string, e.g. ``"TTNT"`` (easy to predict)."""

    def __init__(self, pattern: str) -> None:
        if not pattern or set(pattern) - {"T", "N"}:
            raise ValueError("pattern must be a non-empty string of 'T'/'N'")
        self.pattern = pattern
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def next_taken(self) -> bool:
        taken = self.pattern[self._pos] == "T"
        self._pos = (self._pos + 1) % len(self.pattern)
        return taken


class RandomTaken(BranchPattern):
    """Bernoulli outcomes — the hard-to-predict case."""

    def __init__(self, taken_prob: float, seed: int) -> None:
        if not 0.0 <= taken_prob <= 1.0:
            raise ValueError("taken_prob must be in [0, 1]")
        self.taken_prob = taken_prob
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def next_taken(self) -> bool:
        return self._rng.random() < self.taken_prob


class TargetPattern:
    """Yields static-index targets for indirect branches."""

    def reset(self) -> None:
        """Restart the pattern for a fresh trace."""

    def next_target(self) -> int:
        raise NotImplementedError


class CycleTargets(TargetPattern):
    """Round-robins a target list (regular switch dispatch)."""

    def __init__(self, targets) -> None:
        targets = list(targets)
        if not targets:
            raise ValueError("target list must be non-empty")
        self.targets = targets
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def next_target(self) -> int:
        target = self.targets[self._pos]
        self._pos = (self._pos + 1) % len(self.targets)
        return target


class RandomTargets(TargetPattern):
    """Uniformly random choice among targets (data-dependent dispatch)."""

    def __init__(self, targets, seed: int) -> None:
        targets = list(targets)
        if not targets:
            raise ValueError("target list must be non-empty")
        self.targets = targets
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def next_target(self) -> int:
        return self._rng.choice(self.targets)


class StaticInst:
    """One static instruction: encoding plus behavioural annotations."""

    __slots__ = ("word", "addr_pattern", "branch_pattern", "branch_target", "target_pattern")

    def __init__(
        self,
        word: int,
        addr_pattern: AddrPattern = None,
        branch_pattern: BranchPattern = None,
        branch_target: int = NO_REG,
        target_pattern: TargetPattern = None,
    ) -> None:
        self.word = word
        self.addr_pattern = addr_pattern
        self.branch_pattern = branch_pattern
        #: Static index of the direct-branch target within the program.
        self.branch_target = branch_target
        self.target_pattern = target_pattern


class Program:
    """A static instruction sequence placed at ``base_pc``.

    By default ``pc`` of static index ``i`` is ``base_pc + 4 * i``; an
    explicit ``pcs`` list overrides the layout so kernels can place code
    blocks far apart (instruction-cache capacity/conflict stress).
    Execution starts at index 0; falling off the end completes one
    *iteration* and restarts at index 0 (the implicit outer loop every
    kernel has).
    """

    def __init__(
        self,
        insts: list,
        name: str = "program",
        base_pc: int = 0x40_0000,
        pcs: list = None,
    ) -> None:
        if not insts:
            raise ValueError("program must contain at least one instruction")
        self.insts = insts
        self.name = name
        self.base_pc = base_pc
        if pcs is None:
            pcs = [base_pc + 4 * i for i in range(len(insts))]
        else:
            if len(pcs) != len(insts):
                raise ValueError("pcs must parallel insts")
            if any(b <= a for a, b in zip(pcs, pcs[1:])):
                raise ValueError("pcs must be strictly increasing")
        self.pcs = pcs
        self._validate_targets()

    def _validate_targets(self) -> None:
        n = len(self.insts)
        for idx, inst in enumerate(self.insts):
            if inst.branch_target != NO_REG and not 0 <= inst.branch_target < n:
                raise ValueError(
                    f"instruction {idx}: branch target {inst.branch_target} outside program"
                )
            if inst.target_pattern is not None:
                for t in getattr(inst.target_pattern, "targets", []):
                    if not 0 <= t < n:
                        raise ValueError(
                            f"instruction {idx}: indirect target {t} outside program"
                        )

    def pc_of(self, index: int) -> int:
        return self.pcs[index]

    def reset_patterns(self) -> None:
        for inst in self.insts:
            if inst.addr_pattern is not None:
                inst.addr_pattern.reset()
            if inst.branch_pattern is not None:
                inst.branch_pattern.reset()
            if inst.target_pattern is not None:
                inst.target_pattern.reset()

    def __len__(self) -> int:
        return len(self.insts)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.insts)} static instructions)"
