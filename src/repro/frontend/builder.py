"""Fluent builder for synthetic programs.

Micro-benchmark generators compose kernels from a small vocabulary:
ALU ops, FP ops, loads/stores with a pattern, and branches. The builder
assigns encodings, resolves labels to static indices, and wires the
implicit loop structure.
"""

from __future__ import annotations

from repro.frontend.program import (
    AddrPattern,
    AlwaysTaken,
    BranchPattern,
    Program,
    StaticInst,
    TargetPattern,
)
from repro.isa.encoding import encode
from repro.isa.opclasses import OpClass
from repro.isa.registers import LINK_REG, NO_REG


class ProgramBuilder:
    """Accumulates instructions and resolves labels into a Program."""

    def __init__(self, name: str = "program", base_pc: int = 0x40_0000) -> None:
        self.name = name
        self.base_pc = base_pc
        self._insts: list = []
        self._labels: dict = {}
        self._fixups: list = []
        self._gaps: list = []
        self._gap_bytes = 0

    # ------------------------------------------------------------------
    # Label management
    # ------------------------------------------------------------------
    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return self

    def here(self) -> int:
        """Current static index (next instruction's position)."""
        return len(self._insts)

    def org_gap(self, nbytes: int) -> "ProgramBuilder":
        """Leave an address gap before the next instruction.

        Lets kernels place code blocks at controlled distances for
        instruction-cache capacity/conflict stress; the gap bytes are
        never executed.
        """
        if nbytes <= 0 or nbytes % 4:
            raise ValueError("gap must be a positive multiple of 4")
        self._gap_bytes += nbytes
        return self

    # ------------------------------------------------------------------
    # Plain operations
    # ------------------------------------------------------------------
    def _append(self, inst: StaticInst) -> None:
        self._gaps.append(self._gap_bytes)
        self._insts.append(inst)

    def op(
        self,
        opclass: OpClass,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        imm: int = 0,
    ) -> "ProgramBuilder":
        """Append a non-memory, non-branch operation."""
        self._append(StaticInst(encode(opclass, dst, src1, src2, imm)))
        return self

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self.op(OpClass.NOP)
        return self

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------
    def load(
        self,
        dst: int,
        pattern: AddrPattern,
        base: int = NO_REG,
        pair: bool = False,
    ) -> "ProgramBuilder":
        """Append a load whose addresses come from ``pattern``.

        ``base`` names the address-base register, which creates a RAW
        dependence for pointer-chase kernels when it equals the previous
        load's destination.
        """
        opclass = OpClass.LDP if pair else OpClass.LOAD
        word = encode(opclass, dst, base, NO_REG)
        self._append(StaticInst(word, addr_pattern=pattern))
        return self

    def store(
        self,
        data: int,
        pattern: AddrPattern,
        base: int = NO_REG,
        pair: bool = False,
    ) -> "ProgramBuilder":
        """Append a store of register ``data`` at ``pattern`` addresses."""
        opclass = OpClass.STP if pair else OpClass.STORE
        word = encode(opclass, NO_REG, base, data)
        self._append(StaticInst(word, addr_pattern=pattern))
        return self

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def branch(
        self,
        target: str,
        pattern: BranchPattern,
        cond_reg: int = NO_REG,
    ) -> "ProgramBuilder":
        """Append a conditional direct branch to label ``target``."""
        word = encode(OpClass.BRANCH, NO_REG, cond_reg, NO_REG)
        inst = StaticInst(word, branch_pattern=pattern)
        self._fixups.append((len(self._insts), target))
        self._append(inst)
        return self

    def jump(self, target: str) -> "ProgramBuilder":
        """Append an unconditional direct branch to label ``target``."""
        word = encode(OpClass.JUMP)
        inst = StaticInst(word, branch_pattern=AlwaysTaken())
        self._fixups.append((len(self._insts), target))
        self._append(inst)
        return self

    def indirect(self, pattern: TargetPattern, src: int = NO_REG) -> "ProgramBuilder":
        """Append an indirect branch whose targets come from ``pattern``."""
        word = encode(OpClass.IBRANCH, NO_REG, src, NO_REG)
        self._append(StaticInst(word, branch_pattern=AlwaysTaken(), target_pattern=pattern))
        return self

    def call(self, target: str) -> "ProgramBuilder":
        """Append a direct call to label ``target``."""
        word = encode(OpClass.CALL, LINK_REG)
        inst = StaticInst(word, branch_pattern=AlwaysTaken())
        self._fixups.append((len(self._insts), target))
        self._append(inst)
        return self

    def ret(self) -> "ProgramBuilder":
        """Append a function return (target from the call stack)."""
        word = encode(OpClass.RET, NO_REG, LINK_REG)
        self._append(StaticInst(word, branch_pattern=AlwaysTaken()))
        return self

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and produce the Program."""
        for index, label in self._fixups:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r}")
            self._insts[index].branch_target = self._labels[label]
        pcs = None
        if self._gap_bytes:
            pcs = [self.base_pc + 4 * i + gap for i, gap in enumerate(self._gaps)]
        return Program(self._insts, name=self.name, base_pc=self.base_pc, pcs=pcs)
