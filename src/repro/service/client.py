"""Client side of the experiment service: retry, queue, store.

Three layers, each thin:

- :class:`ServiceClient` — the transport. Persistent per-thread
  ``http.client`` connections (keep-alive: one TCP setup amortised
  over a worker's whole session instead of paid per request) plus the
  protocol obligations (bearer auth, wire-version header, one
  handshake before the first real request, zlib-deflated bodies above
  the size threshold) and a retry loop with exponential backoff and
  jitter. Transient trouble — connection refused (server not up yet,
  or restarting mid-campaign), timeouts, a stale keep-alive socket,
  5xx, 429 backpressure (whose ``Retry-After`` is honoured as a floor)
  — is retried up to ``max_retries`` times; protocol errors (400, 401,
  404, 426) raise :class:`ServiceError` immediately, because retrying
  a wrong token or a version mismatch cannot help. The client counts
  its own wire traffic (requests, bytes each way, retries, compressed
  bodies); workers fold those counters into their heartbeat telemetry
  so ``repro status`` can show what the fleet costs on the wire.
- :class:`HttpQueue` — :class:`~repro.fabric.api.TaskQueue` over the
  wire. Byte-for-byte the same contract as the SQLite queue (the
  conformance suite in ``tests/test_fabric_queue.py`` runs against
  both), so :class:`~repro.fabric.worker.FabricWorker` and
  :class:`~repro.engine.executors.FabricExecutor` cannot tell the
  transports apart.
- :class:`HttpBackend` — the store backend protocol over the wire.
  ``open_store("http://host:port")`` builds a full
  :class:`~repro.store.resultstore.ResultStore` on top of it, which is
  what lets a remote worker run with no database file: every result
  write lands in the server's SQLite file, every read comes from it.

Timekeeping note: the server's clock is authoritative for leases. A
remote ``leases()`` reports expiry in *server* time alongside the
server's *now*, so remaining-time arithmetic stays skew-free.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
import zlib
from urllib.parse import urlsplit

from repro.fabric.api import TaskQueue
from repro.fabric.queue import DEFAULT_LEASE, Lease, Task
from repro.service.protocol import (
    API_PREFIX,
    COMPRESS_ENCODING,
    COMPRESS_THRESHOLD,
    WIRE_HEADER,
    WIRE_VERSION,
    redact,
    resolve_token,
)

#: Attempts before a transient failure is given up on (initial
#: connection and mid-campaign alike). Overridable per client and via
#: ``repro worker --max-retries``.
DEFAULT_MAX_RETRIES = 8

#: First backoff sleep, seconds; doubles per attempt up to the cap.
DEFAULT_BACKOFF = 0.2

#: Backoff ceiling, seconds.
DEFAULT_MAX_BACKOFF = 10.0

#: Per-request socket timeout, seconds.
DEFAULT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """A service request failed for good (non-transient, or retries spent).

    ``status`` carries the HTTP status when one was received, else
    ``None`` (pure transport failure).
    """

    def __init__(self, message: str, status: int = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """HTTP transport to one experiment service, with retries.

    Parameters
    ----------
    url:
        Service base URL (``http://host:port``); trailing slash and an
        accidental ``/api/v1`` suffix are tolerated.
    token:
        Bearer token; falls back to the ``REPRO_TOKEN`` environment
        variable. Without one, requests carry no credentials and the
        server answers 401.
    timeout:
        Per-request socket timeout, seconds.
    max_retries:
        Transient-failure budget per request (0 = fail on first error).
    backoff / max_backoff:
        Exponential backoff base and ceiling, seconds. Actual sleeps
        are jittered (×0.5..1.5) so a restarted fleet does not stampede
        the server in lockstep; a 429's ``Retry-After`` is a floor.
    """

    def __init__(
        self,
        url: str,
        token: str = None,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
    ) -> None:
        base = url.rstrip("/")
        if base.endswith(API_PREFIX):
            base = base[: -len(API_PREFIX)]
        self.url = base
        self.token = resolve_token(token)
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._rng = random.Random()
        self._handshaken = False
        parts = urlsplit(base)
        self._scheme = parts.scheme or "http"
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or (443 if self._scheme == "https" else 80)
        # One persistent connection per thread: the client is shared by
        # a worker's main loop, its heartbeat thread and the pipelining
        # dispatcher, and http.client connections are not thread-safe.
        self._local = threading.local()
        self._telemetry_lock = threading.Lock()
        self._counters = {"requests": 0, "bytes_out": 0, "bytes_in": 0,
                          "retries": 0, "compressed_bodies": 0}

    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """Wire-traffic counters since construction, ``wire_``-prefixed.

        ``wire_requests`` / ``wire_bytes_out`` / ``wire_bytes_in`` /
        ``wire_retries`` / ``wire_compressed_bodies`` — the shape
        workers merge straight into their heartbeat telemetry dicts.
        Byte counts are HTTP body bytes as sent on the wire (after
        compression), both directions.
        """
        with self._telemetry_lock:
            return {f"wire_{name}": count
                    for name, count in self._counters.items()}

    def _count(self, **deltas) -> None:
        with self._telemetry_lock:
            for name, delta in deltas.items():
                self._counters[name] += delta

    # ------------------------------------------------------------------
    def handshake(self) -> dict:
        """Fetch the server's version card, verifying wire compatibility.

        Raises :class:`ServiceError` when the server speaks a different
        wire version (the server-side per-request check catches the
        mirror case of an old server and a new client).
        """
        card = self._request("GET", "handshake")
        server_wire = card.get("wire_version")
        if server_wire != WIRE_VERSION:
            raise ServiceError(
                f"wire version mismatch: server {self.url} speaks "
                f"v{server_wire}, this client v{WIRE_VERSION}; update the "
                f"older side",
                status=426,
            )
        self._handshaken = True
        return card

    def call(self, method: str, endpoint: str, payload: dict = None,
             timeout: float = None) -> dict:
        """One API call (handshaking first if this client hasn't yet).

        ``timeout`` raises this request's socket timeout above the
        client default — the long-poll claim path sets it to the poll
        wait plus margin so a parked request cannot time out under a
        healthy server.
        """
        if not self._handshaken and endpoint != "handshake":
            self.handshake()
        return self._request(method, endpoint, payload, timeout=timeout)

    # ------------------------------------------------------------------
    # Transport: persistent per-thread connections
    # ------------------------------------------------------------------
    def _connection(self, timeout: float):
        conn = getattr(self._local, "conn", None)
        fresh = conn is None
        if fresh:
            factory = (http.client.HTTPSConnection
                       if self._scheme == "https" else
                       http.client.HTTPConnection)
            conn = factory(self._host, self._port, timeout=timeout)
            self._local.conn = conn
        if conn.timeout != timeout:
            conn.timeout = timeout
            if conn.sock is not None:
                conn.sock.settimeout(timeout)
        return conn, fresh

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass

    def _request(self, method: str, endpoint: str, payload: dict = None,
                 timeout: float = None) -> dict:
        path = f"{API_PREFIX}/{endpoint}"
        body = b""
        headers = {WIRE_HEADER: str(WIRE_VERSION),
                   "Content-Type": "application/json",
                   "Accept-Encoding": COMPRESS_ENCODING}
        if method == "POST":
            body = json.dumps(payload or {}).encode("utf-8")
            if len(body) >= COMPRESS_THRESHOLD:
                body = zlib.compress(body)
                headers["Content-Encoding"] = COMPRESS_ENCODING
                self._count(compressed_bodies=1)
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        effective_timeout = self.timeout if timeout is None else timeout
        attempt = 0
        stale_retry = True
        while True:
            retry_floor = 0.0
            try:
                conn, fresh = self._connection(effective_timeout)
                conn.request(method, path, body=body or None, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                self._count(requests=1, bytes_out=len(body), bytes_in=len(raw))
                status = resp.status
                encoding = (resp.getheader("Content-Encoding") or "").lower()
                if encoding == COMPRESS_ENCODING:
                    raw = zlib.decompress(raw)
                    self._count(compressed_bodies=1)
                if status == 200:
                    return json.loads(raw)
                detail = self._error_text(raw)
                if status == 429:
                    retry_floor = self._retry_after(resp)
                elif status < 500:
                    raise ServiceError(
                        f"{method} /{endpoint} failed: HTTP {status}: "
                        f"{detail}", status=status,
                    )
                failure = f"HTTP {status}: {detail}"
            except ServiceError:
                raise
            except (http.client.HTTPException, socket.timeout,
                    ConnectionError, TimeoutError, OSError) as exc:
                self._drop_connection()
                if stale_retry and not fresh and isinstance(
                    exc, (http.client.RemoteDisconnected, BrokenPipeError,
                          ConnectionResetError),
                ):
                    # A kept-alive socket the server closed while we
                    # were idle: reconnect immediately, once, without
                    # spending the transient budget.
                    stale_retry = False
                    continue
                failure = f"{type(exc).__name__}: {exc}"
                status = None
            if attempt >= self.max_retries:
                raise ServiceError(
                    redact(
                        f"{method} /{endpoint} to {self.url} failed after "
                        f"{attempt + 1} attempts: {failure}",
                        self.token,
                    ),
                    status=status,
                )
            self._count(retries=1)
            time.sleep(max(self._sleep_for(attempt), retry_floor))
            attempt += 1

    def _sleep_for(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.max_backoff)
        return base * self._rng.uniform(0.5, 1.5)

    def close(self) -> None:
        """Release the calling thread's persistent connection.

        Other threads' connections close when their owners exit (the
        sockets are daemon-thread-bound and reaped by the OS); calling
        this from each thread that used the client is the tidy path.
        """
        self._drop_connection()

    @staticmethod
    def _error_text(raw: bytes) -> str:
        try:
            return json.loads(raw).get("error", "")
        except Exception:  # noqa: BLE001 — error body is best-effort
            return raw.decode("utf-8", "replace")[:200]

    @staticmethod
    def _retry_after(resp) -> float:
        try:
            return float(resp.getheader("Retry-After", 0))
        except (TypeError, ValueError):
            return 0.0


class HttpQueue(TaskQueue):
    """The fabric queue contract, spoken to a remote experiment service.

    Construction is cheap and does not touch the network; the first
    call handshakes (with the client's connection-retry budget, so a
    worker started before its server comes up simply waits). The
    server's :class:`~repro.fabric.queue.JobQueue` holds the actual
    state; this class is marshalling only, which is how both transports
    stay semantically identical.
    """

    def __init__(
        self,
        url: str,
        token: str = None,
        lease_seconds: float = DEFAULT_LEASE,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self.client = ServiceClient(url, token=token, timeout=timeout,
                                    max_retries=max_retries)
        self.lease_seconds = lease_seconds

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, tasks, submitted_by: str = None) -> int:
        """Insert ``[(key, kind, payload_dict), ...]``; returns rows added."""
        reply = self.client.call("POST", "queue/enqueue", {
            "tasks": [[key, kind, payload] for key, kind, payload in tasks],
            "submitted_by": submitted_by,
        })
        return reply["added"]

    def requeue_dead(self, keys=None) -> int:
        """Restore dead-lettered tasks' claim budgets; returns count."""
        payload = {"keys": list(keys)} if keys is not None else {}
        return self.client.call("POST", "queue/requeue-dead", payload)["requeued"]

    def cancel(self, keys) -> list:
        """Withdraw still-``queued`` tasks; returns the keys removed."""
        keys = list(keys)
        if not keys:
            return []
        return self.client.call("POST", "queue/cancel", {"keys": keys})["cancelled"]

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str, lease_seconds: float = None,
              wait: float = None):
        """Lease the oldest claimable task; ``None`` when nothing is.

        ``wait`` long-polls: the server parks the request until work
        appears (or the wait elapses), so an idle worker holds one
        open request instead of sending a poll stream. The socket
        timeout is raised to ``wait`` plus margin for the parked call.
        """
        payload = {
            "worker": worker_id,
            "lease_seconds": lease_seconds
            if lease_seconds is not None else self.lease_seconds,
        }
        timeout = None
        if wait:
            payload["wait"] = float(wait)
            timeout = float(wait) + self.client.timeout
        reply = self.client.call("POST", "queue/claim", payload,
                                 timeout=timeout)
        row = reply["task"]
        if row is None:
            return None
        return Task(key=row["key"], kind=row["kind"], payload=row["payload"],
                    attempts=row["attempts"], max_attempts=row["max_attempts"])

    def claim_many(self, worker_id: str, n: int,
                   lease_seconds: float = None) -> list:
        """Lease up to ``n`` tasks in one request (never blocks)."""
        tasks, _rows = self.claim_many_prechecked(
            worker_id, n, lease_seconds=lease_seconds, precheck=False)
        return tasks

    def claim_many_prechecked(self, worker_id: str, n: int,
                              lease_seconds: float = None,
                              precheck: bool = True):
        """:meth:`claim_many` plus the store precheck, one round trip.

        Returns ``(tasks, rows)`` where ``rows`` maps each claimed
        task's key to its already-stored result (or ``None``) — the
        same shape as a ``sim_results`` ``get_many`` over those keys.
        Pipelined workers use this to prefetch the engine's cache
        check without a second request per claim batch.
        """
        if n <= 0:
            return [], {}
        payload = {
            "worker": worker_id, "count": int(n),
            "lease_seconds": lease_seconds
            if lease_seconds is not None else self.lease_seconds,
        }
        if precheck:
            payload["precheck"] = True
        reply = self.client.call("POST", "queue/claim", payload)
        tasks = [Task(key=row["key"], kind=row["kind"],
                      payload=row["payload"], attempts=row["attempts"],
                      max_attempts=row["max_attempts"])
                 for row in reply["tasks"]]
        return tasks, (reply.get("results") or {})

    def heartbeat(self, key: str, worker_id: str, lease_seconds: float = None) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""
        reply = self.client.call("POST", "queue/heartbeat", {
            "key": key, "worker": worker_id,
            "lease_seconds": lease_seconds
            if lease_seconds is not None else self.lease_seconds,
        })
        return reply["ok"]

    def complete(self, key: str, worker_id: str) -> bool:
        """Mark a leased task done; ``False`` when the lease was lost."""
        reply = self.client.call("POST", "queue/complete", {
            "completions": [{"key": key, "worker": worker_id}],
        })
        return reply["ok"][0]

    def complete_many(self, completions) -> list:
        """Batched :meth:`complete`: ``[(key, worker_id), ...]`` in one
        request; returns the per-item ``bool`` list."""
        return self.complete_many_with_results(completions, [])

    def complete_many_with_results(self, completions, results) -> list:
        """:meth:`complete_many` carrying result rows in the same request.

        ``results`` is ``[(encoded_key, value_text), ...]`` destined for
        the ``sim_results`` table; the server persists those rows
        *before* marking anything done, so the results-before-ack
        invariant holds within one round trip instead of two.
        """
        completions = list(completions)
        results = list(results)
        if not completions and not results:
            return []
        payload = {
            "completions": [{"key": key, "worker": worker}
                            for key, worker in completions],
        }
        if results:
            payload["results"] = [[key, value] for key, value in results]
        reply = self.client.call("POST", "queue/complete", payload)
        return reply["ok"]

    def release(self, key: str, worker_id: str) -> bool:
        """Return a held lease unstarted (attempt refunded)."""
        reply = self.client.call("POST", "queue/release", {
            "key": key, "worker": worker_id,
        })
        return reply["ok"]

    def fail(self, key: str, worker_id: str, error: str) -> str:
        """Record a task failure; returns the resulting state."""
        reply = self.client.call("POST", "queue/fail", {
            "key": key, "worker": worker_id,
            "error": redact(error, self.client.token),
        })
        return reply["state"]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str = None, pid: int = None,
                        host: str = None) -> str:
        """Insert (or refresh) a worker row; returns the worker id."""
        reply = self.client.call("POST", "workers/register", {
            "worker_id": worker_id, "pid": pid, "host": host,
        })
        return reply["worker_id"]

    def worker_beat(self, worker_id: str, tasks_done: int = None,
                    tasks_failed: int = None, telemetry: dict = None) -> None:
        """Refresh a worker row: liveness, counters, engine telemetry."""
        self.client.call("POST", "workers/beat", {
            "worker_id": worker_id, "tasks_done": tasks_done,
            "tasks_failed": tasks_failed, "telemetry": telemetry,
        })

    def workers(self) -> list:
        """All worker rows as dicts (telemetry JSON decoded)."""
        return self.client.call("GET", "workers")["workers"]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def states(self, keys) -> dict:
        """``{key: state}`` for the given keys (missing keys absent)."""
        return self.client.call("POST", "queue/states",
                                {"keys": list(keys)})["states"]

    def counts(self) -> dict:
        """Row count per task state (all states present, zeros kept)."""
        return self.client.call("GET", "queue/counts")["counts"]

    def retries(self) -> int:
        """Total extra claims beyond each task's first (retry pressure)."""
        return self.client.call("GET", "queue/counts")["retries"]

    def leases(self, now: float = None) -> list:
        """Live lease rows, soonest expiry first (server-clock expiry)."""
        reply = self.client.call("GET", "queue/leases")
        return [Lease(key=row["key"], worker=row["worker"],
                      expires=row["expires"], attempts=row["attempts"])
                for row in reply["leases"]]

    def dead(self) -> list:
        """Dead-letter rows as ``(key, attempts, error)`` tuples."""
        return [tuple(row) for row in
                self.client.call("GET", "queue/dead")["dead"]]

    def errors(self, key: str):
        """Last recorded error text for ``key`` (or ``None``)."""
        return self.client.call("POST", "queue/errors", {"key": key})["error"]

    def purge_done(self) -> int:
        """Drop completed rows (results live in the store); returns count."""
        return self.client.call("POST", "queue/purge-done")["purged"]

    def close(self) -> None:
        """Release the calling thread's persistent connection."""
        self.client.close()


class HttpBackend:
    """The store backend protocol, spoken to a remote experiment service.

    Implements the same surface as
    :class:`~repro.store.backend.SqliteBackend` /
    :class:`~repro.store.backend.MemoryBackend`, so
    ``open_store("http://host:port")`` yields a fully functional
    :class:`~repro.store.resultstore.ResultStore` — results, hardware
    measurements, trial costs, checkpoints and the run registry all
    pass through to the server's SQLite file. Construction handshakes
    eagerly (with retries), so a bad URL or token fails at open time.
    """

    kind = "http"

    def __init__(self, url: str, token: str = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        self.client = ServiceClient(url, token=token, timeout=timeout,
                                    max_retries=max_retries)
        card = self.client.handshake()
        self.schema_version = card.get("store_schema_version")

    @property
    def url(self) -> str:
        """Service base URL this backend talks to."""
        return self.client.url

    @property
    def path(self) -> str:
        """The backend's address — for HTTP, the service URL."""
        return self.client.url

    @property
    def token(self):
        """Bearer token in use (``None`` when unauthenticated)."""
        return self.client.token

    def get(self, table: str, key: str):
        """Fetch one value (``None`` when absent)."""
        return self.client.call("POST", "store/get",
                                {"table": table, "key": key})["value"]

    def get_many(self, table: str, keys) -> dict:
        """Fetch ``{key: value_or_None}`` for many keys in one request."""
        keys = list(keys)
        if not keys:
            return {}
        return self.client.call("POST", "store/get-many",
                                {"table": table, "keys": keys})["values"]

    def put(self, table: str, key: str, value: str, replace: bool = True) -> bool:
        """Store one value; ``False`` when ``replace=False`` skipped it."""
        return self.put_many(table, [(key, value)], replace=replace) == 1

    def put_many(self, table: str, items, replace: bool = True) -> int:
        """Store many ``(key, value)`` pairs in one request."""
        return self.client.call("POST", "store/put-many", {
            "table": table,
            "items": [[key, value] for key, value in items],
            "replace": replace,
        })["written"]

    def delete(self, table: str, key: str) -> bool:
        """Delete one key; ``True`` when a row was removed."""
        return bool(self.client.call("POST", "store/delete",
                                     {"table": table, "key": key})["deleted"])

    def items(self, table: str) -> list:
        """All ``(key, value, created_at)`` rows of a table."""
        reply = self.client.call("POST", "store/items", {"table": table})
        return [tuple(row) for row in reply["rows"]]

    def count(self, table: str) -> int:
        """Row count of a table."""
        return self.client.call("POST", "store/count", {"table": table})["count"]

    def prune(self, table: str, older_than: float) -> int:
        """Drop rows created before ``older_than``; returns rows removed."""
        return self.client.call("POST", "store/prune", {
            "table": table, "older_than": older_than,
        })["pruned"]

    def size_bytes(self) -> int:
        """On-disk size of the server-side database."""
        return self.client.call("GET", "store/size")["size_bytes"]

    def vacuum(self) -> None:
        """Compact the server-side database."""
        self.client.call("POST", "store/vacuum")

    def close(self) -> None:
        """Release the calling thread's persistent connection."""
        self.client.close()


def fetch_status(url: str, token: str = None,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> dict:
    """The service's status snapshot (same shape as the local one).

    What ``repro status --url ...`` calls; the token never appears in
    the returned payload (the server computes the snapshot from queue
    and store state, not from credentials).
    """
    client = ServiceClient(url, token=token, max_retries=max_retries)
    return client.call("GET", "status")
