"""Client side of the experiment service: retry, queue, store.

Three layers, each thin:

- :class:`ServiceClient` — the transport. ``urllib.request`` plus the
  protocol obligations (bearer auth, wire-version header, one
  handshake before the first real request) and a retry loop with
  exponential backoff and jitter. Transient trouble — connection
  refused (server not up yet, or restarting mid-campaign), timeouts,
  5xx, 429 backpressure (whose ``Retry-After`` is honoured as a floor)
  — is retried up to ``max_retries`` times; protocol errors (400, 401,
  404, 426) raise :class:`ServiceError` immediately, because retrying
  a wrong token or a version mismatch cannot help.
- :class:`HttpQueue` — :class:`~repro.fabric.api.TaskQueue` over the
  wire. Byte-for-byte the same contract as the SQLite queue (the
  conformance suite in ``tests/test_fabric_queue.py`` runs against
  both), so :class:`~repro.fabric.worker.FabricWorker` and
  :class:`~repro.engine.executors.FabricExecutor` cannot tell the
  transports apart.
- :class:`HttpBackend` — the store backend protocol over the wire.
  ``open_store("http://host:port")`` builds a full
  :class:`~repro.store.resultstore.ResultStore` on top of it, which is
  what lets a remote worker run with no database file: every result
  write lands in the server's SQLite file, every read comes from it.

Timekeeping note: the server's clock is authoritative for leases. A
remote ``leases()`` reports expiry in *server* time alongside the
server's *now*, so remaining-time arithmetic stays skew-free.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request

from repro.fabric.api import TaskQueue
from repro.fabric.queue import DEFAULT_LEASE, Lease, Task
from repro.service.protocol import (
    API_PREFIX,
    WIRE_HEADER,
    WIRE_VERSION,
    redact,
    resolve_token,
)

#: Attempts before a transient failure is given up on (initial
#: connection and mid-campaign alike). Overridable per client and via
#: ``repro worker --max-retries``.
DEFAULT_MAX_RETRIES = 8

#: First backoff sleep, seconds; doubles per attempt up to the cap.
DEFAULT_BACKOFF = 0.2

#: Backoff ceiling, seconds.
DEFAULT_MAX_BACKOFF = 10.0

#: Per-request socket timeout, seconds.
DEFAULT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """A service request failed for good (non-transient, or retries spent).

    ``status`` carries the HTTP status when one was received, else
    ``None`` (pure transport failure).
    """

    def __init__(self, message: str, status: int = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """HTTP transport to one experiment service, with retries.

    Parameters
    ----------
    url:
        Service base URL (``http://host:port``); trailing slash and an
        accidental ``/api/v1`` suffix are tolerated.
    token:
        Bearer token; falls back to the ``REPRO_TOKEN`` environment
        variable. Without one, requests carry no credentials and the
        server answers 401.
    timeout:
        Per-request socket timeout, seconds.
    max_retries:
        Transient-failure budget per request (0 = fail on first error).
    backoff / max_backoff:
        Exponential backoff base and ceiling, seconds. Actual sleeps
        are jittered (×0.5..1.5) so a restarted fleet does not stampede
        the server in lockstep; a 429's ``Retry-After`` is a floor.
    """

    def __init__(
        self,
        url: str,
        token: str = None,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
    ) -> None:
        base = url.rstrip("/")
        if base.endswith(API_PREFIX):
            base = base[: -len(API_PREFIX)]
        self.url = base
        self.token = resolve_token(token)
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._rng = random.Random()
        self._handshaken = False

    # ------------------------------------------------------------------
    def handshake(self) -> dict:
        """Fetch the server's version card, verifying wire compatibility.

        Raises :class:`ServiceError` when the server speaks a different
        wire version (the server-side per-request check catches the
        mirror case of an old server and a new client).
        """
        card = self._request("GET", "handshake")
        server_wire = card.get("wire_version")
        if server_wire != WIRE_VERSION:
            raise ServiceError(
                f"wire version mismatch: server {self.url} speaks "
                f"v{server_wire}, this client v{WIRE_VERSION}; update the "
                f"older side",
                status=426,
            )
        self._handshaken = True
        return card

    def call(self, method: str, endpoint: str, payload: dict = None) -> dict:
        """One API call (handshaking first if this client hasn't yet)."""
        if not self._handshaken and endpoint != "handshake":
            self.handshake()
        return self._request(method, endpoint, payload)

    # ------------------------------------------------------------------
    def _request(self, method: str, endpoint: str, payload: dict = None) -> dict:
        body = None
        if method == "POST":
            body = json.dumps(payload or {}).encode("utf-8")
        headers = {WIRE_HEADER: str(WIRE_VERSION),
                   "Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.url}{API_PREFIX}/{endpoint}", data=body,
            headers=headers, method=method,
        )
        attempt = 0
        while True:
            retry_floor = 0.0
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                detail = self._error_text(exc)
                if exc.code == 429:
                    retry_floor = self._retry_after(exc)
                elif exc.code < 500:
                    raise ServiceError(
                        f"{method} /{endpoint} failed: HTTP {exc.code}: "
                        f"{detail}", status=exc.code,
                    ) from None
                failure = f"HTTP {exc.code}: {detail}"
                status = exc.code
            except (urllib.error.URLError, socket.timeout, ConnectionError,
                    TimeoutError) as exc:
                reason = getattr(exc, "reason", exc)
                failure = f"{type(exc).__name__}: {reason}"
                status = None
            if attempt >= self.max_retries:
                raise ServiceError(
                    redact(
                        f"{method} /{endpoint} to {self.url} failed after "
                        f"{attempt + 1} attempts: {failure}",
                        self.token,
                    ),
                    status=status,
                )
            time.sleep(max(self._sleep_for(attempt), retry_floor))
            attempt += 1

    def _sleep_for(self, attempt: int) -> float:
        base = min(self.backoff * (2 ** attempt), self.max_backoff)
        return base * self._rng.uniform(0.5, 1.5)

    @staticmethod
    def _error_text(exc) -> str:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return payload.get("error", "")
        except Exception:  # noqa: BLE001 — error body is best-effort
            return exc.reason if isinstance(exc.reason, str) else str(exc.reason)

    @staticmethod
    def _retry_after(exc) -> float:
        try:
            return float(exc.headers.get("Retry-After", 0))
        except (TypeError, ValueError):
            return 0.0


class HttpQueue(TaskQueue):
    """The fabric queue contract, spoken to a remote experiment service.

    Construction is cheap and does not touch the network; the first
    call handshakes (with the client's connection-retry budget, so a
    worker started before its server comes up simply waits). The
    server's :class:`~repro.fabric.queue.JobQueue` holds the actual
    state; this class is marshalling only, which is how both transports
    stay semantically identical.
    """

    def __init__(
        self,
        url: str,
        token: str = None,
        lease_seconds: float = DEFAULT_LEASE,
        timeout: float = DEFAULT_TIMEOUT,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> None:
        self.client = ServiceClient(url, token=token, timeout=timeout,
                                    max_retries=max_retries)
        self.lease_seconds = lease_seconds

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, tasks, submitted_by: str = None) -> int:
        """Insert ``[(key, kind, payload_dict), ...]``; returns rows added."""
        reply = self.client.call("POST", "queue/enqueue", {
            "tasks": [[key, kind, payload] for key, kind, payload in tasks],
            "submitted_by": submitted_by,
        })
        return reply["added"]

    def requeue_dead(self, keys=None) -> int:
        """Restore dead-lettered tasks' claim budgets; returns count."""
        payload = {"keys": list(keys)} if keys is not None else {}
        return self.client.call("POST", "queue/requeue-dead", payload)["requeued"]

    def cancel(self, keys) -> list:
        """Withdraw still-``queued`` tasks; returns the keys removed."""
        keys = list(keys)
        if not keys:
            return []
        return self.client.call("POST", "queue/cancel", {"keys": keys})["cancelled"]

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str, lease_seconds: float = None):
        """Lease the oldest claimable task; ``None`` when nothing is."""
        reply = self.client.call("POST", "queue/claim", {
            "worker": worker_id,
            "lease_seconds": lease_seconds
            if lease_seconds is not None else self.lease_seconds,
        })
        row = reply["task"]
        if row is None:
            return None
        return Task(key=row["key"], kind=row["kind"], payload=row["payload"],
                    attempts=row["attempts"], max_attempts=row["max_attempts"])

    def heartbeat(self, key: str, worker_id: str, lease_seconds: float = None) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""
        reply = self.client.call("POST", "queue/heartbeat", {
            "key": key, "worker": worker_id,
            "lease_seconds": lease_seconds
            if lease_seconds is not None else self.lease_seconds,
        })
        return reply["ok"]

    def complete(self, key: str, worker_id: str) -> bool:
        """Mark a leased task done; ``False`` when the lease was lost."""
        reply = self.client.call("POST", "queue/complete", {
            "completions": [{"key": key, "worker": worker_id}],
        })
        return reply["ok"][0]

    def complete_many(self, completions) -> list:
        """Batched :meth:`complete`: ``[(key, worker_id), ...]`` in one
        request; returns the per-item ``bool`` list."""
        reply = self.client.call("POST", "queue/complete", {
            "completions": [{"key": key, "worker": worker}
                            for key, worker in completions],
        })
        return reply["ok"]

    def fail(self, key: str, worker_id: str, error: str) -> str:
        """Record a task failure; returns the resulting state."""
        reply = self.client.call("POST", "queue/fail", {
            "key": key, "worker": worker_id,
            "error": redact(error, self.client.token),
        })
        return reply["state"]

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str = None, pid: int = None,
                        host: str = None) -> str:
        """Insert (or refresh) a worker row; returns the worker id."""
        reply = self.client.call("POST", "workers/register", {
            "worker_id": worker_id, "pid": pid, "host": host,
        })
        return reply["worker_id"]

    def worker_beat(self, worker_id: str, tasks_done: int = None,
                    tasks_failed: int = None, telemetry: dict = None) -> None:
        """Refresh a worker row: liveness, counters, engine telemetry."""
        self.client.call("POST", "workers/beat", {
            "worker_id": worker_id, "tasks_done": tasks_done,
            "tasks_failed": tasks_failed, "telemetry": telemetry,
        })

    def workers(self) -> list:
        """All worker rows as dicts (telemetry JSON decoded)."""
        return self.client.call("GET", "workers")["workers"]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def states(self, keys) -> dict:
        """``{key: state}`` for the given keys (missing keys absent)."""
        return self.client.call("POST", "queue/states",
                                {"keys": list(keys)})["states"]

    def counts(self) -> dict:
        """Row count per task state (all states present, zeros kept)."""
        return self.client.call("GET", "queue/counts")["counts"]

    def retries(self) -> int:
        """Total extra claims beyond each task's first (retry pressure)."""
        return self.client.call("GET", "queue/counts")["retries"]

    def leases(self, now: float = None) -> list:
        """Live lease rows, soonest expiry first (server-clock expiry)."""
        reply = self.client.call("GET", "queue/leases")
        return [Lease(key=row["key"], worker=row["worker"],
                      expires=row["expires"], attempts=row["attempts"])
                for row in reply["leases"]]

    def dead(self) -> list:
        """Dead-letter rows as ``(key, attempts, error)`` tuples."""
        return [tuple(row) for row in
                self.client.call("GET", "queue/dead")["dead"]]

    def errors(self, key: str):
        """Last recorded error text for ``key`` (or ``None``)."""
        return self.client.call("POST", "queue/errors", {"key": key})["error"]

    def purge_done(self) -> int:
        """Drop completed rows (results live in the store); returns count."""
        return self.client.call("POST", "queue/purge-done")["purged"]

    def close(self) -> None:
        """No persistent transport to release (requests are one-shot)."""


class HttpBackend:
    """The store backend protocol, spoken to a remote experiment service.

    Implements the same surface as
    :class:`~repro.store.backend.SqliteBackend` /
    :class:`~repro.store.backend.MemoryBackend`, so
    ``open_store("http://host:port")`` yields a fully functional
    :class:`~repro.store.resultstore.ResultStore` — results, hardware
    measurements, trial costs, checkpoints and the run registry all
    pass through to the server's SQLite file. Construction handshakes
    eagerly (with retries), so a bad URL or token fails at open time.
    """

    kind = "http"

    def __init__(self, url: str, token: str = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> None:
        self.client = ServiceClient(url, token=token, timeout=timeout,
                                    max_retries=max_retries)
        card = self.client.handshake()
        self.schema_version = card.get("store_schema_version")

    @property
    def url(self) -> str:
        """Service base URL this backend talks to."""
        return self.client.url

    @property
    def path(self) -> str:
        """The backend's address — for HTTP, the service URL."""
        return self.client.url

    @property
    def token(self):
        """Bearer token in use (``None`` when unauthenticated)."""
        return self.client.token

    def get(self, table: str, key: str):
        """Fetch one value (``None`` when absent)."""
        return self.client.call("POST", "store/get",
                                {"table": table, "key": key})["value"]

    def put(self, table: str, key: str, value: str, replace: bool = True) -> bool:
        """Store one value; ``False`` when ``replace=False`` skipped it."""
        return self.put_many(table, [(key, value)], replace=replace) == 1

    def put_many(self, table: str, items, replace: bool = True) -> int:
        """Store many ``(key, value)`` pairs in one request."""
        return self.client.call("POST", "store/put-many", {
            "table": table,
            "items": [[key, value] for key, value in items],
            "replace": replace,
        })["written"]

    def delete(self, table: str, key: str) -> bool:
        """Delete one key; ``True`` when a row was removed."""
        return bool(self.client.call("POST", "store/delete",
                                     {"table": table, "key": key})["deleted"])

    def items(self, table: str) -> list:
        """All ``(key, value, created_at)`` rows of a table."""
        reply = self.client.call("POST", "store/items", {"table": table})
        return [tuple(row) for row in reply["rows"]]

    def count(self, table: str) -> int:
        """Row count of a table."""
        return self.client.call("POST", "store/count", {"table": table})["count"]

    def prune(self, table: str, older_than: float) -> int:
        """Drop rows created before ``older_than``; returns rows removed."""
        return self.client.call("POST", "store/prune", {
            "table": table, "older_than": older_than,
        })["pruned"]

    def size_bytes(self) -> int:
        """On-disk size of the server-side database."""
        return self.client.call("GET", "store/size")["size_bytes"]

    def vacuum(self) -> None:
        """Compact the server-side database."""
        self.client.call("POST", "store/vacuum")

    def close(self) -> None:
        """No persistent transport to release (requests are one-shot)."""


def fetch_status(url: str, token: str = None,
                 max_retries: int = DEFAULT_MAX_RETRIES) -> dict:
    """The service's status snapshot (same shape as the local one).

    What ``repro status --url ...`` calls; the token never appears in
    the returned payload (the server computes the snapshot from queue
    and store state, not from credentials).
    """
    client = ServiceClient(url, token=token, max_retries=max_retries)
    return client.call("GET", "status")
