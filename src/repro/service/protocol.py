"""The experiment service's wire protocol, in one place.

Everything both sides must agree on lives here, so the server
(:mod:`repro.service.server`) and the client
(:mod:`repro.service.client`) cannot drift apart silently:

- **Versioning.** Every request carries the client's wire version in
  the :data:`WIRE_HEADER` header; the server answers a mismatch with
  ``426 Upgrade Required`` instead of misparsing the body. The
  ``GET /api/v1/handshake`` endpoint reports the server's wire version
  plus the fabric and store schema versions, and clients handshake once
  before their first real request — version skew fails loudly at
  connect time, not mid-campaign.
- **Auth.** Requests authenticate with ``Authorization: Bearer
  <token>``; the token comes from ``--token`` or the :data:`TOKEN_ENV`
  environment variable (:func:`resolve_token`), and
  :func:`redact` scrubs it from anything user-visible (logs, error
  text, status output).
- **Bodies.** JSON both ways. Success is ``200`` with the endpoint's
  payload; errors are ``{"error": "..."}`` with a meaningful status
  code (400 malformed, 401 unauthorised, 404 unknown endpoint,
  426 version skew, 429 backpressure with ``Retry-After``, 500 with
  the exception text).
- **Batching.** ``queue/enqueue`` and ``queue/complete`` accept lists,
  so a driver submits a whole race step in one request and a worker
  can acknowledge several tasks per round trip; ``queue/claim`` takes
  a ``count`` and answers with a ``tasks`` list, and ``store/get-many``
  fetches K results in one request.
- **Long-poll.** ``queue/claim`` accepts a ``wait`` (seconds, capped
  at :data:`MAX_CLAIM_WAIT`); the server parks the request on a
  condition variable and wakes it the moment claimable work appears,
  so an idle fleet costs one held connection instead of a poll storm.
- **Compression.** JSON bodies above :data:`COMPRESS_THRESHOLD` bytes
  are zlib-deflated in either direction, flagged with
  ``Content-Encoding: deflate``. Clients advertise support via
  ``Accept-Encoding``; the server only compresses responses for
  clients that did.

The endpoint catalogue mirrors the fabric queue API 1:1 (see
:class:`~repro.fabric.api.TaskQueue`) plus the store backend's
five-table key/value protocol, which is what lets a remote worker run
without any local database file.
"""

from __future__ import annotations

import os

#: Bump when request/response shapes change incompatibly. Checked per
#: request (header) and at handshake. Version 2: batched claim
#: (``count``/``tasks``), long-poll ``wait``, ``queue/release``,
#: ``store/get-many``, deflate body compression.
WIRE_VERSION = 2

#: URL prefix every endpoint lives under.
API_PREFIX = "/api/v1"

#: Request header carrying the client's wire version.
WIRE_HEADER = "X-Repro-Wire"

#: Environment variable consulted wherever ``--token`` is accepted.
TOKEN_ENV = "REPRO_TOKEN"

#: What a redacted token reads as in logs and error text.
REDACTED = "[redacted]"

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8537

#: Default seconds a backpressured (429) client is told to wait.
RETRY_AFTER_SECONDS = 1.0

#: JSON bodies at or above this many bytes are sent zlib-deflated
#: (``Content-Encoding: deflate``). Small bodies stay raw: the zlib
#: header would eat the saving and the CPU is better spent elsewhere.
COMPRESS_THRESHOLD = 1024

#: The one body encoding both sides speak (zlib with header).
COMPRESS_ENCODING = "deflate"

#: Hard server-side cap on ``queue/claim``'s long-poll ``wait``,
#: seconds. Keeps parked claim threads bounded and lets clients size
#: their socket timeout as ``wait + margin`` safely.
MAX_CLAIM_WAIT = 30.0


def resolve_token(token: str = None) -> str:
    """The effective auth token: explicit value, else :data:`TOKEN_ENV`.

    Returns ``None`` when neither is set, which callers treat as "no
    credentials available" (the server refuses to start, the client
    sends no ``Authorization`` header and gets a clean 401).
    """
    if token:
        return token
    return os.environ.get(TOKEN_ENV) or None


def redact(text, token: str):
    """Scrub every occurrence of ``token`` from ``text``.

    Applied to log lines, exception text and failure messages before
    they leave the process, so a token that leaks into an error (say,
    a urllib message echoing headers) never reaches disk or another
    host's queue rows. Pass-through when either side is falsy.
    """
    if not token or not text:
        return text
    return str(text).replace(token, REDACTED)


def is_url(spec) -> bool:
    """True when ``spec`` names a service URL rather than a file path."""
    return isinstance(spec, str) and spec.startswith(("http://", "https://"))
