"""The experiment service: the fabric's HTTP control plane.

PR 5's distributed fabric spans exactly as far as its SQLite file does:
"cluster" means "processes sharing a filesystem". This package removes
that ceiling. ``repro serve`` fronts one store file with a lightweight
stdlib-only HTTP service (:mod:`repro.service.server`), and the client
side (:mod:`repro.service.client`) speaks the same wire protocol
(:mod:`repro.service.protocol`) through two adapters:

- :class:`~repro.service.client.HttpQueue` — the fabric's
  :class:`~repro.fabric.api.TaskQueue` interface over HTTP, so
  ``repro worker --url http://host:port`` and
  :class:`~repro.engine.executors.FabricExecutor` run unchanged;
- :class:`~repro.service.client.HttpBackend` — the store backend
  protocol over HTTP, so ``open_store("http://host:port")`` yields a
  fully functional :class:`~repro.store.resultstore.ResultStore` and a
  remote worker needs **no database file at all**: results, hardware
  measurements, checkpoints and run records all read and write through
  the service.

The byte-identity guarantee carries over the network by construction:
task key = store address end to end, exactly as on the local fabric,
so a remote fleet's campaign output is ``cmp``-identical to a serial
run — even with a worker SIGKILLed mid-stage or the server restarted
mid-campaign (all state lives in the durable SQLite file the service
fronts).
"""

from repro.service.client import (
    HttpBackend,
    HttpQueue,
    ServiceClient,
    ServiceError,
    fetch_status,
)
from repro.service.protocol import (
    TOKEN_ENV,
    WIRE_VERSION,
    redact,
    resolve_token,
)
from repro.service.server import ExperimentService

__all__ = [
    "ExperimentService",
    "HttpBackend",
    "HttpQueue",
    "ServiceClient",
    "ServiceError",
    "TOKEN_ENV",
    "WIRE_VERSION",
    "fetch_status",
    "redact",
    "resolve_token",
]
