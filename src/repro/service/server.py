"""``repro serve``: the experiment service over one store file.

A deliberately boring server: :class:`http.server.ThreadingHTTPServer`
from the standard library, JSON bodies, one route table. All state
lives in the SQLite file the service fronts — the process itself holds
nothing but open connections — so killing and restarting the server
mid-campaign loses no work: workers retry, the durable queue picks up
where it was, and the campaign's byte-identity guarantee is untouched.

The service exposes two surfaces (catalogued in
:mod:`repro.service.protocol`):

- the **fabric queue** — every :class:`~repro.fabric.api.TaskQueue`
  method as an endpoint, claim-through-complete, so remote workers
  participate in the lease protocol exactly like local ones;
- the **store backend** — the five-table key/value protocol of
  :mod:`repro.store.backend`, so results, hardware measurements,
  checkpoints and run records read/write through; a remote worker
  needs no database file.

Operational guards:

- **auth** — every request must carry ``Authorization: Bearer
  <token>`` (compared with :func:`hmac.compare_digest`); the server
  refuses to start without a token.
- **backpressure** — ``queue/enqueue`` answers ``429`` with a
  ``Retry-After`` header once outstanding depth reaches ``max_depth``;
  drivers back off instead of growing the queue without bound.
- **version handshake** — requests carry the wire version header and
  mismatches get ``426``; ``GET /api/v1/handshake`` reports wire,
  fabric-schema and store-schema versions so clients can fail fast.

Concurrency: handler threads share one :class:`JobQueue` and one
:class:`ResultStore`, both internally locked; many workers hammering
the service serialise onto the same SQLite write path the local
fabric already exercises.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.fabric.queue import (
    DEFAULT_LEASE,
    DEFAULT_MAX_ATTEMPTS,
    FABRIC_SCHEMA_VERSION,
    JobQueue,
)
from repro.service.protocol import (
    API_PREFIX,
    COMPRESS_ENCODING,
    COMPRESS_THRESHOLD,
    MAX_CLAIM_WAIT,
    RETRY_AFTER_SECONDS,
    WIRE_HEADER,
    WIRE_VERSION,
    redact,
    resolve_token,
)
from repro.store import open_store
from repro.store.backend import SCHEMA_VERSION as STORE_SCHEMA_VERSION
from repro.store.backend import TABLES


class _ServiceError(Exception):
    """Internal: an error response with a status code (and headers)."""

    def __init__(self, status: int, message: str, headers: dict = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class ExperimentService:
    """One HTTP control plane over one fabric store file.

    Parameters
    ----------
    store_path:
        The SQLite file holding the queue and the result store.
    token:
        Bearer token every request must present; falls back to the
        ``REPRO_TOKEN`` environment variable. Required — the service
        refuses to start without one.
    host / port:
        Bind address. ``port=0`` picks a free port (tests); the bound
        port is available as :attr:`port` / :attr:`url`.
    max_depth:
        Outstanding-task ceiling for backpressure: ``queue/enqueue``
        answers 429 + ``Retry-After`` while ``queued + leased`` is at
        or above this. ``None`` disables the ceiling.
    lease_seconds / max_attempts:
        Forwarded to the server-side :class:`JobQueue` (defaults for
        claims that do not override the lease, and the claim budget
        stamped on enqueued rows).
    progress:
        Optional ``callable(str)`` for request log lines (token always
        redacted). ``None`` logs nothing.
    """

    def __init__(
        self,
        store_path: str,
        token: str = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_depth: int = None,
        lease_seconds: float = DEFAULT_LEASE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        progress=None,
    ) -> None:
        self.store_path = str(store_path)
        self.token = resolve_token(token)
        if not self.token:
            raise ValueError(
                "the experiment service requires an auth token: pass token=... "
                "(or --token) or set the REPRO_TOKEN environment variable"
            )
        self.max_depth = max_depth
        self.progress = progress
        self.queue = JobQueue(self.store_path, lease_seconds=lease_seconds,
                              max_attempts=max_attempts)
        self.store = open_store(self.store_path)
        self._routes = self._build_routes()
        self._thread = None
        service = self

        class Handler(BaseHTTPRequestHandler):
            """Per-request glue: auth, version, routing, JSON I/O."""

            protocol_version = "HTTP/1.1"
            # Buffer the response stream so status line, headers and
            # body leave in ONE send: with keep-alive connections the
            # default unbuffered wfile emits them as separate packets,
            # and Nagle + delayed-ACK turns every reply into a ~40 ms
            # stall. Disabling Nagle guards the flush boundary too.
            wbufsize = -1
            disable_nagle_algorithm = True

            def do_GET(self):  # noqa: N802 — http.server API
                """Dispatch a GET request through the route table."""
                service._handle(self, "GET")

            def do_POST(self):  # noqa: N802 — http.server API
                """Dispatch a POST request through the route table."""
                service._handle(self, "POST")

            def log_message(self, fmt, *args):  # noqa: D102 — stdlib hook
                service._log(f"{self.address_string()} {fmt % args}")

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The TCP port actually bound (resolves ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients connect to (no credentials embedded)."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def _log(self, text: str) -> None:
        if self.progress is not None:
            self.progress(f"[serve] {redact(text, self.token)}")

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _handle(self, handler, method: str) -> None:
        """Auth, version-check and route one request; send the reply."""
        try:
            path = handler.path.split("?", 1)[0].rstrip("/")
            if not path.startswith(API_PREFIX):
                raise _ServiceError(404, f"unknown path {path!r}; API lives "
                                         f"under {API_PREFIX}/")
            route = path[len(API_PREFIX):].strip("/")
            # Drain the request body before any reply can be sent:
            # persistent (keep-alive) clients would otherwise find the
            # unread body bytes where the next request line should be.
            length = int(handler.headers.get("Content-Length") or 0)
            raw = handler.rfile.read(length) if length else b""
            self._check_auth(handler)
            if route != "handshake":
                self._check_version(handler)
            func = self._routes.get((method, route))
            if func is None:
                raise _ServiceError(404, f"unknown endpoint {method} /{route}")
            payload = self._read_body(handler, raw) if method == "POST" else {}
            self._reply(handler, 200, func(payload))
        except _ServiceError as exc:
            self._reply(handler, exc.status, {"error": str(exc)}, exc.headers)
        except Exception as exc:  # noqa: BLE001 — one request, one reply
            message = redact(f"{type(exc).__name__}: {exc}", self.token)
            self._reply(handler, 500, {"error": message})

    def _check_auth(self, handler) -> None:
        header = handler.headers.get("Authorization", "")
        scheme, _, presented = header.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
            presented.strip(), self.token
        ):
            raise _ServiceError(401, "unauthorised: bearer token missing or "
                                     "wrong (pass --token or set REPRO_TOKEN)")

    @staticmethod
    def _check_version(handler) -> None:
        presented = handler.headers.get(WIRE_HEADER)
        if presented != str(WIRE_VERSION):
            raise _ServiceError(
                426,
                f"wire version mismatch: client sent {presented!r}, server "
                f"speaks v{WIRE_VERSION}; update the older side",
            )

    @staticmethod
    def _read_body(handler, raw: bytes) -> dict:
        if not raw:
            return {}
        encoding = (handler.headers.get("Content-Encoding") or "").strip().lower()
        if encoding == COMPRESS_ENCODING:
            try:
                raw = zlib.decompress(raw)
            except zlib.error as exc:
                raise _ServiceError(400, f"undecodable deflate body: {exc}") \
                    from None
        elif encoding:
            raise _ServiceError(
                400, f"unsupported Content-Encoding {encoding!r}; "
                     f"this server speaks identity and {COMPRESS_ENCODING}")
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise _ServiceError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _ServiceError(400, "request body must be a JSON object")
        return payload

    @staticmethod
    def _reply(handler, status: int, payload: dict, headers: dict = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        accepts = (handler.headers.get("Accept-Encoding") or "").lower()
        compressed = (len(body) >= COMPRESS_THRESHOLD
                      and COMPRESS_ENCODING in accepts)
        if compressed:
            body = zlib.compress(body)
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            if compressed:
                handler.send_header("Content-Encoding", COMPRESS_ENCODING)
            handler.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                handler.send_header(name, str(value))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply; its retry layer handles it

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _build_routes(self) -> dict:
        return {
            ("GET", "handshake"): self._ep_handshake,
            ("POST", "queue/enqueue"): self._ep_enqueue,
            ("POST", "queue/claim"): self._ep_claim,
            ("POST", "queue/heartbeat"): self._ep_heartbeat,
            ("POST", "queue/complete"): self._ep_complete,
            ("POST", "queue/release"): self._ep_release,
            ("POST", "queue/fail"): self._ep_fail,
            ("POST", "queue/requeue-dead"): self._ep_requeue_dead,
            ("POST", "queue/cancel"): self._ep_cancel,
            ("POST", "queue/states"): self._ep_states,
            ("GET", "queue/counts"): self._ep_counts,
            ("GET", "queue/leases"): self._ep_leases,
            ("GET", "queue/dead"): self._ep_dead,
            ("POST", "queue/errors"): self._ep_errors,
            ("POST", "queue/purge-done"): self._ep_purge_done,
            ("POST", "workers/register"): self._ep_register,
            ("POST", "workers/beat"): self._ep_beat,
            ("GET", "workers"): self._ep_workers,
            ("POST", "store/get"): self._ep_store_get,
            ("POST", "store/get-many"): self._ep_store_get_many,
            ("POST", "store/put-many"): self._ep_store_put_many,
            ("POST", "store/delete"): self._ep_store_delete,
            ("POST", "store/items"): self._ep_store_items,
            ("POST", "store/count"): self._ep_store_count,
            ("POST", "store/prune"): self._ep_store_prune,
            ("GET", "store/size"): self._ep_store_size,
            ("POST", "store/vacuum"): self._ep_store_vacuum,
            ("GET", "status"): self._ep_status,
        }

    def _ep_handshake(self, payload: dict) -> dict:
        return {
            "service": "repro-serve",
            "wire_version": WIRE_VERSION,
            "fabric_schema_version": FABRIC_SCHEMA_VERSION,
            "store_schema_version": STORE_SCHEMA_VERSION,
        }

    def _ep_enqueue(self, payload: dict) -> dict:
        if self.max_depth is not None:
            depth = self.queue.depth()
            if depth >= self.max_depth:
                raise _ServiceError(
                    429,
                    f"queue full: {depth} outstanding tasks >= max depth "
                    f"{self.max_depth}; retry after the fleet drains",
                    headers={"Retry-After": f"{RETRY_AFTER_SECONDS:g}"},
                )
        tasks = [(key, kind, task_payload)
                 for key, kind, task_payload in payload.get("tasks", [])]
        added = self.queue.enqueue(tasks, submitted_by=payload.get("submitted_by"))
        return {"added": added}

    def _ep_claim(self, payload: dict) -> dict:
        """Claim up to ``count`` tasks, parking up to ``wait`` seconds.

        The long-poll path rides the queue's own condition variable:
        every enqueue/requeue/release through this service wakes parked
        claimers immediately, and a short poll bound inside
        ``JobQueue.claim`` covers writers that bypass the service and
        touch the SQLite file directly.
        """
        worker = payload["worker"]
        lease = payload.get("lease_seconds")
        count = max(1, int(payload.get("count") or 1))
        wait = min(float(payload.get("wait") or 0.0), MAX_CLAIM_WAIT)
        tasks = self.queue.claim_many(worker, count, lease_seconds=lease)
        if not tasks and wait > 0:
            first = self.queue.claim(worker, lease_seconds=lease, wait=wait)
            if first is not None:
                tasks = [first]
                if count > 1:
                    tasks += self.queue.claim_many(worker, count - 1,
                                                   lease_seconds=lease)
        rows = [{
            "key": task.key, "kind": task.kind, "payload": task.payload,
            "attempts": task.attempts, "max_attempts": task.max_attempts,
        } for task in tasks]
        if "count" in payload:
            reply = {"tasks": rows}
            if payload.get("precheck") and tasks:
                # Piggyback the store precheck on the claim: answer "was
                # this key already computed?" for every claimed task in
                # the same round trip, so pipelined workers skip their
                # separate store/get-many request per prefetch batch.
                get = self.store.backend.get
                reply["results"] = {
                    task.key: get("sim_results", task.key) for task in tasks
                }
            return reply
        return {"task": rows[0] if rows else None}

    def _ep_heartbeat(self, payload: dict) -> dict:
        ok = self.queue.heartbeat(
            payload["key"], payload["worker"],
            lease_seconds=payload.get("lease_seconds"),
        )
        return {"ok": ok}

    def _ep_complete(self, payload: dict) -> dict:
        # Result rows riding the completion request land first: a task
        # must never read as done while its result row is unreadable.
        rows = payload.get("results") or []
        if rows:
            self.store.backend.put_many(
                "sim_results", [(key, value) for key, value in rows])
        return {"ok": [
            self.queue.complete(item["key"], item["worker"])
            for item in payload.get("completions", [])
        ]}

    def _ep_release(self, payload: dict) -> dict:
        return {"ok": self.queue.release(payload["key"], payload["worker"])}

    def _ep_fail(self, payload: dict) -> dict:
        state = self.queue.fail(
            payload["key"], payload["worker"], payload.get("error", "")
        )
        return {"state": state}

    def _ep_requeue_dead(self, payload: dict) -> dict:
        return {"requeued": self.queue.requeue_dead(keys=payload.get("keys"))}

    def _ep_cancel(self, payload: dict) -> dict:
        return {"cancelled": self.queue.cancel(payload.get("keys", []))}

    def _ep_states(self, payload: dict) -> dict:
        return {"states": self.queue.states(payload.get("keys", []))}

    def _ep_counts(self, payload: dict) -> dict:
        return {"counts": self.queue.counts(), "retries": self.queue.retries()}

    def _ep_leases(self, payload: dict) -> dict:
        return {"leases": [
            {"key": lease.key, "worker": lease.worker,
             "expires": lease.expires, "attempts": lease.attempts}
            for lease in self.queue.leases()
        ], "now": time.time()}

    def _ep_dead(self, payload: dict) -> dict:
        return {"dead": [list(row) for row in self.queue.dead()]}

    def _ep_errors(self, payload: dict) -> dict:
        return {"error": self.queue.errors(payload["key"])}

    def _ep_purge_done(self, payload: dict) -> dict:
        return {"purged": self.queue.purge_done()}

    def _ep_register(self, payload: dict) -> dict:
        worker_id = self.queue.register_worker(
            payload.get("worker_id"), pid=payload.get("pid"),
            host=payload.get("host"),
        )
        return {"worker_id": worker_id}

    def _ep_beat(self, payload: dict) -> dict:
        self.queue.worker_beat(
            payload["worker_id"], tasks_done=payload.get("tasks_done"),
            tasks_failed=payload.get("tasks_failed"),
            telemetry=payload.get("telemetry"),
        )
        return {"ok": True}

    def _ep_workers(self, payload: dict) -> dict:
        return {"workers": self.queue.workers()}

    # -- store backend pass-through ------------------------------------
    @staticmethod
    def _table(payload: dict) -> str:
        table = payload.get("table")
        if table not in TABLES:
            raise _ServiceError(400, f"unknown store table {table!r}; "
                                     f"one of {', '.join(TABLES)}")
        return table

    def _ep_store_get(self, payload: dict) -> dict:
        return {"value": self.store.backend.get(self._table(payload),
                                                payload["key"])}

    def _ep_store_get_many(self, payload: dict) -> dict:
        table = self._table(payload)
        get = self.store.backend.get
        return {"values": {key: get(table, key)
                           for key in payload.get("keys", [])}}

    def _ep_store_put_many(self, payload: dict) -> dict:
        written = self.store.backend.put_many(
            self._table(payload),
            [(key, value) for key, value in payload.get("items", [])],
            replace=bool(payload.get("replace", True)),
        )
        return {"written": written}

    def _ep_store_delete(self, payload: dict) -> dict:
        return {"deleted": self.store.backend.delete(self._table(payload),
                                                     payload["key"])}

    def _ep_store_items(self, payload: dict) -> dict:
        rows = self.store.backend.items(self._table(payload))
        return {"rows": [list(row) for row in rows]}

    def _ep_store_count(self, payload: dict) -> dict:
        return {"count": self.store.backend.count(self._table(payload))}

    def _ep_store_prune(self, payload: dict) -> dict:
        return {"pruned": self.store.backend.prune(
            self._table(payload), float(payload["older_than"])
        )}

    def _ep_store_size(self, payload: dict) -> dict:
        return {"size_bytes": self.store.backend.size_bytes()}

    def _ep_store_vacuum(self, payload: dict) -> dict:
        self.store.backend.vacuum()
        return {"ok": True}

    def _ep_status(self, payload: dict) -> dict:
        from repro.fabric.status import status_snapshot

        return status_snapshot(self.store_path)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ExperimentService":
        """Serve on a background thread (tests, examples); returns self."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests (idempotent)."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Release the socket and the queue/store connections."""
        self._httpd.server_close()
        self.queue.close()
        self.store.close()

    def __enter__(self) -> "ExperimentService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
        self.close()
