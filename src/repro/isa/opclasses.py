"""Operation classes of the synthetic AArch64-like ISA.

The timing models do not interpret full instruction semantics; they only
need to know which functional unit an instruction occupies, its dependence
footprint, and whether it touches memory or redirects control flow. The
``OpClass`` enumeration captures exactly that, mirroring the granularity at
which Sniper's contention models classify AArch64 instructions.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Classes of dynamic instructions understood by the timing models."""

    NOP = 0
    #: Simple integer ALU operation (add, sub, logical, shift, compare).
    IALU = 1
    #: Integer multiply.
    IMUL = 2
    #: Integer divide (non-pipelined on the cores we model).
    IDIV = 3
    #: Scalar floating-point add/sub/compare.
    FPALU = 4
    #: Scalar floating-point multiply (and fused multiply-add).
    FPMUL = 5
    #: Scalar floating-point divide / square root (non-pipelined).
    FPDIV = 6
    #: Float <-> int / float <-> double conversions.
    FCVT = 7
    #: SIMD (ASIMD/NEON-like) integer or FP lane-parallel arithmetic.
    SIMD_ALU = 8
    #: SIMD multiply / multiply-accumulate.
    SIMD_MUL = 9
    #: Memory load (scalar or SIMD).
    LOAD = 10
    #: Memory store (scalar or SIMD).
    STORE = 11
    #: Load-pair: cracked into two load micro-ops.
    LDP = 12
    #: Store-pair: cracked into two store micro-ops.
    STP = 13
    #: Conditional direct branch.
    BRANCH = 14
    #: Unconditional direct branch (always taken).
    JUMP = 15
    #: Indirect branch through a register (case statements, virtual calls).
    IBRANCH = 16
    #: Direct call (pushes return address on the RAS).
    CALL = 17
    #: Function return (pops the RAS, indirect by nature).
    RET = 18

    @property
    def is_branch(self) -> bool:
        """True for every control-flow instruction."""
        return OpClass.BRANCH <= self <= OpClass.RET

    @property
    def is_conditional_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_indirect(self) -> bool:
        """True for branches whose target comes from a register."""
        return self in (OpClass.IBRANCH, OpClass.RET)

    @property
    def is_load(self) -> bool:
        return self in (OpClass.LOAD, OpClass.LDP)

    @property
    def is_store(self) -> bool:
        return self in (OpClass.STORE, OpClass.STP)

    @property
    def is_mem(self) -> bool:
        return OpClass.LOAD <= self <= OpClass.STP

    @property
    def is_fp(self) -> bool:
        """True for operations executed by the FP/SIMD cluster."""
        return self in (
            OpClass.FPALU,
            OpClass.FPMUL,
            OpClass.FPDIV,
            OpClass.FCVT,
            OpClass.SIMD_ALU,
            OpClass.SIMD_MUL,
        )

    @property
    def is_pair(self) -> bool:
        """True for load-pair/store-pair instructions (2 micro-ops)."""
        return self in (OpClass.LDP, OpClass.STP)


#: Fast membership sets used in hot loops (IntEnum attribute access is
#: comparatively slow; the timing models index these frozensets of ints).
BRANCH_CLASSES = frozenset(
    int(c) for c in (OpClass.BRANCH, OpClass.JUMP, OpClass.IBRANCH, OpClass.CALL, OpClass.RET)
)
LOAD_CLASSES = frozenset(int(c) for c in (OpClass.LOAD, OpClass.LDP))
STORE_CLASSES = frozenset(int(c) for c in (OpClass.STORE, OpClass.STP))
MEM_CLASSES = LOAD_CLASSES | STORE_CLASSES
FP_CLASSES = frozenset(
    int(c)
    for c in (
        OpClass.FPALU,
        OpClass.FPMUL,
        OpClass.FPDIV,
        OpClass.FCVT,
        OpClass.SIMD_ALU,
        OpClass.SIMD_MUL,
    )
)
INDIRECT_CLASSES = frozenset(int(c) for c in (OpClass.IBRANCH, OpClass.RET))
