"""Architectural register namespace.

The synthetic ISA has 31 general-purpose integer registers (``X0``-``X30``,
with ``X31`` acting as the zero register, writes to which are discarded —
mirroring AArch64's XZR) and 32 FP/SIMD registers (``V0``-``V31``).

Internally every register is a small integer so the timing models can use
flat arrays for scoreboards: integer registers occupy ids ``0..31`` and FP
registers ids ``32..63``. ``NO_REG`` (-1) marks an absent operand.
"""

from __future__ import annotations

INT_REG_COUNT = 32
FP_REG_COUNT = 32
TOTAL_REG_COUNT = INT_REG_COUNT + FP_REG_COUNT

#: Sentinel for "no operand".
NO_REG = -1

#: The integer zero register (AArch64 XZR): reads are always ready and
#: writes are discarded by the scoreboard.
ZERO_REG = 31

#: Conventional link register used by CALL/RET.
LINK_REG = 30

#: Conventional stack pointer (not specially modelled, named for programs).
SP_REG = 29


def int_reg(n: int) -> int:
    """Return the flat register id of integer register ``Xn``."""
    if not 0 <= n < INT_REG_COUNT:
        raise ValueError(f"integer register index out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Return the flat register id of FP/SIMD register ``Vn``."""
    if not 0 <= n < FP_REG_COUNT:
        raise ValueError(f"FP register index out of range: {n}")
    return INT_REG_COUNT + n


def is_fp_reg(reg: int) -> bool:
    """True if the flat id ``reg`` names an FP/SIMD register."""
    return reg >= INT_REG_COUNT


def reg_name(reg: int) -> str:
    """Human-readable name of a flat register id (for disassembly)."""
    if reg == NO_REG:
        return "-"
    if reg == ZERO_REG:
        return "xzr"
    if reg < INT_REG_COUNT:
        return f"x{reg}"
    if reg < TOTAL_REG_COUNT:
        return f"v{reg - INT_REG_COUNT}"
    raise ValueError(f"invalid register id: {reg}")
