"""Fixed-width 32-bit instruction encoding.

Layout (most-significant bit first)::

    [31:27] opclass   (5 bits)  — :class:`repro.isa.opclasses.OpClass`
    [26:20] dst       (7 bits)  — flat register id + 1 (0 means NO_REG)
    [19:13] src1      (7 bits)  — flat register id + 1 (0 means NO_REG)
    [12: 6] src2      (7 bits)  — flat register id + 1 (0 means NO_REG)
    [ 5: 0] imm6      (6 bits)  — small immediate / scale hint

The +1 bias lets the all-zero field mean "no operand" so that a zero word
decodes to a plain NOP with no register traffic, as on most real ISAs.
"""

from __future__ import annotations

from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, TOTAL_REG_COUNT


class EncodingError(ValueError):
    """Raised when a word or field set cannot be encoded/decoded."""


_OPCLASS_SHIFT = 27
_DST_SHIFT = 20
_SRC1_SHIFT = 13
_SRC2_SHIFT = 6
_REG_MASK = 0x7F
_IMM_MASK = 0x3F
_MAX_OPCLASS = max(int(c) for c in OpClass)


def _encode_reg(reg: int) -> int:
    if reg == NO_REG:
        return 0
    if not 0 <= reg < TOTAL_REG_COUNT:
        raise EncodingError(f"register id out of range: {reg}")
    return reg + 1


def _decode_reg(field: int) -> int:
    return field - 1 if field else NO_REG


def encode(
    opclass: OpClass,
    dst: int = NO_REG,
    src1: int = NO_REG,
    src2: int = NO_REG,
    imm: int = 0,
) -> int:
    """Encode an instruction into a 32-bit word."""
    if not 0 <= int(opclass) <= _MAX_OPCLASS:
        raise EncodingError(f"invalid opclass: {opclass!r}")
    if not 0 <= imm <= _IMM_MASK:
        raise EncodingError(f"immediate out of range [0, 63]: {imm}")
    return (
        (int(opclass) << _OPCLASS_SHIFT)
        | (_encode_reg(dst) << _DST_SHIFT)
        | (_encode_reg(src1) << _SRC1_SHIFT)
        | (_encode_reg(src2) << _SRC2_SHIFT)
        | imm
    )


def decode_fields(word: int) -> tuple:
    """Decode a 32-bit word into ``(opclass, dst, src1, src2, imm)``.

    Raises :class:`EncodingError` on an undefined opclass or an operand
    field that names a register outside the architectural file.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word out of 32-bit range: {word:#x}")
    opclass_bits = word >> _OPCLASS_SHIFT
    if opclass_bits > _MAX_OPCLASS:
        raise EncodingError(f"undefined opclass {opclass_bits} in word {word:#010x}")
    dst = _decode_reg((word >> _DST_SHIFT) & _REG_MASK)
    src1 = _decode_reg((word >> _SRC1_SHIFT) & _REG_MASK)
    src2 = _decode_reg((word >> _SRC2_SHIFT) & _REG_MASK)
    for reg in (dst, src1, src2):
        if reg != NO_REG and reg >= TOTAL_REG_COUNT:
            raise EncodingError(f"operand register {reg} out of range in {word:#010x}")
    return OpClass(opclass_bits), dst, src1, src2, word & _IMM_MASK
