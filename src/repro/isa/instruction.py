"""Decoded-instruction value type shared by the decoder and timing models."""

from __future__ import annotations

from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG, reg_name


class DecodedInst:
    """The decoder's view of one instruction word.

    Instances are interned per unique word by :class:`repro.isa.decoder.
    Decoder`, so identity comparison is safe within one decoder and the
    timing models can hold millions of references cheaply.
    """

    __slots__ = ("word", "opclass", "dst", "src1", "src2", "imm")

    def __init__(
        self,
        word: int,
        opclass: OpClass,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        imm: int = 0,
    ) -> None:
        self.word = word
        self.opclass = opclass
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.imm = imm

    def sources(self) -> tuple:
        """The register sources actually present (no NO_REG entries)."""
        return tuple(r for r in (self.src1, self.src2) if r != NO_REG)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecodedInst):
            return NotImplemented
        return (
            self.word == other.word
            and self.opclass == other.opclass
            and self.dst == other.dst
            and self.src1 == other.src1
            and self.src2 == other.src2
            and self.imm == other.imm
        )

    def __hash__(self) -> int:
        return hash((self.word, self.opclass, self.dst, self.src1, self.src2, self.imm))

    def __repr__(self) -> str:
        ops = ", ".join(
            reg_name(r) for r in (self.dst, self.src1, self.src2) if r != NO_REG
        )
        return f"<{self.opclass.name} {ops} imm={self.imm}>"
