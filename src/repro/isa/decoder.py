"""Decoder library — the reproduction's Capstone stand-in.

Sniper-ARM replaced the x86 XED libraries with Capstone to decode AArch64
words for the timing back-end. Our :class:`Decoder` plays that role for the
synthetic encoding. Decoded instructions are interned per word, because a
trace contains the same static word many times and the timing models decode
on every dynamic occurrence.

The paper reports (§IV-B) that validation uncovered *bugs in the Capstone
decoder library that led to errors in modelling dependencies across
instructions*. :class:`BuggyDecoder` reproduces that failure mode: for
floating-point operations it drops the second source register, silently
breaking dependence chains exactly the way a register-extraction bug would.
Benchmarks use it to show the CPI error signature such a bug produces and
how the micro-benchmark suite isolates it.
"""

from __future__ import annotations

from repro.isa.encoding import decode_fields
from repro.isa.instruction import DecodedInst
from repro.isa.opclasses import FP_CLASSES
from repro.isa.registers import NO_REG


def decoder_library(decoder) -> tuple:
    """Identity of a decoder *library*: class plus reported ``name``.

    Decoding is pure per class, so all instances of one decoder class
    are interchangeable. This single identity rule backs both the trace
    decode cache and the evaluation engine's result-cache keys.

    Contract for subclasses: any constructor parameter that changes
    decoding behaviour MUST be reflected in the instance's ``name`` —
    that is what separates the cached decode streams and simulation
    results of two differently-parameterised instances.
    """
    cls = type(decoder)
    return (cls.__module__, cls.__qualname__, getattr(decoder, "name", cls.__name__))


class Decoder:
    """Decodes 32-bit words into interned :class:`DecodedInst` objects."""

    #: Human-readable library identity (appears in simulator stats).
    name = "capstone-like"

    def __init__(self) -> None:
        self._cache: dict = {}

    def decode(self, word: int) -> DecodedInst:
        """Decode ``word``; results are cached per unique word."""
        inst = self._cache.get(word)
        if inst is None:
            inst = self._decode_uncached(word)
            self._cache[word] = inst
        return inst

    def decode_many(self, words) -> list:
        """Decode an iterable of words (convenience for trace pre-decode)."""
        decode = self.decode
        return [decode(w) for w in words]

    def cache_size(self) -> int:
        """Number of unique words decoded so far."""
        return len(self._cache)

    def _decode_uncached(self, word: int) -> DecodedInst:
        opclass, dst, src1, src2, imm = decode_fields(word)
        return DecodedInst(word, opclass, dst, src1, src2, imm)


class BuggyDecoder(Decoder):
    """Decoder with a deliberate FP source-register extraction bug.

    Mirrors the Capstone bugs found during the paper's validation: the
    second source operand of floating-point/SIMD instructions is lost, so
    the timing model misses RAW dependencies through that operand and
    under-predicts the CPI of dependence-chain-bound FP kernels.
    """

    name = "capstone-like (buggy FP sources)"

    def _decode_uncached(self, word: int) -> DecodedInst:
        opclass, dst, src1, src2, imm = decode_fields(word)
        if int(opclass) in FP_CLASSES:
            src2 = NO_REG
        return DecodedInst(word, opclass, dst, src1, src2, imm)
