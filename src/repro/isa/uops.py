"""Micro-op expansion.

The cores we model crack a small number of instructions into multiple
micro-ops. In this reproduction only the pair memory operations (LDP/STP)
are cracked — into two loads/stores hitting consecutive addresses — which
is the behaviour the contention models need to account for when assessing
load/store-unit occupancy.
"""

from __future__ import annotations

from repro.isa.instruction import DecodedInst
from repro.isa.opclasses import OpClass
from repro.isa.registers import NO_REG


class MicroOp:
    """One micro-operation as seen by the back-end timing model."""

    __slots__ = ("opclass", "dst", "src1", "src2", "addr_offset")

    def __init__(
        self,
        opclass: OpClass,
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        addr_offset: int = 0,
    ) -> None:
        self.opclass = opclass
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        #: Byte offset from the parent instruction's effective address
        #: (used by the second half of a cracked pair access).
        self.addr_offset = addr_offset

    def __repr__(self) -> str:
        return (
            f"MicroOp({self.opclass.name}, dst={self.dst}, "
            f"src1={self.src1}, src2={self.src2}, +{self.addr_offset})"
        )


def expand_to_uops(inst: DecodedInst) -> list:
    """Expand a decoded instruction into its micro-ops.

    Non-pair instructions map to a single micro-op with the same operand
    footprint. ``LDP`` cracks into two ``LOAD`` micro-ops whose second
    destination is ``dst + 1`` (pair registers are architecturally
    adjacent); ``STP`` cracks into two ``STORE`` micro-ops reading ``src2``
    and ``src2 + 1``.
    """
    opclass = inst.opclass
    if opclass is OpClass.LDP:
        second_dst = inst.dst + 1 if inst.dst != NO_REG else NO_REG
        return [
            MicroOp(OpClass.LOAD, inst.dst, inst.src1, NO_REG, 0),
            MicroOp(OpClass.LOAD, second_dst, inst.src1, NO_REG, 8),
        ]
    if opclass is OpClass.STP:
        second_data = inst.src2 + 1 if inst.src2 != NO_REG else NO_REG
        return [
            MicroOp(OpClass.STORE, NO_REG, inst.src1, inst.src2, 0),
            MicroOp(OpClass.STORE, NO_REG, inst.src1, second_data, 8),
        ]
    return [MicroOp(opclass, inst.dst, inst.src1, inst.src2, 0)]
