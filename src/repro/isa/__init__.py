"""Synthetic AArch64-like instruction-set architecture.

This package is the reproduction's stand-in for the ARM AArch64 ISA plus
the Capstone decoder library used by the paper's Sniper-ARM front-end. It
defines:

- :mod:`repro.isa.opclasses` — the operation classes the timing models
  reason about (integer/FP/SIMD execution, loads/stores, branches).
- :mod:`repro.isa.registers` — the architectural register file namespace.
- :mod:`repro.isa.encoding` — a fixed-width 32-bit instruction encoding.
- :mod:`repro.isa.decoder` — the decoder library (including a deliberately
  buggy mode reproducing the paper's Capstone dependency-extraction bugs).
- :mod:`repro.isa.uops` — micro-op expansion (load/store-pair cracking).
"""

from repro.isa.opclasses import OpClass
from repro.isa.registers import (
    INT_REG_COUNT,
    FP_REG_COUNT,
    NO_REG,
    int_reg,
    fp_reg,
    is_fp_reg,
    reg_name,
)
from repro.isa.encoding import encode, decode_fields, EncodingError
from repro.isa.instruction import DecodedInst
from repro.isa.decoder import Decoder, BuggyDecoder
from repro.isa.uops import MicroOp, expand_to_uops

__all__ = [
    "OpClass",
    "INT_REG_COUNT",
    "FP_REG_COUNT",
    "NO_REG",
    "int_reg",
    "fp_reg",
    "is_fp_reg",
    "reg_name",
    "encode",
    "decode_fields",
    "EncodingError",
    "DecodedInst",
    "Decoder",
    "BuggyDecoder",
    "MicroOp",
    "expand_to_uops",
]
