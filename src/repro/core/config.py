"""Simulator configuration tree.

Sniper "features a couple hundred configuration parameters ... about a
hundred parameters that define the simulated processor" (§IV-A). This
module is our equivalent: a nested dataclass tree covering pipeline
geometry, functional units and latencies, branch prediction, all three
cache levels, the store buffer and main memory.

Two access styles coexist:

- structured: ``config.l1d.hit_latency``;
- dotted paths: ``config.get("l1d.hit_latency")`` /
  ``config.with_updates({"l1d.hit_latency": 3})`` — the interface the
  racing tuner uses, since its parameter lists are flat name/value pairs.

``cortex_a53_public_config`` and ``cortex_a72_public_config`` encode step
#1 of the validation methodology: everything the public technical
reference manuals disclose, with best-effort guesses (step #3 defaults)
everywhere else.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's parameters."""

    size: int
    assoc: int
    line_size: int = 64
    hit_latency: int = 2
    serial_tag_data: bool = False
    ports: int = 1
    mshr_entries: int = 4
    hashing: str = "mask"
    replacement: str = "lru"
    victim_entries: int = 0
    prefetcher: str = "none"
    prefetch_degree: int = 2
    prefetch_table_entries: int = 64
    prefetch_on_hit: bool = False


@dataclass(frozen=True)
class BranchConfig:
    """Branch prediction unit parameters."""

    predictor: str = "bimodal"
    predictor_bits: int = 12
    btb_entries: int = 256
    btb_assoc: int = 2
    ras_entries: int = 8
    indirect: str = "none"
    indirect_entries: int = 256
    indirect_history_bits: int = 8
    #: Full pipeline-flush penalty (direction / indirect / RAS wrong).
    mispredict_penalty: int = 8
    #: Front-end bubble when the direction was right but the target was
    #: unknown (BTB miss on a taken branch).
    btb_miss_penalty: int = 3


@dataclass(frozen=True)
class ExecConfig:
    """Functional-unit counts and operation latencies."""

    n_ialu: int = 2
    n_imul: int = 1
    n_fpu: int = 1
    n_ls_pipes: int = 1
    imul_latency: int = 3
    idiv_latency: int = 12
    idiv_pipelined: bool = False
    fpalu_latency: int = 4
    fpmul_latency: int = 4
    fpdiv_latency: int = 12
    fpdiv_pipelined: bool = False
    fcvt_latency: int = 3
    simd_alu_latency: int = 3
    simd_mul_latency: int = 4
    #: Address-generation cycles added before a memory access.
    agu_latency: int = 1


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline geometry (some fields are OoO-only)."""

    fetch_width: int = 2
    issue_width: int = 2
    commit_width: int = 2
    #: Fetch-to-issue depth; contributes to the mispredict penalty floor.
    frontend_depth: int = 4
    rob_size: int = 128
    iq_size: int = 32
    ldq_entries: int = 16
    stq_entries: int = 16
    #: Enforce in-order dual-issue pairing restrictions (A53-style).
    dual_issue_rules: bool = True
    #: Stall at first use of a missing load (True) or at the load itself.
    stall_on_use: bool = True


@dataclass(frozen=True)
class MemSysConfig:
    """Store buffer and main-memory parameters."""

    store_buffer_entries: int = 6
    store_coalescing: bool = False
    store_forward_latency: int = 1
    dram_latency: int = 150
    dram_page_hit_latency: int = 90
    dram_banks: int = 8
    dram_bandwidth: int = 4
    dram_page_policy: str = "open"


@dataclass(frozen=True)
class SimConfig:
    """Complete description of one simulated processor."""

    core_type: str  # "inorder" or "ooo"
    name: str = "custom"
    frequency_ghz: float = 1.5
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    execute: ExecConfig = field(default_factory=ExecConfig)
    branch: BranchConfig = field(default_factory=BranchConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(size=32 * 1024, assoc=2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(size=32 * 1024, assoc=4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=512 * 1024, assoc=16, hit_latency=12)
    )
    memsys: MemSysConfig = field(default_factory=MemSysConfig)

    def __post_init__(self) -> None:
        if self.core_type not in ("inorder", "ooo"):
            raise ValueError(f"core_type must be 'inorder' or 'ooo', got {self.core_type!r}")
        # Eagerly validate every component-name field against the
        # registry, so a typo like ``prefetcher="strid"`` fails here —
        # with a did-you-mean — instead of deep inside a simulation.
        # Imported lazily: the registry catalog imports the component
        # implementations, which must stay importable without this
        # module being fully initialised.
        from repro.components import validate_config_components

        validate_config_components(self)

    # ------------------------------------------------------------------
    # Dotted-path access (the tuner's interface)
    # ------------------------------------------------------------------
    _SECTIONS = ("pipeline", "execute", "branch", "l1i", "l1d", "l2", "memsys")

    def get(self, path: str):
        """Read a parameter by dotted path, e.g. ``"l1d.prefetcher"``."""
        obj = self
        for part in path.split("."):
            if not hasattr(obj, part):
                raise KeyError(f"unknown config path {path!r} (no field {part!r})")
            obj = getattr(obj, part)
        return obj

    def with_updates(self, updates: dict) -> "SimConfig":
        """Return a copy with dotted-path ``updates`` applied.

        Every key is validated up front — unknown sections, fields and
        top-level names raise ``KeyError`` with a did-you-mean built
        from the valid paths — and the copy's ``__post_init__`` then
        validates component-name *values* against the registry, so a
        bad ``--set`` fails before any simulation starts.
        """
        from repro.components import suggest

        top_fields = {f.name for f in dataclasses.fields(self)}
        per_section: dict = {}
        top_level: dict = {}
        for path, value in updates.items():
            parts = path.split(".")
            if len(parts) == 1:
                if parts[0] in self._SECTIONS:
                    raise KeyError(f"{path!r} names a section; use 'section.field'")
                if parts[0] not in top_fields:
                    raise KeyError(
                        f"unknown config path {path!r}; "
                        + suggest(path, self.flatten())
                    )
                top_level[parts[0]] = value
            elif len(parts) == 2:
                section, fieldname = parts
                if section not in self._SECTIONS:
                    raise KeyError(
                        f"unknown config section {section!r} in {path!r}; "
                        + suggest(section, self._SECTIONS)
                    )
                per_section.setdefault(section, {})[fieldname] = value
            else:
                raise KeyError(f"config paths have at most two components: {path!r}")

        replacements: dict = dict(top_level)
        for section, fields in per_section.items():
            current = getattr(self, section)
            valid = {f.name for f in dataclasses.fields(current)}
            unknown = set(fields) - valid
            if unknown:
                hints = "; ".join(
                    suggest(f"{section}.{name}",
                            [f"{section}.{v}" for v in sorted(valid)])
                    for name in sorted(unknown)
                )
                raise KeyError(
                    f"unknown fields {sorted(unknown)} in section {section!r}; {hints}"
                )
            replacements[section] = dataclasses.replace(current, **fields)
        return dataclasses.replace(self, **replacements)

    def flatten(self) -> dict:
        """All parameters as a flat dotted-path dict."""
        out: dict = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name in self._SECTIONS:
                for sub in dataclasses.fields(value):
                    out[f"{f.name}.{sub.name}"] = getattr(value, sub.name)
            else:
                out[f.name] = value
        return out


# ----------------------------------------------------------------------
# Public-information configurations (methodology step #1 + #3 defaults)
# ----------------------------------------------------------------------

def cortex_a53_public_config() -> SimConfig:
    """In-order model from publicly disclosed Cortex-A53 information.

    Disclosed (TRM / product brief): dual-issue in-order 8-stage
    pipeline, 32 KB 4-way L1D, 32 KB 2-way L1I, 512 KB 16-way shared L2,
    1.51 GHz on the validation board. Everything else is a best-effort
    guess the validation methodology will have to correct.
    """
    return SimConfig(
        core_type="inorder",
        name="cortex-a53-public",
        frequency_ghz=1.51,
        pipeline=PipelineConfig(
            fetch_width=2,
            issue_width=2,
            commit_width=2,
            frontend_depth=4,
            dual_issue_rules=True,
            stall_on_use=True,
        ),
        # Divide latencies taken from dated processor documentation — the
        # kind of best-effort guess §IV-B shows blowing up the
        # dependence-chain micro-benchmarks before tuning.
        execute=ExecConfig(idiv_latency=20, fpdiv_latency=20),
        branch=BranchConfig(predictor="bimodal", mispredict_penalty=8),
        l1i=CacheConfig(size=32 * 1024, assoc=2, hit_latency=1, ports=1),
        l1d=CacheConfig(size=32 * 1024, assoc=4, hit_latency=2, ports=1),
        l2=CacheConfig(size=512 * 1024, assoc=16, hit_latency=12, ports=1, mshr_entries=8),
        memsys=MemSysConfig(store_buffer_entries=6),
    )


def cortex_a72_public_config() -> SimConfig:
    """Out-of-order model from publicly disclosed Cortex-A72 information.

    Disclosed: 3-wide decode/dispatch out-of-order core, 32 KB 2-way L1D,
    48 KB 3-way L1I, 1 MB 16-way L2, 1.99 GHz on the validation board.
    ROB/queue sizes, unit latencies and all specialised components are
    best-effort guesses.
    """
    return SimConfig(
        core_type="ooo",
        name="cortex-a72-public",
        frequency_ghz=1.99,
        pipeline=PipelineConfig(
            fetch_width=3,
            issue_width=5,
            commit_width=3,
            frontend_depth=9,
            rob_size=128,
            iq_size=48,
            ldq_entries=16,
            stq_entries=16,
            dual_issue_rules=False,
            stall_on_use=True,
        ),
        execute=ExecConfig(
            n_ialu=2,
            n_imul=1,
            n_fpu=2,
            n_ls_pipes=2,
            imul_latency=4,
            idiv_latency=16,
            fpalu_latency=4,
            fpmul_latency=4,
            fpdiv_latency=16,
        ),
        branch=BranchConfig(predictor="gshare", predictor_bits=12, mispredict_penalty=12),
        l1i=CacheConfig(size=48 * 1024, assoc=3, hit_latency=1, ports=1),
        l1d=CacheConfig(size=32 * 1024, assoc=2, hit_latency=3, ports=1, mshr_entries=6),
        l2=CacheConfig(size=1024 * 1024, assoc=16, hit_latency=14, ports=1, mshr_entries=12),
        memsys=MemSysConfig(store_buffer_entries=8),
    )
