"""In-order core timing model (Cortex-A53-like).

A one-pass timestamp scoreboard in the Sniper high-abstraction style:
instructions are processed in program order; for each one we compute the
earliest cycle it can issue given front-end availability (I-cache, branch
redirects), register dependences, dual-issue slot/pairing limits and
functional-unit contention, then account its completion. No structure is
simulated cycle-by-cycle, which is what makes thousands of tuning runs
affordable — the paper's core argument for using Sniper.
"""

from __future__ import annotations

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import (
    REDIRECT_BTB,
    REDIRECT_MISPREDICT,
    REDIRECT_NONE,
    BranchUnit,
    build_direction_predictor,
    build_indirect_predictor,
)
from repro.core.config import SimConfig
from repro.core.contention import ContentionModel
from repro.core.stats import SimStats
from repro.isa.opclasses import OpClass
from repro.isa.registers import INT_REG_COUNT, TOTAL_REG_COUNT, ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import Trace, build_stream

_NOP = int(OpClass.NOP)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_LDP = int(OpClass.LDP)
_STP = int(OpClass.STP)
_BRANCH_FIRST = int(OpClass.BRANCH)
_BRANCH_LAST = int(OpClass.RET)
_IMUL = int(OpClass.IMUL)
_IDIV = int(OpClass.IDIV)
_FP_FIRST = int(OpClass.FPALU)
_FP_LAST = int(OpClass.SIMD_MUL)


def _build_branch_unit(config: SimConfig) -> BranchUnit:
    b = config.branch
    return BranchUnit(
        direction=build_direction_predictor(b.predictor, b.predictor_bits),
        btb=BranchTargetBuffer(entries=b.btb_entries, assoc=b.btb_assoc),
        ras=ReturnAddressStack(entries=b.ras_entries),
        indirect=build_indirect_predictor(
            b.indirect, b.indirect_entries, b.indirect_history_bits
        ),
    )


class InOrderCore:
    """Dual-issue in-order pipeline model."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        if config.core_type != "inorder":
            raise ValueError(f"InOrderCore requires core_type='inorder', got {config.core_type!r}")
        self.config = config
        self.effects = effects
        self.hierarchy = MemoryHierarchy(config, effects=effects)
        self.contention = ContentionModel(config.execute)
        self.branch_unit = _build_branch_unit(config)

    def run(self, trace: Trace, decoded: list) -> SimStats:
        """Replay ``trace`` (pre-decoded as ``decoded``) and account cycles.

        Compatibility wrapper: flattens the records on the fly and defers
        to :meth:`run_stream`. Callers with a memoised stream (the
        simulator) should use :meth:`run_stream` directly.
        """
        return self.run_stream(trace, build_stream(trace.records, decoded))

    def run_stream(self, trace: Trace, stream: list) -> SimStats:
        """Replay the flattened ``stream`` of ``trace`` and account cycles."""
        cfg = self.config
        pipeline = cfg.pipeline
        issue_width = pipeline.issue_width
        dual_rules = pipeline.dual_issue_rules
        stall_on_use = pipeline.stall_on_use
        frontend_depth = pipeline.frontend_depth
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch_line = hierarchy.ifetch_line
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        # Contention dispatch inlined below: one dense-table fetch per
        # instruction replaces the probe() + commit() call pair (the
        # single hottest call overhead of the loop). Entries are
        # (unit next-free list | None, latency, occupancy, unit count).
        contention_fast = self.contention._fast
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)  # slot -1 aliases the pad
        cycle = frontend_depth  # pipeline fill
        slots_used = 0
        issued_mul = False
        issued_fp = False
        frontend_ready = frontend_depth
        stall_until = 0
        current_line = -1
        max_done = 0

        for opclass, kind, dst, src1, src2, pc, addr, taken, target in stream:
            cfree, latency, occupancy, nunits = contention_fast[opclass]

            # ---------------------------------------------- front end
            pc_line = pc // line_size
            if pc_line != current_line:
                fetch_base = cycle if cycle > frontend_ready else frontend_ready
                done = ifetch_line(pc_line, fetch_base, False, False, pc)
                extra = done - fetch_base - l1i_hit
                if extra > 0:
                    # Hits are pipelined and hidden; only the miss stalls.
                    frontend_ready = fetch_base + extra
                current_line = pc_line

            # ---------------------------------------------- issue time
            t = cycle
            if frontend_ready > t:
                t = frontend_ready
            if stall_until > t:
                t = stall_until
            # NO_REG (-1) aliases the always-zero pad slot, so source
            # reads need no bounds check.
            rr = reg_ready[src1]
            if rr > t:
                t = rr
            rr = reg_ready[src2]
            if rr > t:
                t = rr

            if t == cycle:
                # Inlined ContentionModel.pairing_conflict (A53 dual-issue
                # rules): MUL-class and FP-class ops never pair.
                if slots_used >= issue_width:
                    t = cycle + 1
                elif dual_rules and kind & 48:  # KF_MUL | KF_FP
                    if kind & 16:
                        if issued_fp:
                            t = cycle + 1
                    elif issued_mul:
                        t = cycle + 1

            # Inlined ContentionModel.probe: wait for a free unit.
            if cfree is not None:
                # bi = the least-loaded unit, reused by the commit
                # below (no pool changes between probe and commit).
                if nunits == 1:
                    bi = 0
                    best = cfree[0]
                elif nunits == 2:
                    b = cfree[1]
                    best = cfree[0]
                    if b < best:
                        best = b
                        bi = 1
                    else:
                        bi = 0
                else:
                    best = min(cfree)
                if best > t:
                    t = best

            if t == cycle:
                slots_used += 1
            else:
                cycle = t
                slots_used = 1
                issued_mul = False
                issued_fp = False
            if kind & 48:
                if kind & 16:
                    issued_mul = True
                else:
                    issued_fp = True

            # ---------------------------------------------- execute
            if kind & 8:  # KF_NOP
                continue

            # Inlined ContentionModel.commit: book the least-loaded unit
            # and compute the completion cycle. Pools are untouched by
            # the memory system, so booking before the hierarchy calls
            # is order-equivalent to the per-branch commit() calls.
            if cfree is not None:
                if nunits <= 2:
                    cfree[bi] = t + occupancy
                else:
                    best = 0
                    best_free = cfree[0]
                    for u in range(1, nunits):
                        if cfree[u] < best_free:
                            best_free = cfree[u]
                            best = u
                    cfree[best] = t + occupancy
            done = t + latency

            if not kind & 15:  # plain register op (incl. MUL/FP classes)
                if dst >= 0 and not (dst == ZERO_REG and dst < INT_REG_COUNT):
                    reg_ready[dst] = done
                if done > max_done:
                    max_done = done
            elif kind & 4:  # KF_BRANCH
                redirect = branch_access(opclass, pc, taken, target)
                if redirect == REDIRECT_MISPREDICT:
                    frontend_ready = t + mispredict_penalty
                    current_line = -1
                elif redirect == REDIRECT_BTB:
                    frontend_ready = t + btb_miss_penalty
                    current_line = -1
                elif taken:
                    # Correct taken prediction still restarts the fetch
                    # line; hardware-only extra bubbles hook in here.
                    current_line = -1
                    if branch_extra is not None:
                        frontend_ready = t + branch_extra()
            elif kind & 1:  # KF_LOAD
                data = load(addr, pc, t + agu_latency)
                if dst >= 0 and dst != ZERO_REG:
                    reg_ready[dst] = data
                    if kind & 64 and dst + 1 < TOTAL_REG_COUNT:  # KF_PAIR
                        reg_ready[dst + 1] = data + 1
                if not stall_on_use:
                    stall_until = data
                if data > max_done:
                    max_done = data
            else:  # KF_STORE
                ok = store(addr, pc, t + agu_latency)
                if ok > t + agu_latency:
                    stall_until = ok

        total_cycles = max(cycle, max_done)
        return self._stats(trace, total_cycles)

    def stream_runner(self, trace):
        """Resumable kernel for batched simulation: a generator that
        consumes issue-tuple chunks via ``send`` and returns this run's
        :class:`SimStats` when sent ``None``.

        The pipeline state lives in the generator's locals, so the body
        below is a verbatim copy of :meth:`run_stream`'s loop — chunk
        boundaries only split the iteration, they cannot change any
        timestamp. ``run_stream`` stays the reference implementation;
        the golden batch tests pin the two bit-identical.
        """
        cfg = self.config
        pipeline = cfg.pipeline
        issue_width = pipeline.issue_width
        dual_rules = pipeline.dual_issue_rules
        stall_on_use = pipeline.stall_on_use
        frontend_depth = pipeline.frontend_depth
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch_line = hierarchy.ifetch_line
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        contention_fast = self.contention._fast
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)  # slot -1 aliases the pad
        cycle = frontend_depth  # pipeline fill
        slots_used = 0
        issued_mul = False
        issued_fp = False
        frontend_ready = frontend_depth
        stall_until = 0
        current_line = -1
        max_done = 0

        while True:
            chunk = yield
            if chunk is None:
                break
            for opclass, kind, dst, src1, src2, pc, addr, taken, target in chunk:
                cfree, latency, occupancy, nunits = contention_fast[opclass]

                # ------------------------------------------ front end
                pc_line = pc // line_size
                if pc_line != current_line:
                    fetch_base = cycle if cycle > frontend_ready else frontend_ready
                    done = ifetch_line(pc_line, fetch_base, False, False, pc)
                    extra = done - fetch_base - l1i_hit
                    if extra > 0:
                        frontend_ready = fetch_base + extra
                    current_line = pc_line

                # ------------------------------------------ issue time
                t = cycle
                if frontend_ready > t:
                    t = frontend_ready
                if stall_until > t:
                    t = stall_until
                rr = reg_ready[src1]
                if rr > t:
                    t = rr
                rr = reg_ready[src2]
                if rr > t:
                    t = rr

                if t == cycle:
                    if slots_used >= issue_width:
                        t = cycle + 1
                    elif dual_rules and kind & 48:  # KF_MUL | KF_FP
                        if kind & 16:
                            if issued_fp:
                                t = cycle + 1
                        elif issued_mul:
                            t = cycle + 1

                if cfree is not None:
                    if nunits == 1:
                        bi = 0
                        best = cfree[0]
                    elif nunits == 2:
                        b = cfree[1]
                        best = cfree[0]
                        if b < best:
                            best = b
                            bi = 1
                        else:
                            bi = 0
                    else:
                        best = min(cfree)
                    if best > t:
                        t = best

                if t == cycle:
                    slots_used += 1
                else:
                    cycle = t
                    slots_used = 1
                    issued_mul = False
                    issued_fp = False
                if kind & 48:
                    if kind & 16:
                        issued_mul = True
                    else:
                        issued_fp = True

                # ------------------------------------------ execute
                if kind & 8:  # KF_NOP
                    continue

                if cfree is not None:
                    if nunits <= 2:
                        cfree[bi] = t + occupancy
                    else:
                        best = 0
                        best_free = cfree[0]
                        for u in range(1, nunits):
                            if cfree[u] < best_free:
                                best_free = cfree[u]
                                best = u
                        cfree[best] = t + occupancy
                done = t + latency

                if not kind & 15:  # plain register op (incl. MUL/FP classes)
                    if dst >= 0 and not (dst == ZERO_REG and dst < INT_REG_COUNT):
                        reg_ready[dst] = done
                    if done > max_done:
                        max_done = done
                elif kind & 4:  # KF_BRANCH
                    redirect = branch_access(opclass, pc, taken, target)
                    if redirect == REDIRECT_MISPREDICT:
                        frontend_ready = t + mispredict_penalty
                        current_line = -1
                    elif redirect == REDIRECT_BTB:
                        frontend_ready = t + btb_miss_penalty
                        current_line = -1
                    elif taken:
                        current_line = -1
                        if branch_extra is not None:
                            frontend_ready = t + branch_extra()
                elif kind & 1:  # KF_LOAD
                    data = load(addr, pc, t + agu_latency)
                    if dst >= 0 and dst != ZERO_REG:
                        reg_ready[dst] = data
                        if kind & 64 and dst + 1 < TOTAL_REG_COUNT:  # KF_PAIR
                            reg_ready[dst + 1] = data + 1
                    if not stall_on_use:
                        stall_until = data
                    if data > max_done:
                        max_done = data
                else:  # KF_STORE
                    ok = store(addr, pc, t + agu_latency)
                    if ok > t + agu_latency:
                        stall_until = ok

        total_cycles = max(cycle, max_done)
        return self._stats(trace, total_cycles)

    def _stats(self, trace: Trace, cycles: int) -> SimStats:
        hierarchy = self.hierarchy
        return SimStats(
            config_name=self.config.name,
            workload=trace.name,
            instructions=len(trace),
            cycles=cycles,
            branch=self.branch_unit.stats,
            l1i=hierarchy.l1i.stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            store_buffer_full_stalls=hierarchy.store_buffer.full_stalls,
            store_forwards=hierarchy.store_buffer.forwards,
            dram_accesses=hierarchy.dram.accesses,
        )
