"""In-order core timing model (Cortex-A53-like).

A one-pass timestamp scoreboard in the Sniper high-abstraction style:
instructions are processed in program order; for each one we compute the
earliest cycle it can issue given front-end availability (I-cache, branch
redirects), register dependences, dual-issue slot/pairing limits and
functional-unit contention, then account its completion. No structure is
simulated cycle-by-cycle, which is what makes thousands of tuning runs
affordable — the paper's core argument for using Sniper.
"""

from __future__ import annotations

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import (
    REDIRECT_BTB,
    REDIRECT_MISPREDICT,
    REDIRECT_NONE,
    BranchUnit,
    build_direction_predictor,
    build_indirect_predictor,
)
from repro.core.config import SimConfig
from repro.core.contention import ContentionModel
from repro.core.stats import SimStats
from repro.isa.opclasses import OpClass
from repro.isa.registers import INT_REG_COUNT, TOTAL_REG_COUNT, ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import Trace

_NOP = int(OpClass.NOP)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_LDP = int(OpClass.LDP)
_STP = int(OpClass.STP)
_BRANCH_FIRST = int(OpClass.BRANCH)
_BRANCH_LAST = int(OpClass.RET)
_IMUL = int(OpClass.IMUL)
_IDIV = int(OpClass.IDIV)
_FP_FIRST = int(OpClass.FPALU)
_FP_LAST = int(OpClass.SIMD_MUL)


def _build_branch_unit(config: SimConfig) -> BranchUnit:
    b = config.branch
    return BranchUnit(
        direction=build_direction_predictor(b.predictor, b.predictor_bits),
        btb=BranchTargetBuffer(entries=b.btb_entries, assoc=b.btb_assoc),
        ras=ReturnAddressStack(entries=b.ras_entries),
        indirect=build_indirect_predictor(
            b.indirect, b.indirect_entries, b.indirect_history_bits
        ),
    )


class InOrderCore:
    """Dual-issue in-order pipeline model."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        if config.core_type != "inorder":
            raise ValueError(f"InOrderCore requires core_type='inorder', got {config.core_type!r}")
        self.config = config
        self.effects = effects
        self.hierarchy = MemoryHierarchy(config, effects=effects)
        self.contention = ContentionModel(config.execute)
        self.branch_unit = _build_branch_unit(config)

    def run(self, trace: Trace, decoded: list) -> SimStats:
        """Replay ``trace`` (pre-decoded as ``decoded``) and account cycles."""
        cfg = self.config
        pipeline = cfg.pipeline
        issue_width = pipeline.issue_width
        dual_rules = pipeline.dual_issue_rules
        stall_on_use = pipeline.stall_on_use
        frontend_depth = pipeline.frontend_depth
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch = hierarchy.ifetch
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        contention = self.contention
        probe = contention.probe
        commit = contention.commit
        pairing_conflict = contention.pairing_conflict
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)  # slot -1 aliases the pad
        cycle = frontend_depth  # pipeline fill
        slots_used = 0
        issued_mul = False
        issued_fp = False
        frontend_ready = frontend_depth
        stall_until = 0
        current_line = -1
        max_done = 0

        records = trace.records
        for i, inst in enumerate(decoded):
            rec = records[i]
            opclass = int(inst.opclass)
            pc = rec.pc

            # ---------------------------------------------- front end
            pc_line = pc // line_size
            if pc_line != current_line:
                fetch_base = cycle if cycle > frontend_ready else frontend_ready
                done = ifetch(pc, fetch_base)
                extra = done - fetch_base - l1i_hit
                if extra > 0:
                    # Hits are pipelined and hidden; only the miss stalls.
                    frontend_ready = fetch_base + extra
                current_line = pc_line

            # ---------------------------------------------- issue time
            t = cycle
            if frontend_ready > t:
                t = frontend_ready
            if stall_until > t:
                t = stall_until
            src1 = inst.src1
            if src1 >= 0 and reg_ready[src1] > t:
                t = reg_ready[src1]
            src2 = inst.src2
            if src2 >= 0 and reg_ready[src2] > t:
                t = reg_ready[src2]

            if t == cycle:
                if slots_used >= issue_width or (
                    dual_rules and pairing_conflict(opclass, issued_mul, issued_fp)
                ):
                    t = cycle + 1

            t2 = probe(opclass, t)
            if t2 > t:
                t = t2

            if t == cycle:
                slots_used += 1
            else:
                cycle = t
                slots_used = 1
                issued_mul = False
                issued_fp = False
            if _IMUL <= opclass <= _IDIV:
                issued_mul = True
            elif _FP_FIRST <= opclass <= _FP_LAST:
                issued_fp = True

            # ---------------------------------------------- execute
            if opclass == _NOP:
                continue

            if _BRANCH_FIRST <= opclass <= _BRANCH_LAST:
                done = commit(opclass, t)
                redirect = branch_access(opclass, pc, rec.taken, rec.target)
                if redirect == REDIRECT_MISPREDICT:
                    frontend_ready = t + mispredict_penalty
                    current_line = -1
                elif redirect == REDIRECT_BTB:
                    frontend_ready = t + btb_miss_penalty
                    current_line = -1
                elif rec.taken:
                    # Correct taken prediction still restarts the fetch
                    # line; hardware-only extra bubbles hook in here.
                    current_line = -1
                    if branch_extra is not None:
                        frontend_ready = t + branch_extra()
            elif opclass == _LOAD or opclass == _LDP:
                commit(opclass, t)
                data = load(rec.addr, pc, t + agu_latency)
                dst = inst.dst
                if dst >= 0 and dst != ZERO_REG:
                    reg_ready[dst] = data
                    if opclass == _LDP and dst + 1 < TOTAL_REG_COUNT:
                        reg_ready[dst + 1] = data + 1
                if not stall_on_use:
                    stall_until = data
                if data > max_done:
                    max_done = data
            elif opclass == _STORE or opclass == _STP:
                commit(opclass, t)
                ok = store(rec.addr, pc, t + agu_latency)
                if ok > t + agu_latency:
                    stall_until = ok
            else:
                done = commit(opclass, t)
                dst = inst.dst
                if dst >= 0 and not (dst == ZERO_REG and dst < INT_REG_COUNT):
                    reg_ready[dst] = done
                if done > max_done:
                    max_done = done

        total_cycles = max(cycle, max_done)
        return self._stats(trace, total_cycles)

    def _stats(self, trace: Trace, cycles: int) -> SimStats:
        hierarchy = self.hierarchy
        return SimStats(
            config_name=self.config.name,
            workload=trace.name,
            instructions=len(trace),
            cycles=cycles,
            branch=self.branch_unit.stats,
            l1i=hierarchy.l1i.stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            store_buffer_full_stalls=hierarchy.store_buffer.full_stalls,
            store_forwards=hierarchy.store_buffer.forwards,
            dram_accesses=hierarchy.dram.accesses,
        )
