"""Out-of-order core timing model (Cortex-A72-like).

A timestamp ROB model in the interval-simulation spirit: each dynamic
instruction gets fetch, dispatch, issue, complete and retire timestamps
computed in one program-order pass. Out-of-order overlap comes from the
fact that issue waits only on *data* dependences, unit contention and
window occupancy — not on the issue times of earlier instructions —
while the ROB, issue-queue, load/store-queue and commit-width constraints
bound how far the core can run ahead. Memory-level parallelism emerges
naturally: independent loads issue at overlapping times and the L1D MSHR
file bounds how many misses proceed concurrently.
"""

from __future__ import annotations

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import (
    REDIRECT_BTB,
    REDIRECT_MISPREDICT,
    BranchUnit,
    build_direction_predictor,
    build_indirect_predictor,
)
from repro.core.config import SimConfig
from repro.core.contention import ContentionModel
from repro.core.stats import SimStats
from repro.isa.opclasses import OpClass
from repro.isa.registers import TOTAL_REG_COUNT, ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import Trace, build_stream

_NOP = int(OpClass.NOP)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_LDP = int(OpClass.LDP)
_STP = int(OpClass.STP)
_BRANCH_FIRST = int(OpClass.BRANCH)
_BRANCH_LAST = int(OpClass.RET)


def _build_branch_unit(config: SimConfig) -> BranchUnit:
    b = config.branch
    return BranchUnit(
        direction=build_direction_predictor(b.predictor, b.predictor_bits),
        btb=BranchTargetBuffer(entries=b.btb_entries, assoc=b.btb_assoc),
        ras=ReturnAddressStack(entries=b.ras_entries),
        indirect=build_indirect_predictor(
            b.indirect, b.indirect_entries, b.indirect_history_bits
        ),
    )


class OutOfOrderCore:
    """ROB-based out-of-order pipeline model."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        if config.core_type != "ooo":
            raise ValueError(f"OutOfOrderCore requires core_type='ooo', got {config.core_type!r}")
        self.config = config
        self.effects = effects
        self.hierarchy = MemoryHierarchy(config, effects=effects)
        self.contention = ContentionModel(config.execute)
        self.branch_unit = _build_branch_unit(config)

    def run(self, trace: Trace, decoded: list) -> SimStats:
        """Replay ``trace`` (pre-decoded as ``decoded``) and account cycles.

        Compatibility wrapper: flattens the records on the fly and defers
        to :meth:`run_stream`. Callers with a memoised stream (the
        simulator) should use :meth:`run_stream` directly.
        """
        return self.run_stream(trace, build_stream(trace.records, decoded))

    def run_stream(self, trace: Trace, stream: list) -> SimStats:
        """Replay the flattened ``stream`` of ``trace`` and account cycles."""
        cfg = self.config
        pipeline = cfg.pipeline
        fetch_width = pipeline.fetch_width
        commit_width = pipeline.commit_width
        frontend_depth = pipeline.frontend_depth
        rob_size = pipeline.rob_size
        iq_size = pipeline.iq_size
        ldq_entries = pipeline.ldq_entries
        stq_entries = pipeline.stq_entries
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch_line = hierarchy.ifetch_line
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        # Contention dispatch inlined below (see ContentionModel._fast):
        # entries are (next-free list | None, latency, occupancy, units).
        contention_fast = self.contention._fast
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)

        # Ring buffers for window constraints.
        retire_ring = [0] * rob_size
        issue_ring = [0] * iq_size
        ld_ring = [0] * ldq_entries
        st_ring = [0] * stq_entries
        # Wrapping ring cursors (avoid a modulo per instruction).
        rob_slot = -1
        iq_slot = -1
        ld_slot = 0
        st_slot = 0

        fetch_cycle = 0
        fetch_slots = 0
        frontend_ready = 0
        retire_cycle = 0
        retire_slots = 0
        prev_retire = 0
        current_line = -1

        for opclass, kind, dst, src1, src2, pc, addr, taken, target in stream:
            # ---------------------------------------------- fetch
            f = fetch_cycle
            if frontend_ready > f:
                f = frontend_ready
            pc_line = pc // line_size
            if pc_line != current_line:
                done = ifetch_line(pc_line, f, False, False, pc)
                extra = done - f - l1i_hit
                if extra > 0:
                    f += extra
                    frontend_ready = f
                current_line = pc_line
            if f == fetch_cycle:
                fetch_slots += 1
                if fetch_slots >= fetch_width:
                    fetch_cycle += 1
                    fetch_slots = 0
            else:
                fetch_cycle = f
                fetch_slots = 1

            # ---------------------------------------------- dispatch
            d = f + frontend_depth
            rob_slot += 1
            if rob_slot == rob_size:
                rob_slot = 0
            ring_free = retire_ring[rob_slot]
            if ring_free > d:  # ROB full: wait for head retire
                d = ring_free
            iq_slot += 1
            if iq_slot == iq_size:
                iq_slot = 0
            ring_free = issue_ring[iq_slot]
            if ring_free > d:  # IQ full: wait for an issue
                d = ring_free
            if kind & 3:  # KF_LOAD | KF_STORE
                ring_free = ld_ring[ld_slot] if kind & 1 else st_ring[st_slot]
                if ring_free > d:
                    d = ring_free

            # ---------------------------------------------- issue
            t = d
            # NO_REG (-1) aliases the always-zero pad slot, so source
            # reads need no bounds check.
            rr = reg_ready[src1]
            if rr > t:
                t = rr
            rr = reg_ready[src2]
            if rr > t:
                t = rr
            # Inlined ContentionModel.probe: wait for a free unit.
            cfree, latency, occupancy, nunits = contention_fast[opclass]
            if cfree is not None:
                # bi = the least-loaded unit, reused by the commit
                # below (no pool changes between probe and commit).
                if nunits == 1:
                    bi = 0
                    best = cfree[0]
                elif nunits == 2:
                    b = cfree[1]
                    best = cfree[0]
                    if b < best:
                        best = b
                        bi = 1
                    else:
                        bi = 0
                else:
                    best = min(cfree)
                if best > t:
                    t = best
            issue_ring[iq_slot] = t

            # ---------------------------------------------- execute
            # Inlined ContentionModel.commit: book the least-loaded
            # unit up front (a NOP's pool is None, so it books nothing;
            # pools are independent of the memory system, so booking
            # before the per-kind work matches the original per-branch
            # commit calls). Each arm then sets its completion time.
            if cfree is not None:
                if nunits <= 2:
                    cfree[bi] = t + occupancy
                else:
                    best = 0
                    best_free = cfree[0]
                    for u in range(1, nunits):
                        if cfree[u] < best_free:
                            best_free = cfree[u]
                            best = u
                    cfree[best] = t + occupancy

            if not kind & 15:  # plain register op (incl. MUL/FP classes)
                done = t + latency
                if dst >= 0 and dst != ZERO_REG:
                    reg_ready[dst] = done
            elif kind & 8:  # KF_NOP
                done = t
            elif kind & 4:  # KF_BRANCH
                done = t + latency
                redirect = branch_access(opclass, pc, taken, target)
                if redirect == REDIRECT_MISPREDICT:
                    # Wrong-path flush: fetch restarts after resolution.
                    restart = done + mispredict_penalty
                    if restart > frontend_ready:
                        frontend_ready = restart
                    current_line = -1
                elif redirect == REDIRECT_BTB:
                    restart = f + btb_miss_penalty
                    if restart > frontend_ready:
                        frontend_ready = restart
                    current_line = -1
                elif taken:
                    current_line = -1
                    if branch_extra is not None:
                        bubble = f + branch_extra()
                        if bubble > frontend_ready:
                            frontend_ready = bubble
            else:  # KF_LOAD / KF_STORE share the LS pipes
                if kind & 1:  # KF_LOAD
                    done = load(addr, pc, t + agu_latency)
                    if dst >= 0 and dst != ZERO_REG:
                        reg_ready[dst] = done
                        if kind & 64 and dst + 1 < TOTAL_REG_COUNT:  # KF_PAIR
                            reg_ready[dst + 1] = done + 1
                    ld_ring[ld_slot] = done
                    ld_slot += 1
                    if ld_slot == ldq_entries:
                        ld_slot = 0
                else:  # KF_STORE
                    # The store's data leaves the STQ when it drains to
                    # the store buffer at retire; the slot frees then.
                    done = t + agu_latency

            # ---------------------------------------------- retire
            # In-order retirement, commit_width slots per cycle.
            # prev_retire >= retire_cycle is a loop invariant, so
            # r >= retire_cycle always holds here.
            r = done if done > prev_retire else prev_retire
            if r == retire_cycle and retire_slots >= commit_width:
                r += 1
            if r > retire_cycle:
                retire_cycle = r
                retire_slots = 0
            retire_slots += 1
            prev_retire = r
            retire_ring[rob_slot] = r

            if kind & 2:  # KF_STORE
                # Stores write the memory system post-retire.
                drained = store(addr, pc, r)
                st_ring[st_slot] = drained
                st_slot += 1
                if st_slot == stq_entries:
                    st_slot = 0

        total_cycles = prev_retire + frontend_depth
        return self._stats(trace, total_cycles)

    def stream_runner(self, trace):
        """Resumable kernel for batched simulation: a generator that
        consumes issue-tuple chunks via ``send`` and returns this run's
        :class:`SimStats` when sent ``None``.

        All pipeline state (ring buffers, cursors, register scoreboard)
        lives in the generator's locals, so the loop body is a verbatim
        copy of :meth:`run_stream` — chunk boundaries only split the
        iteration, they cannot change any timestamp. ``run_stream``
        stays the reference implementation; the golden batch tests pin
        the two bit-identical.
        """
        cfg = self.config
        pipeline = cfg.pipeline
        fetch_width = pipeline.fetch_width
        commit_width = pipeline.commit_width
        frontend_depth = pipeline.frontend_depth
        rob_size = pipeline.rob_size
        iq_size = pipeline.iq_size
        ldq_entries = pipeline.ldq_entries
        stq_entries = pipeline.stq_entries
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch_line = hierarchy.ifetch_line
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        contention_fast = self.contention._fast
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)

        retire_ring = [0] * rob_size
        issue_ring = [0] * iq_size
        ld_ring = [0] * ldq_entries
        st_ring = [0] * stq_entries
        rob_slot = -1
        iq_slot = -1
        ld_slot = 0
        st_slot = 0

        fetch_cycle = 0
        fetch_slots = 0
        frontend_ready = 0
        retire_cycle = 0
        retire_slots = 0
        prev_retire = 0
        current_line = -1

        while True:
            chunk = yield
            if chunk is None:
                break
            for opclass, kind, dst, src1, src2, pc, addr, taken, target in chunk:
                # ------------------------------------------ fetch
                f = fetch_cycle
                if frontend_ready > f:
                    f = frontend_ready
                pc_line = pc // line_size
                if pc_line != current_line:
                    done = ifetch_line(pc_line, f, False, False, pc)
                    extra = done - f - l1i_hit
                    if extra > 0:
                        f += extra
                        frontend_ready = f
                    current_line = pc_line
                if f == fetch_cycle:
                    fetch_slots += 1
                    if fetch_slots >= fetch_width:
                        fetch_cycle += 1
                        fetch_slots = 0
                else:
                    fetch_cycle = f
                    fetch_slots = 1

                # ------------------------------------------ dispatch
                d = f + frontend_depth
                rob_slot += 1
                if rob_slot == rob_size:
                    rob_slot = 0
                ring_free = retire_ring[rob_slot]
                if ring_free > d:  # ROB full: wait for head retire
                    d = ring_free
                iq_slot += 1
                if iq_slot == iq_size:
                    iq_slot = 0
                ring_free = issue_ring[iq_slot]
                if ring_free > d:  # IQ full: wait for an issue
                    d = ring_free
                if kind & 3:  # KF_LOAD | KF_STORE
                    ring_free = ld_ring[ld_slot] if kind & 1 else st_ring[st_slot]
                    if ring_free > d:
                        d = ring_free

                # ------------------------------------------ issue
                t = d
                rr = reg_ready[src1]
                if rr > t:
                    t = rr
                rr = reg_ready[src2]
                if rr > t:
                    t = rr
                cfree, latency, occupancy, nunits = contention_fast[opclass]
                if cfree is not None:
                    if nunits == 1:
                        bi = 0
                        best = cfree[0]
                    elif nunits == 2:
                        b = cfree[1]
                        best = cfree[0]
                        if b < best:
                            best = b
                            bi = 1
                        else:
                            bi = 0
                    else:
                        best = min(cfree)
                    if best > t:
                        t = best
                issue_ring[iq_slot] = t

                # ------------------------------------------ execute
                if cfree is not None:
                    if nunits <= 2:
                        cfree[bi] = t + occupancy
                    else:
                        best = 0
                        best_free = cfree[0]
                        for u in range(1, nunits):
                            if cfree[u] < best_free:
                                best_free = cfree[u]
                                best = u
                        cfree[best] = t + occupancy

                if not kind & 15:  # plain register op (incl. MUL/FP classes)
                    done = t + latency
                    if dst >= 0 and dst != ZERO_REG:
                        reg_ready[dst] = done
                elif kind & 8:  # KF_NOP
                    done = t
                elif kind & 4:  # KF_BRANCH
                    done = t + latency
                    redirect = branch_access(opclass, pc, taken, target)
                    if redirect == REDIRECT_MISPREDICT:
                        restart = done + mispredict_penalty
                        if restart > frontend_ready:
                            frontend_ready = restart
                        current_line = -1
                    elif redirect == REDIRECT_BTB:
                        restart = f + btb_miss_penalty
                        if restart > frontend_ready:
                            frontend_ready = restart
                        current_line = -1
                    elif taken:
                        current_line = -1
                        if branch_extra is not None:
                            bubble = f + branch_extra()
                            if bubble > frontend_ready:
                                frontend_ready = bubble
                else:  # KF_LOAD / KF_STORE share the LS pipes
                    if kind & 1:  # KF_LOAD
                        done = load(addr, pc, t + agu_latency)
                        if dst >= 0 and dst != ZERO_REG:
                            reg_ready[dst] = done
                            if kind & 64 and dst + 1 < TOTAL_REG_COUNT:  # KF_PAIR
                                reg_ready[dst + 1] = done + 1
                        ld_ring[ld_slot] = done
                        ld_slot += 1
                        if ld_slot == ldq_entries:
                            ld_slot = 0
                    else:  # KF_STORE
                        done = t + agu_latency

                # ------------------------------------------ retire
                r = done if done > prev_retire else prev_retire
                if r == retire_cycle and retire_slots >= commit_width:
                    r += 1
                if r > retire_cycle:
                    retire_cycle = r
                    retire_slots = 0
                retire_slots += 1
                prev_retire = r
                retire_ring[rob_slot] = r

                if kind & 2:  # KF_STORE
                    drained = store(addr, pc, r)
                    st_ring[st_slot] = drained
                    st_slot += 1
                    if st_slot == stq_entries:
                        st_slot = 0

        total_cycles = prev_retire + frontend_depth
        return self._stats(trace, total_cycles)

    def _stats(self, trace: Trace, cycles: int) -> SimStats:
        hierarchy = self.hierarchy
        return SimStats(
            config_name=self.config.name,
            workload=trace.name,
            instructions=len(trace),
            cycles=cycles,
            branch=self.branch_unit.stats,
            l1i=hierarchy.l1i.stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            store_buffer_full_stalls=hierarchy.store_buffer.full_stalls,
            store_forwards=hierarchy.store_buffer.forwards,
            dram_accesses=hierarchy.dram.accesses,
        )
