"""Out-of-order core timing model (Cortex-A72-like).

A timestamp ROB model in the interval-simulation spirit: each dynamic
instruction gets fetch, dispatch, issue, complete and retire timestamps
computed in one program-order pass. Out-of-order overlap comes from the
fact that issue waits only on *data* dependences, unit contention and
window occupancy — not on the issue times of earlier instructions —
while the ROB, issue-queue, load/store-queue and commit-width constraints
bound how far the core can run ahead. Memory-level parallelism emerges
naturally: independent loads issue at overlapping times and the L1D MSHR
file bounds how many misses proceed concurrently.
"""

from __future__ import annotations

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import (
    REDIRECT_BTB,
    REDIRECT_MISPREDICT,
    BranchUnit,
    build_direction_predictor,
    build_indirect_predictor,
)
from repro.core.config import SimConfig
from repro.core.contention import ContentionModel
from repro.core.stats import SimStats
from repro.isa.opclasses import OpClass
from repro.isa.registers import TOTAL_REG_COUNT, ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.record import Trace

_NOP = int(OpClass.NOP)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_LDP = int(OpClass.LDP)
_STP = int(OpClass.STP)
_BRANCH_FIRST = int(OpClass.BRANCH)
_BRANCH_LAST = int(OpClass.RET)


def _build_branch_unit(config: SimConfig) -> BranchUnit:
    b = config.branch
    return BranchUnit(
        direction=build_direction_predictor(b.predictor, b.predictor_bits),
        btb=BranchTargetBuffer(entries=b.btb_entries, assoc=b.btb_assoc),
        ras=ReturnAddressStack(entries=b.ras_entries),
        indirect=build_indirect_predictor(
            b.indirect, b.indirect_entries, b.indirect_history_bits
        ),
    )


class OutOfOrderCore:
    """ROB-based out-of-order pipeline model."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        if config.core_type != "ooo":
            raise ValueError(f"OutOfOrderCore requires core_type='ooo', got {config.core_type!r}")
        self.config = config
        self.effects = effects
        self.hierarchy = MemoryHierarchy(config, effects=effects)
        self.contention = ContentionModel(config.execute)
        self.branch_unit = _build_branch_unit(config)

    def run(self, trace: Trace, decoded: list) -> SimStats:
        cfg = self.config
        pipeline = cfg.pipeline
        fetch_width = pipeline.fetch_width
        commit_width = pipeline.commit_width
        frontend_depth = pipeline.frontend_depth
        rob_size = pipeline.rob_size
        iq_size = pipeline.iq_size
        ldq_entries = pipeline.ldq_entries
        stq_entries = pipeline.stq_entries
        mispredict_penalty = cfg.branch.mispredict_penalty
        btb_miss_penalty = cfg.branch.btb_miss_penalty
        agu_latency = cfg.execute.agu_latency

        hierarchy = self.hierarchy
        load = hierarchy.load
        store = hierarchy.store
        ifetch = hierarchy.ifetch
        line_size = hierarchy.line_size
        l1i_hit = hierarchy.l1i.hit_latency + (1 if hierarchy.l1i.serial_tag_data else 0)
        contention = self.contention
        probe = contention.probe
        commit = contention.commit
        branch_access = self.branch_unit.access
        effects = self.effects
        branch_extra = effects.branch_extra if effects is not None else None

        reg_ready = [0] * (TOTAL_REG_COUNT + 1)

        # Ring buffers for window constraints.
        retire_ring = [0] * rob_size
        issue_ring = [0] * iq_size
        ld_ring = [0] * ldq_entries
        st_ring = [0] * stq_entries
        ld_count = 0
        st_count = 0

        fetch_cycle = 0
        fetch_slots = 0
        frontend_ready = 0
        retire_cycle = 0
        retire_slots = 0
        prev_retire = 0
        current_line = -1

        records = trace.records
        for i, inst in enumerate(decoded):
            rec = records[i]
            opclass = int(inst.opclass)
            pc = rec.pc

            # ---------------------------------------------- fetch
            f = fetch_cycle
            if frontend_ready > f:
                f = frontend_ready
            pc_line = pc // line_size
            if pc_line != current_line:
                done = ifetch(pc, f)
                extra = done - f - l1i_hit
                if extra > 0:
                    f += extra
                    frontend_ready = f
                current_line = pc_line
            if f == fetch_cycle:
                fetch_slots += 1
                if fetch_slots >= fetch_width:
                    fetch_cycle += 1
                    fetch_slots = 0
            else:
                fetch_cycle = f
                fetch_slots = 1

            # ---------------------------------------------- dispatch
            d = f + frontend_depth
            rob_slot = i % rob_size
            if retire_ring[rob_slot] > d:  # ROB full: wait for head retire
                d = retire_ring[rob_slot]
            iq_slot = i % iq_size
            if issue_ring[iq_slot] > d:  # IQ full: wait for an issue
                d = issue_ring[iq_slot]
            if opclass == _LOAD or opclass == _LDP:
                slot = ld_count % ldq_entries
                if ld_ring[slot] > d:
                    d = ld_ring[slot]
            elif opclass == _STORE or opclass == _STP:
                slot = st_count % stq_entries
                if st_ring[slot] > d:
                    d = st_ring[slot]

            # ---------------------------------------------- issue
            t = d
            src1 = inst.src1
            if src1 >= 0 and reg_ready[src1] > t:
                t = reg_ready[src1]
            src2 = inst.src2
            if src2 >= 0 and reg_ready[src2] > t:
                t = reg_ready[src2]
            t = probe(opclass, t)
            issue_ring[iq_slot] = t

            # ---------------------------------------------- execute
            if opclass == _NOP:
                done = t
            elif _BRANCH_FIRST <= opclass <= _BRANCH_LAST:
                done = commit(opclass, t)
                redirect = branch_access(opclass, pc, rec.taken, rec.target)
                if redirect == REDIRECT_MISPREDICT:
                    # Wrong-path flush: fetch restarts after resolution.
                    restart = done + mispredict_penalty
                    if restart > frontend_ready:
                        frontend_ready = restart
                    current_line = -1
                elif redirect == REDIRECT_BTB:
                    restart = f + btb_miss_penalty
                    if restart > frontend_ready:
                        frontend_ready = restart
                    current_line = -1
                elif rec.taken:
                    current_line = -1
                    if branch_extra is not None:
                        bubble = f + branch_extra()
                        if bubble > frontend_ready:
                            frontend_ready = bubble
            elif opclass == _LOAD or opclass == _LDP:
                commit(opclass, t)
                done = load(rec.addr, pc, t + agu_latency)
                dst = inst.dst
                if dst >= 0 and dst != ZERO_REG:
                    reg_ready[dst] = done
                    if opclass == _LDP and dst + 1 < TOTAL_REG_COUNT:
                        reg_ready[dst + 1] = done + 1
                ld_ring[ld_count % ldq_entries] = done
                ld_count += 1
            elif opclass == _STORE or opclass == _STP:
                commit(opclass, t)
                # The store's data leaves the STQ when it drains to the
                # store buffer at retire; the queue slot frees then.
                done = t + agu_latency
            else:
                done = commit(opclass, t)
                dst = inst.dst
                if dst >= 0 and dst != ZERO_REG:
                    reg_ready[dst] = done

            # ---------------------------------------------- retire
            # In-order retirement, commit_width slots per cycle.
            r = done if done > prev_retire else prev_retire
            if r < retire_cycle:
                r = retire_cycle
            if r == retire_cycle and retire_slots >= commit_width:
                r += 1
            if r > retire_cycle:
                retire_cycle = r
                retire_slots = 0
            retire_slots += 1
            prev_retire = r
            retire_ring[rob_slot] = r

            if opclass == _STORE or opclass == _STP:
                # Stores write the memory system post-retire.
                drained = store(rec.addr, pc, r)
                st_ring[st_count % stq_entries] = drained
                st_count += 1

        total_cycles = prev_retire + frontend_depth
        return self._stats(trace, total_cycles)

    def _stats(self, trace: Trace, cycles: int) -> SimStats:
        hierarchy = self.hierarchy
        return SimStats(
            config_name=self.config.name,
            workload=trace.name,
            instructions=len(trace),
            cycles=cycles,
            branch=self.branch_unit.stats,
            l1i=hierarchy.l1i.stats,
            l1d=hierarchy.l1d.stats,
            l2=hierarchy.l2.stats,
            store_buffer_full_stalls=hierarchy.store_buffer.full_stalls,
            store_forwards=hierarchy.store_buffer.forwards,
            dram_accesses=hierarchy.dram.accesses,
        )
