"""Simulation statistics record."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.unit import BranchStats
from repro.memory.cache import CacheStats


@dataclass
class SimStats:
    """Everything one simulation run reports.

    ``cycles``/``instructions``/``cpi`` feed the tuning cost function;
    the component counters feed the step-5 per-component inspection and
    the weighted cost functions the paper recommends for targeted
    optimisation rounds.
    """

    config_name: str
    workload: str
    instructions: int
    cycles: int
    branch: BranchStats = field(default_factory=BranchStats)
    l1i: CacheStats = field(default_factory=CacheStats)
    l1d: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    store_buffer_full_stalls: int = 0
    store_forwards: int = 0
    dram_accesses: int = 0
    decoder: str = "capstone-like"

    @property
    def cpi(self) -> float:
        """Cycles per instruction — the paper's headline metric."""
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch.mispredicts / self.instructions

    @property
    def l1d_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l1d.misses / self.instructions

    @property
    def l2_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2.misses / self.instructions

    def counter(self, name: str) -> float:
        """Generic counter accessor used by the perf-style interface.

        Names follow perf-event spelling: ``cycles``, ``instructions``,
        ``branch-misses``, ``branches``, ``L1-dcache-load-misses``,
        ``L1-icache-load-misses``, ``l2-misses``, ``cpi``.
        """
        mapping = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": self.cpi,
            "ipc": self.ipc,
            "branches": self.branch.branches,
            "branch-misses": self.branch.mispredicts,
            "branch-mpki": self.branch_mpki,
            "L1-dcache-loads": self.l1d.accesses,
            "L1-dcache-load-misses": self.l1d.misses,
            "L1-icache-load-misses": self.l1i.misses,
            "l2-accesses": self.l2.accesses,
            "l2-misses": self.l2.misses,
            "l1d-mpki": self.l1d_mpki,
            "l2-mpki": self.l2_mpki,
            "dram-accesses": self.dram_accesses,
        }
        try:
            return mapping[name]
        except KeyError:
            raise KeyError(
                f"unknown counter {name!r}; available: {sorted(mapping)}"
            ) from None
