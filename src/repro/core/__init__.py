"""Core timing models (the Sniper back-end stand-in).

- :mod:`repro.core.config` — the full configuration tree, including the
  ~hundred parameters that define a simulated processor and dotted-path
  access used by the tuner;
- :mod:`repro.core.contention` — functional-unit contention and
  dual-issue pairing rules (§IV-A "contention model");
- :mod:`repro.core.inorder` — Cortex-A53-like in-order scoreboard model;
- :mod:`repro.core.ooo` — Cortex-A72-like out-of-order ROB model;
- :mod:`repro.core.stats` — the stats record a simulation produces.
"""

from repro.core.config import (
    BranchConfig,
    CacheConfig,
    ExecConfig,
    MemSysConfig,
    PipelineConfig,
    SimConfig,
    cortex_a53_public_config,
    cortex_a72_public_config,
)
from repro.core.contention import ContentionModel
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.core.stats import SimStats

__all__ = [
    "CacheConfig",
    "BranchConfig",
    "ExecConfig",
    "PipelineConfig",
    "MemSysConfig",
    "SimConfig",
    "cortex_a53_public_config",
    "cortex_a72_public_config",
    "ContentionModel",
    "InOrderCore",
    "OutOfOrderCore",
    "SimStats",
]
