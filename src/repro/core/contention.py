"""Functional-unit contention model.

"The contention model defines the functional units in the processor and
assigns every instruction to its corresponding functional unit ... and
verifies that instructions issued in the same cycle are compatible, or
can be dual-issued" (§IV-A). This module provides exactly that: per-pool
unit reservation with pipelined/non-pipelined occupancy, plus the
dual-issue pairing predicate used by the in-order core.
"""

from __future__ import annotations

from repro.core.config import ExecConfig
from repro.isa.opclasses import OpClass

_NOP = int(OpClass.NOP)
_IALU = int(OpClass.IALU)
_IMUL = int(OpClass.IMUL)
_IDIV = int(OpClass.IDIV)
_FPALU = int(OpClass.FPALU)
_FPMUL = int(OpClass.FPMUL)
_FPDIV = int(OpClass.FPDIV)
_FCVT = int(OpClass.FCVT)
_SIMD_ALU = int(OpClass.SIMD_ALU)
_SIMD_MUL = int(OpClass.SIMD_MUL)
_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_LDP = int(OpClass.LDP)
_STP = int(OpClass.STP)
_BRANCH_FIRST = int(OpClass.BRANCH)
_BRANCH_LAST = int(OpClass.RET)


class _Pool:
    """A pool of identical functional units tracked by next-free time."""

    __slots__ = ("free",)

    def __init__(self, count: int) -> None:
        self.free = [0] * count

    def probe(self, earliest: int) -> int:
        """Earliest cycle a unit could accept work, given ``earliest``."""
        best = min(self.free)
        return earliest if earliest >= best else best

    def commit(self, start: int, occupancy: int) -> None:
        """Book the least-loaded unit from ``start`` for ``occupancy``."""
        free = self.free
        best = 0
        best_free = free[0]
        for i in range(1, len(free)):
            if free[i] < best_free:
                best_free = free[i]
                best = i
        free[best] = start + occupancy

    def reset(self) -> None:
        # In place: the hot-path dispatch table aliases this list.
        free = self.free
        for i in range(len(free)):
            free[i] = 0


class ContentionModel:
    """Maps op classes to unit pools, latencies and occupancies."""

    def __init__(self, execute: ExecConfig) -> None:
        self.execute = execute
        self._pools = {
            "ialu": _Pool(execute.n_ialu),
            "mul": _Pool(execute.n_imul),
            "fpu": _Pool(execute.n_fpu),
            "ls": _Pool(execute.n_ls_pipes),
            "br": _Pool(1),
        }
        e = execute
        idiv_occ = 1 if e.idiv_pipelined else e.idiv_latency
        fpdiv_occ = 1 if e.fpdiv_pipelined else e.fpdiv_latency
        #: opclass int -> (pool, latency, occupancy); None pool = no unit.
        table = {
            _NOP: (None, 1, 0),
            _IALU: (self._pools["ialu"], 1, 1),
            _IMUL: (self._pools["mul"], e.imul_latency, 1),
            _IDIV: (self._pools["mul"], e.idiv_latency, idiv_occ),
            _FPALU: (self._pools["fpu"], e.fpalu_latency, 1),
            _FPMUL: (self._pools["fpu"], e.fpmul_latency, 1),
            _FPDIV: (self._pools["fpu"], e.fpdiv_latency, fpdiv_occ),
            _FCVT: (self._pools["fpu"], e.fcvt_latency, 1),
            _SIMD_ALU: (self._pools["fpu"], e.simd_alu_latency, 1),
            _SIMD_MUL: (self._pools["fpu"], e.simd_mul_latency, 1),
            _LOAD: (self._pools["ls"], e.agu_latency, 1),
            _STORE: (self._pools["ls"], e.agu_latency, 1),
            _LDP: (self._pools["ls"], e.agu_latency, 2),
            _STP: (self._pools["ls"], e.agu_latency, 2),
        }
        for opclass in range(_BRANCH_FIRST, _BRANCH_LAST + 1):
            table[opclass] = (self._pools["br"], 1, 1)
        self._table = table
        # Hot-path dispatch: a dense list indexed by the opclass int,
        # holding each pool's next-free list directly (aliased, so pool
        # reset stays visible) plus its size. The core timing loops
        # inline probe/commit against these entries, avoiding dict
        # hashing and two method calls per dynamic instruction.
        self._fast = [None] * (max(table) + 1)
        for opclass, (pool, latency, occupancy) in table.items():
            free = pool.free if pool is not None else None
            self._fast[opclass] = (
                free, latency, occupancy, len(free) if free is not None else 0
            )

    def probe(self, opclass: int, earliest: int) -> int:
        """Earliest issue cycle honouring unit availability."""
        free, _latency, _occupancy, nunits = self._fast[opclass]
        if free is None:
            return earliest
        best = free[0] if nunits == 1 else min(free)
        return earliest if earliest >= best else best

    def commit(self, opclass: int, start: int) -> int:
        """Book the unit; returns the execution-complete cycle."""
        free, latency, occupancy, nunits = self._fast[opclass]
        if free is not None:
            if nunits == 1:
                free[0] = start + occupancy
            else:
                best = 0
                best_free = free[0]
                for i in range(1, nunits):
                    if free[i] < best_free:
                        best_free = free[i]
                        best = i
                free[best] = start + occupancy
        return start + latency

    def latency(self, opclass: int) -> int:
        return self._table[opclass][1]

    @staticmethod
    def pairing_conflict(opclass: int, issued_mul: bool, issued_fp: bool) -> bool:
        """A53-style dual-issue restriction.

        Multiply/divide operations and FP/SIMD operations share result
        buses on little cores: a MUL-class op cannot issue in the same
        cycle as an FP-class op, and two MUL-class ops never pair (the
        pool enforces the latter; this predicate enforces the former).
        """
        is_mul = opclass == _IMUL or opclass == _IDIV
        is_fp = _FPALU <= opclass <= _SIMD_MUL
        if is_mul and issued_fp:
            return True
        if is_fp and issued_mul:
            return True
        return False

    def reset(self) -> None:
        for pool in self._pools.values():
            pool.reset()
