"""repro — full Python reproduction of *Racing to Hardware-Validated
Simulation* (Adileh et al., ISPASS 2019).

The package implements the paper's entire experimental apparatus:

- a Sniper-style trace-driven cycle-accounting simulator with in-order
  (Cortex-A53-like) and out-of-order (Cortex-A72-like) core models
  (:mod:`repro.core`, :mod:`repro.memory`, :mod:`repro.branch`,
  :mod:`repro.simulator`);
- a synthetic AArch64-like ISA, decoder library and SIFT-like trace
  format (:mod:`repro.isa`, :mod:`repro.trace`, :mod:`repro.frontend`);
- a simulated "real hardware" board with hidden ground-truth
  configurations and perf-counter measurement (:mod:`repro.hardware`);
- the 40-kernel targeted micro-benchmark suite and SPEC CPU2017 proxy
  workloads (:mod:`repro.workloads`);
- a unified evaluation engine — memoised traces, a content-addressed
  result cache and batched serial/parallel trial execution shared by
  every layer (:mod:`repro.engine`);
- a persistent experiment store — durable content-addressed results
  (SQLite/WAL), a run registry with provenance, and stage-granular
  checkpoints that make campaigns resumable (:mod:`repro.store`);
- an iterated-racing parameter tuner (:mod:`repro.tuning`) and the
  validation methodology built on it (:mod:`repro.validation`);
- analysis/reporting helpers (:mod:`repro.analysis`).

Quickstart::

    from repro.simulator import SnipeSim
    from repro.core.config import cortex_a53_public_config
    from repro.workloads.microbench import get_microbenchmark

    trace = get_microbenchmark("MM").trace()
    stats = SnipeSim(cortex_a53_public_config()).run(trace)
    print(stats.cpi)
"""

__version__ = "1.1.0"
