"""Benchmark harness: run scenarios, record ``BENCH_<host>.json``.

Every future PR inherits a perf baseline from the JSON reports this
module writes: instructions simulated per second, simulated cycles per
second, trace-recording throughput and engine telemetry, per scenario,
per host, with history. The report format is versioned and validated
(:func:`validate_report`), and updating an existing file appends a run
instead of clobbering the history.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import time
from dataclasses import asdict

from repro.bench.scenarios import BenchScenario, get_suite

#: Bump on any incompatible change to the report layout.
SCHEMA_VERSION = 1

#: Bounded history per file: oldest runs fall off.
MAX_RUNS = 50


# ----------------------------------------------------------------------
# Host identity and file naming
# ----------------------------------------------------------------------
def host_fingerprint() -> dict:
    """Stable description of the measuring host, recorded per report.

    ``REPRO_BENCH_HOST`` overrides the hostname-derived label (CI sets
    it so cached artifacts keep one name across ephemeral runners).
    """
    label = os.environ.get("REPRO_BENCH_HOST") or platform.node() or "unknown"
    return {
        "label": _sanitize(label),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
    }


def _sanitize(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", label).strip("-") or "unknown"


def default_bench_path(root: str = ".") -> str:
    """``BENCH_<host>.json`` in ``root`` for the current host."""
    return os.path.join(root, f"BENCH_{host_fingerprint()['label']}.json")


def _git_describe() -> str:
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, check=False,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


# ----------------------------------------------------------------------
# Scenario execution
# ----------------------------------------------------------------------
def _config_for(core: str):
    from repro.core.config import cortex_a53_public_config, cortex_a72_public_config

    if core == "a53":
        return cortex_a53_public_config()
    if core == "a72":
        return cortex_a72_public_config()
    raise ValueError(f"unknown core {core!r}")


def _workload(name: str):
    from repro.workloads.microbench import MICROBENCHMARKS
    from repro.workloads.spec import SPEC_WORKLOADS

    if name in MICROBENCHMARKS:
        return MICROBENCHMARKS[name]
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name]
    raise KeyError(f"unknown workload {name!r}")


def _run_simulate(scn: BenchScenario, repeats: int) -> dict:
    """Steady-state simulator throughput over pre-recorded traces."""
    from repro.simulator import simulate

    config = _config_for(scn.core)
    traces = [_workload(n).trace(scale=scn.scale) for n in scn.workloads]
    instructions = sum(len(t) for t in traces)
    # Warm pass: records decode/stream caches and yields the cycle count
    # (identical on every pass — simulation is deterministic).
    cycles = sum(simulate(config, t).cycles for t in traces)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for trace in traces:
            simulate(config, trace)
        best = min(best, time.perf_counter() - t0)
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": best,
        "instructions_per_second": instructions / best,
        "cycles_per_second": cycles / best,
        "telemetry": None,
    }


def _run_trace(scn: BenchScenario, repeats: int) -> dict:
    """Front-end (interpreter) trace-recording throughput."""
    from repro.frontend.interpreter import trace_program

    workloads = [_workload(n) for n in scn.workloads]
    programs = [w.program(scale=scn.scale) for w in workloads]
    caps = [w.max_instructions for w in workloads]
    instructions = sum(
        len(trace_program(p, max_instructions=c))
        for p, c in zip(programs, caps)
    )
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for program, cap in zip(programs, caps):
            trace_program(program, max_instructions=cap)
        best = min(best, time.perf_counter() - t0)
    return {
        "instructions": instructions,
        "cycles": 0,
        "wall_seconds": best,
        "instructions_per_second": instructions / best,
        "cycles_per_second": 0.0,
        "telemetry": None,
    }


def _run_engine(scn: BenchScenario, repeats: int) -> dict:
    """Batched engine throughput + telemetry over a config grid.

    Submits the grid twice: the first batch simulates every unique
    trial, the second is answered entirely from the engine cache — the
    recorded telemetry shows both.
    """
    import itertools

    from repro.engine import EvaluationEngine

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    configs = [
        base.with_updates(dict(zip(keys, combo)))
        for combo in itertools.product(*axes)
    ]
    workloads = [_workload(n) for n in scn.workloads]
    with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
        pairs = [(c, w.name) for c in configs for w in workloads]
        t0 = time.perf_counter()
        stats_list = engine.simulate_batch(pairs)
        wall = time.perf_counter() - t0
        engine.simulate_batch(pairs)  # warm pass: pure cache hits
        telemetry = asdict(engine.telemetry)
    instructions = sum(s.instructions for s in stats_list)
    cycles = sum(s.cycles for s in stats_list)
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": wall,
        "instructions_per_second": instructions / wall,
        "cycles_per_second": cycles / wall,
        "telemetry": telemetry,
    }


def _run_fabric(scn: BenchScenario, repeats: int) -> dict:
    """Distributed-dispatch overhead vs the serial path, per task.

    The grid runs twice over the same (memoised) traces: once through a
    serial engine, once decomposed into fabric tasks on a throwaway
    SQLite queue drained by an in-process worker. The difference,
    divided by the task count, is the fabric's per-task dispatch cost
    (enqueue + lease claim + store write-back + completion + read-back);
    the serial pass doubles as proof the in-process path is untouched.
    Each repeat uses a fresh queue file so no pass is answered from the
    previous pass's store.
    """
    import itertools
    import shutil
    import tempfile

    from repro.engine import EvaluationEngine
    from repro.fabric import FabricWorker, JobQueue, plan_simulations
    from repro.isa.decoder import Decoder
    from repro.store import open_store

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    configs = [
        base.with_updates(dict(zip(keys, combo)))
        for combo in itertools.product(*axes)
    ]
    workloads = [_workload(n) for n in scn.workloads]
    pairs = [(c, w.name) for c in configs for w in workloads]

    # Warm pass: traces record once, shared by both timed paths below.
    with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
        stats_list = engine.simulate_batch(pairs)
    instructions = sum(s.instructions for s in stats_list)
    cycles = sum(s.cycles for s in stats_list)

    best_serial = best_fabric = float("inf")
    tmp = tempfile.mkdtemp(prefix="repro-bench-fabric-")
    try:
        for rep in range(repeats):
            with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
                t0 = time.perf_counter()
                engine.simulate_batch(pairs)
                best_serial = min(best_serial, time.perf_counter() - t0)

            path = os.path.join(tmp, f"pass{rep}.sqlite")
            decoder = Decoder()
            items = [(config, name, scn.scale, {}, decoder)
                     for config, name in pairs]
            t0 = time.perf_counter()
            plan = plan_simulations(items)
            with JobQueue(path) as queue:
                queue.enqueue(plan.tasks, submitted_by="bench")
            FabricWorker(path, drain=True, poll=0.01, lease=60.0).run()
            with open_store(path) as store:
                for key in plan.keys:
                    assert store.get_sim(key) is not None
            best_fabric = min(best_fabric, time.perf_counter() - t0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    n_tasks = len(pairs)
    overhead_ms = max(0.0, best_fabric - best_serial) / n_tasks * 1e3
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": best_fabric,
        "instructions_per_second": instructions / best_fabric,
        "cycles_per_second": cycles / best_fabric,
        "telemetry": {
            "tasks": n_tasks,
            "serial_wall_seconds": best_serial,
            "fabric_wall_seconds": best_fabric,
            "dispatch_overhead_ms_per_task": overhead_ms,
        },
    }


def _run_service(scn: BenchScenario, repeats: int) -> dict:
    """HTTP-dispatch overhead vs the serial path, per task.

    The fabric measurement (:func:`_run_fabric`) with the wire in the
    loop: queue *and* store sit behind an in-process experiment service
    (``repro serve``'s machinery on a loopback socket), the worker and
    the read-back both speak HTTP. Reported next to the local fabric
    scenario, the delta in ``dispatch_overhead_ms_per_task`` is what
    one task costs in request round-trips (claim, heartbeat, store
    write-back, completion) — the price of dropping the shared-
    filesystem requirement.
    """
    import itertools
    import shutil
    import tempfile

    from repro.engine import EvaluationEngine
    from repro.fabric import FabricWorker, plan_simulations
    from repro.isa.decoder import Decoder
    from repro.service.client import HttpQueue
    from repro.service.server import ExperimentService
    from repro.store import open_store

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    configs = [
        base.with_updates(dict(zip(keys, combo)))
        for combo in itertools.product(*axes)
    ]
    workloads = [_workload(n) for n in scn.workloads]
    pairs = [(c, w.name) for c in configs for w in workloads]

    with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
        stats_list = engine.simulate_batch(pairs)
    instructions = sum(s.instructions for s in stats_list)
    cycles = sum(s.cycles for s in stats_list)

    token = "bench-service-token"
    best_serial = best_service = float("inf")
    tmp = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        for rep in range(repeats):
            with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
                t0 = time.perf_counter()
                engine.simulate_batch(pairs)
                best_serial = min(best_serial, time.perf_counter() - t0)

            path = os.path.join(tmp, f"pass{rep}.sqlite")
            decoder = Decoder()
            items = [(config, name, scn.scale, {}, decoder)
                     for config, name in pairs]
            service = ExperimentService(path, token=token, port=0).start()
            try:
                t0 = time.perf_counter()
                plan = plan_simulations(items)
                with HttpQueue(service.url, token=token) as queue:
                    queue.enqueue(plan.tasks, submitted_by="bench")
                FabricWorker(service.url, drain=True, poll=0.01, lease=60.0,
                             token=token).run()
                with open_store(service.url, token=token) as store:
                    for key in plan.keys:
                        assert store.get_sim(key) is not None
                best_service = min(best_service, time.perf_counter() - t0)
            finally:
                service.stop()
                service.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    n_tasks = len(pairs)
    overhead_ms = max(0.0, best_service - best_serial) / n_tasks * 1e3
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": best_service,
        "instructions_per_second": instructions / best_service,
        "cycles_per_second": cycles / best_service,
        "telemetry": {
            "tasks": n_tasks,
            "serial_wall_seconds": best_serial,
            "service_wall_seconds": best_service,
            "dispatch_overhead_ms_per_task": overhead_ms,
        },
    }


def _run_dispatch(scn: BenchScenario, repeats: int) -> dict:
    """Dispatch overhead per task, both transports, one scenario.

    The ``fabric`` and ``service`` scenarios each compare one transport
    against the serial path; this scenario times *both* against one
    shared serial baseline so the pair of per-task figures in its
    telemetry — ``sqlite_overhead_ms_per_task`` and
    ``http_overhead_ms_per_task`` — is measured on the same pass over
    the same warm traces. It exists to track the wire-speed work
    (batched claim/complete, long-poll, keep-alive connections,
    compressed payloads, worker pipelining) as one number per
    transport.
    """
    import itertools
    import shutil
    import tempfile

    from repro.engine import EvaluationEngine
    from repro.fabric import FabricWorker, JobQueue, plan_simulations
    from repro.isa.decoder import Decoder
    from repro.service.client import HttpQueue
    from repro.service.server import ExperimentService
    from repro.store import open_store

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    configs = [
        base.with_updates(dict(zip(keys, combo)))
        for combo in itertools.product(*axes)
    ]
    workloads = [_workload(n) for n in scn.workloads]
    pairs = [(c, w.name) for c in configs for w in workloads]

    # Warm pass: traces record once, shared by every timed path below.
    with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
        stats_list = engine.simulate_batch(pairs)
    instructions = sum(s.instructions for s in stats_list)
    cycles = sum(s.cycles for s in stats_list)

    token = "bench-dispatch-token"
    best_serial = best_sqlite = best_http = float("inf")
    tmp = tempfile.mkdtemp(prefix="repro-bench-dispatch-")

    def reset(path):
        # Fresh queue/store every pass, but a *stable* path so the
        # workers' per-host trace cache (``<store>.traces/``, keyed by
        # store spec) stays warm across passes — matching a steady-state
        # fleet, where trace blobs persist on each host by design.
        for suffix in ("", "-wal", "-shm"):
            try:
                os.remove(path + suffix)
            except OSError:
                pass

    try:
        http_port = 0
        for rep in range(repeats):
            with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
                t0 = time.perf_counter()
                engine.simulate_batch(pairs)
                best_serial = min(best_serial, time.perf_counter() - t0)

            decoder = Decoder()
            items = [(config, name, scn.scale, {}, decoder)
                     for config, name in pairs]

            path = os.path.join(tmp, "sqlite-pass.sqlite")
            reset(path)
            # Schema setup happens outside the timed region on both
            # transports (the service builds its tables at start);
            # the timer covers plan → enqueue → drain → readback.
            with JobQueue(path) as queue:
                t0 = time.perf_counter()
                plan = plan_simulations(items)
                queue.enqueue(plan.tasks, submitted_by="bench")
            FabricWorker(path, drain=True, poll=0.01, lease=60.0).run()
            with open_store(path) as store:
                assert all(s is not None for s in store.get_sims(plan.keys))
            best_sqlite = min(best_sqlite, time.perf_counter() - t0)

            path = os.path.join(tmp, "http-pass.sqlite")
            reset(path)
            service = ExperimentService(path, token=token, port=http_port).start()
            http_port = service.port  # keep the URL (= trace dir) stable
            try:
                t0 = time.perf_counter()
                plan = plan_simulations(items)
                with HttpQueue(service.url, token=token) as queue:
                    queue.enqueue(plan.tasks, submitted_by="bench")
                FabricWorker(service.url, drain=True, poll=0.01, lease=60.0,
                             token=token).run()
                with open_store(service.url, token=token) as store:
                    assert all(
                        s is not None for s in store.get_sims(plan.keys))
                best_http = min(best_http, time.perf_counter() - t0)
            finally:
                service.stop()
                service.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    n_tasks = len(pairs)
    sqlite_ms = max(0.0, best_sqlite - best_serial) / n_tasks * 1e3
    http_ms = max(0.0, best_http - best_serial) / n_tasks * 1e3
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": best_http,
        "instructions_per_second": instructions / best_http,
        "cycles_per_second": cycles / best_http,
        "telemetry": {
            "tasks": n_tasks,
            "serial_wall_seconds": best_serial,
            "sqlite_wall_seconds": best_sqlite,
            "http_wall_seconds": best_http,
            "sqlite_overhead_ms_per_task": sqlite_ms,
            "http_overhead_ms_per_task": http_ms,
        },
    }


def _run_race(scn: BenchScenario, repeats: int) -> dict:
    """Async-race fleet saturation on a speed-skewed two-worker fabric.

    The same engine-backed race (grid candidates x workload instances,
    no elimination so both modes do identical committed work) runs
    twice against a fresh SQLite fabric drained by two in-process
    workers, one fast and one slowed by a fixed per-task delay:

    - ``sync`` — the per-step barrier: the fast worker drains its share
      of each step, then idles until the slow worker releases the
      frontier;
    - ``async`` — speculative lookahead keeps future steps enqueued, so
      the fast worker always has work.

    The telemetry reports each mode's busy-worker fraction (summed
    task-holding seconds over ``wall x workers``) and the saturation
    gain — the headline of the asynchronous racing PR. The decision
    records of both modes are asserted identical: saturation is free.
    """
    import itertools
    import shutil
    import tempfile
    import threading

    from repro.engine import EvaluationEngine, TrialCache
    from repro.engine.evaluator import AssignmentEvaluator
    from repro.engine.executors import FabricExecutor
    from repro.fabric import FabricWorker
    from repro.hardware.board import FireflyRK3399
    from repro.store import open_store
    from repro.tuning.race import race

    class SkewedWorker(FabricWorker):
        """A fabric worker slowed by a fixed per-task delay, recording
        the wall seconds it spends holding tasks."""

        def __init__(self, store_path, delay, **kwargs):
            super().__init__(store_path, **kwargs)
            self.delay = delay
            self.busy_seconds = 0.0

        def _execute(self, task):
            """Delay, then run the task; accumulate busy wall time."""
            t0 = time.perf_counter()
            time.sleep(self.delay)
            super()._execute(task)
            self.busy_seconds += time.perf_counter() - t0

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    candidates = [dict(zip(keys, combo))
                  for combo in itertools.product(*axes)]
    instances = list(scn.workloads)
    workloads = [_workload(n) for n in instances]
    hw = FireflyRK3399().core(scn.core)
    delays = (0.04, 0.4)  # fast vs slow worker, seconds per task
    lookahead = 6

    # Warm the shared trace memos once so neither mode pays recording.
    with EvaluationEngine(workloads=workloads, scale=scn.scale) as engine:
        stats_list = engine.simulate_batch(
            [(base, w.name) for w in workloads])
    instructions = sum(s.instructions for s in stats_list) * len(candidates)
    cycles = sum(s.cycles for s in stats_list) * len(candidates)

    tmp = tempfile.mkdtemp(prefix="repro-bench-race-")
    measures = {}
    records = {}
    try:
        for rep in range(repeats):
            for mode in ("sync", "async"):
                path = os.path.join(tmp, f"{mode}{rep}.sqlite")
                store = open_store(path)
                engine = EvaluationEngine(
                    hw=hw, workloads=workloads, scale=scn.scale,
                    store=store,
                    executor=FabricExecutor(store, poll=0.005))
                workers = [SkewedWorker(path, delay, poll=0.005, lease=30.0)
                           for delay in delays]
                threads = [threading.Thread(target=w.run, daemon=True)
                           for w in workers]
                for thread in threads:
                    thread.start()
                try:
                    cache = TrialCache(AssignmentEvaluator(engine, base))
                    t0 = time.perf_counter()
                    result = race(
                        candidates, instances, cache,
                        batch_evaluate=cache.evaluate_batch,
                        first_test=len(instances) + 1,  # no elimination
                        mode=mode, lookahead=lookahead, timeout=600,
                    )
                    wall = time.perf_counter() - t0
                finally:
                    for worker in workers:
                        worker.stop()
                    for thread in threads:
                        thread.join(timeout=60)
                    engine.close()
                    store.close()
                busy = sum(w.busy_seconds for w in workers)
                fraction = busy / (wall * len(workers))
                prev = measures.get(mode)
                if prev is None or wall < prev["wall"]:
                    measures[mode] = {"wall": wall, "busy_fraction": fraction}
                records[mode] = result.decision_record()
        if records["async"] != records["sync"]:
            raise RuntimeError("race bench: async decisions diverged from sync")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    sync_m, async_m = measures["sync"], measures["async"]
    return {
        "instructions": instructions,
        "cycles": cycles,
        "wall_seconds": async_m["wall"],
        "instructions_per_second": instructions / async_m["wall"],
        "cycles_per_second": cycles / async_m["wall"],
        "telemetry": {
            "candidates": len(candidates),
            "instances": len(instances),
            "tasks": len(candidates) * len(instances),
            "workers": len(delays),
            "worker_delays_seconds": list(delays),
            "lookahead": lookahead,
            "sync_wall_seconds": sync_m["wall"],
            "async_wall_seconds": async_m["wall"],
            "sync_busy_fraction": sync_m["busy_fraction"],
            "async_busy_fraction": async_m["busy_fraction"],
            "saturation_gain":
                async_m["busy_fraction"] / sync_m["busy_fraction"],
            "wall_speedup": sync_m["wall"] / async_m["wall"],
        },
    }


def _fresh_trace(wl, scale: float):
    """Record a trace from scratch — the cold path independent workers pay.

    Bypasses the workload's trace memo on purpose: these scenarios
    measure what re-recording costs, so a warm cache would be the wrong
    baseline.
    """
    from repro.frontend.interpreter import trace_program

    program = wl.program(scale=scale)
    trace = trace_program(program, iterations=1,
                          max_instructions=wl.max_instructions)
    trace.name = wl.name
    return trace


def _run_batch(scn: BenchScenario, repeats: int) -> dict:
    """Race-step fusion: K candidates, one instance, one shared pass.

    Three measured variants of the same K-candidate x instance block:

    - *isolated* — K serial passes, each re-recording and re-flattening
      the trace (what K independent workers pay today);
    - *warm serial* — K ``SnipeSim.run`` passes over one memoised trace
      (the best the unbatched in-process path can do);
    - *batched* — one fresh recording plus one shared columnar pass
      driving all K cores (``simulate_batch``).

    The headline number is the batched variant's *effective*
    per-candidate throughput (K x instructions / wall); the telemetry
    records all three walls and the two speedups.
    """
    import itertools

    from repro.isa.decoder import Decoder
    from repro.simulator import SnipeSim, simulate_batch

    base = _config_for(scn.core)
    keys = [k for k, _values in scn.grid]
    axes = [values for _k, values in scn.grid]
    configs = [
        base.with_updates(dict(zip(keys, combo)))
        for combo in itertools.product(*axes)
    ]
    k = len(configs)
    workloads = [_workload(n) for n in scn.workloads]
    decoder = Decoder()
    warm_traces = [wl.trace(scale=scn.scale) for wl in workloads]
    instructions_per_pass = sum(len(t) for t in warm_traces)

    best_isolated = best_warm = best_batched = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for wl in workloads:
            for config in configs:
                SnipeSim(config, decoder=decoder).run(_fresh_trace(wl, scn.scale))
        best_isolated = min(best_isolated, time.perf_counter() - t0)

        t0 = time.perf_counter()
        for trace in warm_traces:
            for config in configs:
                SnipeSim(config, decoder=decoder).run(trace)
        best_warm = min(best_warm, time.perf_counter() - t0)

        t0 = time.perf_counter()
        for wl in workloads:
            simulate_batch(_fresh_trace(wl, scn.scale), configs, decoder=decoder)
        best_batched = min(best_batched, time.perf_counter() - t0)

    effective = k * instructions_per_pass
    return {
        "instructions": effective,
        "cycles": 0,
        "wall_seconds": best_batched,
        "instructions_per_second": effective / best_batched,
        "cycles_per_second": 0.0,
        "telemetry": {
            "candidates": k,
            "isolated_wall_seconds": best_isolated,
            "warm_serial_wall_seconds": best_warm,
            "batched_wall_seconds": best_batched,
            "speedup_vs_isolated": best_isolated / best_batched,
            "speedup_vs_warm_serial": best_warm / best_batched,
        },
    }


def _run_mmap(scn: BenchScenario, repeats: int) -> dict:
    """Columnar blob attach cost vs the record-and-persist cold path.

    The build phase (cold workload copies, so recording is really paid)
    is what the *first* worker on a host does: record, columnarise,
    persist. Each timed attach pass then plays the *second* worker: a
    fresh :class:`~repro.engine.tracestore.TraceStore` over the same
    cache directory memory-maps every blob and materialises the first
    tuple to prove the mapping is live. Throughput is attach-side.
    """
    import copy
    import shutil
    import tempfile

    from repro.engine.tracestore import TraceStore
    from repro.isa.decoder import Decoder

    workloads = [_workload(n) for n in scn.workloads]
    decoder = Decoder()
    tmp = tempfile.mkdtemp(prefix="repro-bench-mmap-")
    try:
        # Cold copies: the suite's earlier scenarios warm the shared
        # workload trace memos, which would understate the build cost.
        cold = []
        for wl in workloads:
            c = copy.copy(wl)
            c._trace_cache = {}
            cold.append(c)
        t0 = time.perf_counter()
        first = TraceStore(cold, scale=scn.scale, cache_dir=tmp)
        built = [first.columns(wl.name, decoder) for wl in cold]
        build_wall = time.perf_counter() - t0
        instructions = sum(len(c) for c in built)

        best_attach = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            attacher = TraceStore(workloads, scale=scn.scale, cache_dir=tmp)
            attached = [attacher.columns(wl.name, decoder) for wl in workloads]
            for cols in attached:
                cols.tuples(0, 1)
            best_attach = min(best_attach, time.perf_counter() - t0)
            if attacher.column_attaches != len(workloads):
                raise RuntimeError("mmap scenario rebuilt instead of attaching")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    return {
        "instructions": instructions,
        "cycles": 0,
        "wall_seconds": best_attach,
        "instructions_per_second": instructions / best_attach,
        "cycles_per_second": 0.0,
        "telemetry": {
            "blobs": len(workloads),
            "build_persist_wall_seconds": build_wall,
            "attach_wall_seconds": best_attach,
            "attach_speedup": build_wall / best_attach,
        },
    }


_RUNNERS = {"simulate": _run_simulate, "trace": _run_trace,
            "engine": _run_engine, "fabric": _run_fabric,
            "service": _run_service, "dispatch": _run_dispatch,
            "batch": _run_batch, "mmap": _run_mmap,
            "race": _run_race}


def run_scenario(scn: BenchScenario, repeats: int = None) -> dict:
    """Execute one scenario; returns its report record."""
    runner = _RUNNERS.get(scn.kind)
    if runner is None:
        raise ValueError(f"unknown scenario kind {scn.kind!r}")
    reps = max(1, repeats if repeats is not None else scn.repeats)
    record = runner(scn, reps)
    record.update(
        name=scn.name,
        kind=scn.kind,
        core=scn.core if scn.kind != "trace" else None,
        workloads=len(scn.workloads),
        repeats=reps,
        scale=scn.scale,
    )
    return record


def run_suite(suite: str = "full", repeats: int = None, progress=None) -> dict:
    """Run a named suite; returns the report *run entry* (one per call).

    ``progress`` is an optional ``callable(str)`` invoked per scenario.
    """
    scenarios = get_suite(suite)
    results = []
    for scn in scenarios:
        if progress is not None:
            progress(f"bench: {scn.name} ({scn.kind}, {len(scn.workloads)} workloads)")
        results.append(run_scenario(scn, repeats=repeats))
    sim_records = [r for r in results if r["kind"] == "simulate"]
    total_instr = sum(r["instructions"] for r in sim_records)
    total_wall = sum(r["wall_seconds"] for r in sim_records)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "suite": suite,
        "git": _git_describe(),
        "scenarios": results,
        "totals": {
            "simulate_instructions": total_instr,
            "simulate_wall_seconds": total_wall,
            "simulate_instructions_per_second":
                total_instr / total_wall if total_wall else 0.0,
        },
    }


# ----------------------------------------------------------------------
# Report files
# ----------------------------------------------------------------------
def validate_report(report) -> None:
    """Schema check for a ``BENCH_*.json`` payload; raises ``ValueError``.

    Used by the tests and the CI smoke job so that a malformed report
    fails loudly instead of silently breaking the perf history.
    """
    def need(cond, msg):
        if not cond:
            raise ValueError(f"invalid bench report: {msg}")

    need(isinstance(report, dict), "not an object")
    need(report.get("schema_version") == SCHEMA_VERSION,
         f"schema_version != {SCHEMA_VERSION}")
    host = report.get("host")
    need(isinstance(host, dict), "missing host")
    for key in ("label", "machine", "platform", "python", "cpu_count"):
        need(key in host, f"host.{key} missing")
    runs = report.get("runs")
    need(isinstance(runs, list) and runs, "runs missing or empty")
    for run in runs:
        need(isinstance(run.get("timestamp"), str), "run.timestamp missing")
        need(run.get("suite") in ("full", "quick"), "run.suite invalid")
        need(isinstance(run.get("scenarios"), list) and run["scenarios"],
             "run.scenarios missing or empty")
        for scn in run["scenarios"]:
            for key in ("name", "kind", "workloads", "repeats", "instructions",
                        "cycles", "wall_seconds", "instructions_per_second",
                        "cycles_per_second"):
                need(key in scn, f"scenario.{key} missing")
            need(scn["kind"] in ("simulate", "trace", "engine", "fabric",
                                 "service", "dispatch", "batch", "mmap",
                                 "race"),
                 f"scenario kind {scn['kind']!r} invalid")
            need(scn["wall_seconds"] > 0, "non-positive wall_seconds")
            need(scn["instructions"] > 0, "non-positive instructions")
        totals = run.get("totals")
        need(isinstance(totals, dict), "run.totals missing")
        need("simulate_instructions_per_second" in totals,
             "totals.simulate_instructions_per_second missing")


def load_report(path: str) -> dict:
    """Read and validate an existing report file."""
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    validate_report(report)
    return report


def update_report_file(path: str, run_entry: dict) -> dict:
    """Append ``run_entry`` to the report at ``path`` (creating it).

    An existing valid report keeps its history (bounded at
    :data:`MAX_RUNS`); an existing *invalid* file raises instead of
    being clobbered.
    """
    if os.path.exists(path):
        report = load_report(path)
        report["host"] = host_fingerprint()
    else:
        report = {
            "schema_version": SCHEMA_VERSION,
            "host": host_fingerprint(),
            "runs": [],
        }
    report["runs"].append(run_entry)
    report["runs"] = report["runs"][-MAX_RUNS:]
    validate_report(report)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return report


def run_bench(suite: str = "full", repeats: int = None, out: str = None,
              progress=None) -> tuple:
    """Run a suite and record it; returns ``(report, run_entry, path)``."""
    run_entry = run_suite(suite, repeats=repeats, progress=progress)
    path = out if out else default_bench_path()
    report = update_report_file(path, run_entry)
    return report, run_entry, path


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
#: Default relative throughput loss tolerated before a scenario counts
#: as regressed (``repro bench --compare``'s gate).
DEFAULT_MAX_REGRESSION = 0.15


def _normalize_scenario_name(name: str) -> str:
    """Fold quick-suite variants onto their full-suite counterparts."""
    return name[:-len("-quick")] if name.endswith("-quick") else name


def compare_runs(baseline_run: dict, run_entry: dict,
                 max_regression: float = DEFAULT_MAX_REGRESSION) -> tuple:
    """Diff per-scenario throughput of ``run_entry`` against a baseline.

    Scenarios are matched by name with the ``-quick`` suffix stripped,
    so a CI quick run compares against a committed full-suite baseline.
    A scenario *regresses* when its instructions-per-second falls more
    than ``max_regression`` (relative) below the baseline's. Returns
    ``(rows, regressions)``: every matched scenario as a comparison
    dict, and the regressed subset. Scenarios present on only one side
    are skipped — a renamed or new scenario is not a regression.
    """
    base_by_name = {
        _normalize_scenario_name(s["name"]): s
        for s in baseline_run["scenarios"]
    }
    rows, regressions = [], []
    for scn in run_entry["scenarios"]:
        base = base_by_name.get(_normalize_scenario_name(scn["name"]))
        if base is None:
            continue
        baseline_ips = base["instructions_per_second"]
        current_ips = scn["instructions_per_second"]
        ratio = current_ips / baseline_ips if baseline_ips else float("inf")
        row = {
            "name": _normalize_scenario_name(scn["name"]),
            "baseline_instructions_per_second": baseline_ips,
            "current_instructions_per_second": current_ips,
            "ratio": ratio,
            "regressed": ratio < 1.0 - max_regression,
        }
        rows.append(row)
        if row["regressed"]:
            regressions.append(row)
    return rows, regressions
