"""Deterministic benchmark scenario definitions.

The performance layer measures a *fixed* suite of scenarios so that
every run of ``repro bench`` — today, next PR, another machine — times
exactly the same work. Three scenario kinds cover the layers of the
simulation stack:

- ``simulate`` — steady-state simulator throughput: replay pre-recorded
  traces (the tuning-loop workload, where thousands of configurations
  share one trace);
- ``trace`` — front-end recording throughput: the DynamoRIO-substitute
  interpreter producing dynamic traces;
- ``engine`` — batched engine throughput: a configuration grid submitted
  through :class:`~repro.engine.EvaluationEngine`, exercising the
  content-addressed cache and reporting its telemetry;
- ``fabric`` — distributed-dispatch overhead: the same grid run twice,
  once serially in-process and once decomposed into fabric tasks on a
  throwaway SQLite queue drained by an in-process worker, isolating the
  per-task cost of enqueue + claim + store write-back + read-back;
- ``service`` — HTTP-dispatch overhead: the fabric measurement again,
  but queue and store both behind an in-process experiment service
  (``repro serve``), isolating what the wire adds per task on top of
  the local fabric figure;
- ``dispatch`` — wire-speed tracking: the fabric and service
  measurements fused into one scenario so both transports share one
  serial baseline; its telemetry carries per-task dispatch overhead
  for SQLite and HTTP side by side (the acceptance numbers of the
  batched-claim / long-poll / pipelining work);
- ``batch`` — race-step fusion: K candidate configurations over one
  instance, run as K isolated serial passes (each re-recording the
  trace — what independent workers pay) versus one shared columnar
  pass (``simulate_batch``), reporting effective per-candidate
  throughput and the fusion speedup;
- ``mmap`` — columnar blob attach cost: memory-mapping persisted trace
  blobs (what the second worker on a host pays) versus recording,
  building and persisting them (what the first worker pays);
- ``race`` — async-race fleet saturation: the same engine-backed race
  run twice over a two-worker fabric whose workers are deliberately
  speed-skewed, once with the synchronous per-step barrier and once
  with speculative lookahead scheduling, reporting each mode's
  busy-worker fraction and wall clock (and asserting the decisions
  match — saturation must be free).

Scenario *lists* are deterministic (names, workloads, order); only the
measured wall-clock varies between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BenchScenario:
    """One named, reproducible measurement unit.

    Parameters
    ----------
    name:
        Stable identifier recorded in ``BENCH_*.json``.
    kind:
        ``"simulate"``, ``"trace"`` or ``"engine"`` (see module docs).
    core:
        Public configuration to simulate with (``a53`` or ``a72``);
        unused by ``trace`` scenarios.
    workloads:
        Workload names (micro-benchmarks or SPEC proxies) the scenario
        runs, in order.
    repeats:
        Timed passes; the harness reports the best (minimum-wall) pass,
        the standard way to suppress scheduler noise.
    scale:
        Trace scale forwarded to the workloads.
    grid:
        For ``engine`` scenarios: configuration override axes as a
        tuple of ``(dotted_key, (value, ...))`` pairs whose cross
        product forms the submitted configurations.
    """

    name: str
    kind: str
    core: str = "a53"
    workloads: tuple = ()
    repeats: int = 3
    scale: float = 1.0
    grid: tuple = field(default=())


#: Category-balanced ten-kernel subset used by the quick suite.
QUICK_KERNELS = ("MC", "ML2_BWld", "MM", "CCa", "CRd", "CS1", "DP1f", "ED1",
                 "STc", "STL2")

#: SPEC-proxy subset for the quick suite.
QUICK_SPEC = ("mcf", "x264", "leela")

#: Engine-scenario override grid (kept tiny; the point is measuring the
#: batch/caching machinery, not sweeping a large space).
ENGINE_GRID = (
    ("l1d.size", (16384, 32768)),
    ("branch.btb_entries", (256, 512)),
)

#: Batch-scenario grid: 2x2x2 = 8 candidates, the alive set of a
#: typical F-race step (the acceptance unit for batched simulation).
BATCH_GRID = (
    ("branch.mispredict_penalty", (6, 9)),
    ("l1d.size", (16384, 32768)),
    ("branch.btb_entries", (256, 512)),
)

#: Race-scenario grid: a deliberately *narrow* field (2 candidates per
#: instance step) over many instances — the shape where the synchronous
#: barrier hurts most, because each step leaves one of the two skewed
#: workers idle while the other holds the frontier.
RACE_GRID = (
    ("l1d.size", (16384, 32768)),
)

#: Race-scenario instance lists (many steps = many barriers to remove,
#: and a long enough run to amortise the final task's drain tail).
RACE_KERNELS = ("CCa", "CRd", "CS1", "ED1", "MC", "MD", "ML2_BWld", "STc",
                "DP1f", "EI", "MM", "STL2", "CCh", "CF1", "EM1", "MI")


def _microbench_names() -> tuple:
    from repro.workloads.microbench import MICROBENCHMARKS

    return tuple(MICROBENCHMARKS)


def _spec_names() -> tuple:
    from repro.workloads.spec import SPEC_WORKLOADS

    return tuple(SPEC_WORKLOADS)


def full_suite() -> list:
    """The complete scenario list (the default for ``repro bench``)."""
    micro = _microbench_names()
    spec = _spec_names()
    return [
        BenchScenario("table1-a53", "simulate", core="a53", workloads=micro,
                      repeats=5),
        BenchScenario("table1-a72", "simulate", core="a72", workloads=micro,
                      repeats=5),
        BenchScenario("spec-a53", "simulate", core="a53", workloads=spec),
        BenchScenario("spec-a72", "simulate", core="a72", workloads=spec),
        BenchScenario("trace-record", "trace", workloads=micro),
        BenchScenario("engine-batch-a53", "engine", core="a53",
                      workloads=QUICK_KERNELS, grid=ENGINE_GRID, repeats=1),
        BenchScenario("fabric-overhead", "fabric", core="a53",
                      workloads=("CCa", "ED1", "MD", "STc"),
                      grid=ENGINE_GRID, repeats=1, scale=0.5),
        BenchScenario("service-dispatch", "service", core="a53",
                      workloads=("CCa", "ED1", "MD", "STc"),
                      grid=ENGINE_GRID, repeats=1, scale=0.5),
        BenchScenario("dispatch-throughput", "dispatch", core="a53",
                      workloads=("CCa", "ED1", "MD", "STc"),
                      grid=ENGINE_GRID, repeats=5, scale=0.5),
        BenchScenario("batched-race-step", "batch", core="a53",
                      workloads=QUICK_KERNELS, grid=BATCH_GRID, repeats=3),
        BenchScenario("trace-mmap-attach", "mmap", core="a53",
                      workloads=QUICK_KERNELS, repeats=3),
        BenchScenario("async-race-saturation", "race", core="a53",
                      workloads=RACE_KERNELS, grid=RACE_GRID,
                      repeats=1, scale=0.25),
    ]


def quick_suite() -> list:
    """Reduced suite for CI smoke runs (seconds, not minutes)."""
    return [
        BenchScenario("table1-a53-quick", "simulate", core="a53",
                      workloads=QUICK_KERNELS, repeats=2),
        BenchScenario("table1-a72-quick", "simulate", core="a72",
                      workloads=QUICK_KERNELS, repeats=2),
        BenchScenario("spec-a53-quick", "simulate", core="a53",
                      workloads=QUICK_SPEC, repeats=2),
        BenchScenario("trace-record-quick", "trace", workloads=QUICK_KERNELS,
                      repeats=2),
        BenchScenario("engine-batch-quick", "engine", core="a53",
                      workloads=QUICK_KERNELS[:4], grid=ENGINE_GRID,
                      repeats=1),
        BenchScenario("fabric-overhead-quick", "fabric", core="a53",
                      workloads=("CCa", "ED1"), grid=ENGINE_GRID,
                      repeats=1, scale=0.5),
        BenchScenario("service-dispatch-quick", "service", core="a53",
                      workloads=("CCa", "ED1"), grid=ENGINE_GRID,
                      repeats=1, scale=0.5),
        BenchScenario("dispatch-throughput-quick", "dispatch", core="a53",
                      workloads=("CCa", "ED1"), grid=ENGINE_GRID,
                      repeats=2, scale=0.5),
        BenchScenario("batched-race-step-quick", "batch", core="a53",
                      workloads=QUICK_KERNELS[:4], grid=BATCH_GRID,
                      repeats=1),
        BenchScenario("trace-mmap-attach-quick", "mmap", core="a53",
                      workloads=QUICK_KERNELS[:4], repeats=2),
        BenchScenario("async-race-saturation-quick", "race", core="a53",
                      workloads=RACE_KERNELS[:8], grid=RACE_GRID,
                      repeats=1, scale=0.25),
    ]


def get_suite(name: str) -> list:
    """Suite registry: ``full`` or ``quick``."""
    if name == "full":
        return full_suite()
    if name == "quick":
        return quick_suite()
    raise ValueError(f"unknown bench suite {name!r}; choose 'full' or 'quick'")
