"""Performance layer: benchmark scenarios, harness and perf baselines.

``repro bench`` (and this package's API) measures a fixed suite of
micro-benchmark, SPEC-proxy, trace-recording and engine scenarios and
records instructions/sec, simulated cycles/sec and engine telemetry in
a versioned ``BENCH_<host>.json`` — the perf baseline every future PR
is compared against.

>>> from repro.bench import run_suite
>>> entry = run_suite("quick")           # doctest: +SKIP
>>> entry["totals"]["simulate_instructions_per_second"]  # doctest: +SKIP
"""

from repro.bench.harness import (
    DEFAULT_MAX_REGRESSION,
    MAX_RUNS,
    SCHEMA_VERSION,
    compare_runs,
    default_bench_path,
    host_fingerprint,
    load_report,
    run_bench,
    run_scenario,
    run_suite,
    update_report_file,
    validate_report,
)
from repro.bench.scenarios import (
    BenchScenario,
    full_suite,
    get_suite,
    quick_suite,
)

__all__ = [
    "BenchScenario",
    "DEFAULT_MAX_REGRESSION",
    "MAX_RUNS",
    "SCHEMA_VERSION",
    "compare_runs",
    "default_bench_path",
    "full_suite",
    "get_suite",
    "host_fingerprint",
    "load_report",
    "quick_suite",
    "run_bench",
    "run_scenario",
    "run_suite",
    "update_report_file",
    "validate_report",
]
