"""Command-line interface.

Mirrors the workflows a user of the paper's framework runs by hand::

    python -m repro list-workloads --category memory
    python -m repro measure  --core a72 --workload ML2_BWld
    python -m repro simulate --core a53 --workload CS1 --set l1d.prefetcher=stride
    python -m repro lmbench  --core a53
    python -m repro validate --core a53 --profile fast --out results/a53.json
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.io import save_result_json
from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.hardware.board import FireflyRK3399
from repro.hardware.lmbench import lat_mem_rd
from repro.simulator.simulator import SnipeSim
from repro.tuning.cost import cpi_error
from repro.validation.campaign import PROFILES, ValidationCampaign
from repro.workloads.microbench import MICROBENCHMARKS, list_microbenchmarks
from repro.workloads.spec import SPEC_WORKLOADS


def _lookup_workload(name: str):
    if name in MICROBENCHMARKS:
        return MICROBENCHMARKS[name]
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name]
    raise SystemExit(f"unknown workload {name!r}; try 'list-workloads'")


def _public_config(core: str):
    key = core.lower().replace("cortex-", "")
    if key == "a53":
        return cortex_a53_public_config()
    if key == "a72":
        return cortex_a72_public_config()
    raise SystemExit(f"unknown core {core!r}; the board has a53 and a72")


def _parse_overrides(pairs):
    """``key=value`` strings into a dotted-path update dict."""
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        for conv in (int, float):
            try:
                out[key] = conv(raw)
                break
            except ValueError:
                continue
        else:
            if raw.lower() in ("true", "false"):
                out[key] = raw.lower() == "true"
            else:
                out[key] = raw
    return out


def cmd_list_workloads(args) -> int:
    rows = []
    for wl in list_microbenchmarks(args.category):
        rows.append([wl.name, wl.category, wl.paper_instructions])
    if args.category is None:
        for wl in SPEC_WORKLOADS.values():
            rows.append([wl.name, wl.category, wl.paper_instructions])
    print(render_table(["name", "category", "paper instructions"], rows))
    return 0


def cmd_measure(args) -> int:
    board = FireflyRK3399()
    trace = _lookup_workload(args.workload).trace()
    result = board.core(args.core).measure(trace)
    rows = [[name, value] for name, value in sorted(result.counters.items())]
    rows.append(["cpi", f"{result.cpi:.4f}"])
    print(render_table(["counter", "value"],
                       rows, title=f"{args.workload} on {result.core}"))
    return 0


def cmd_simulate(args) -> int:
    board = FireflyRK3399()
    config = _public_config(args.core).with_updates(_parse_overrides(args.set))
    trace = _lookup_workload(args.workload).trace()
    stats = SnipeSim(config).run(trace)
    hw = board.core(args.core).measure(trace)
    rows = [
        ["instructions", stats.instructions, hw.instructions],
        ["cycles", stats.cycles, hw.cycles],
        ["CPI", f"{stats.cpi:.4f}", f"{hw.cpi:.4f}"],
        ["branch misses", stats.branch.mispredicts, hw.counter("branch-misses")],
        ["L1D misses", stats.l1d.misses, hw.counter("L1-dcache-load-misses")],
        ["L2 misses", stats.l2.misses, hw.counter("l2-misses")],
    ]
    print(render_table(["metric", "simulator", "hardware"], rows,
                       title=f"{args.workload} — {config.name}"))
    print(f"CPI error: {cpi_error(stats, hw):.1%}")
    return 0


def cmd_lmbench(args) -> int:
    board = FireflyRK3399()
    config = _public_config(args.core)
    estimates = lat_mem_rd(board.core(args.core),
                           l1_size=config.l1d.size, l2_size=config.l2.size)
    print(f"lmbench estimates for {args.core}: {estimates.summary()}")
    return 0


def cmd_validate(args) -> int:
    board = FireflyRK3399()
    campaign = ValidationCampaign(
        board, core=args.core, profile=args.profile, seed=args.seed, verbose=True
    )
    result = campaign.run(stages=args.stages)
    print(result.summary())
    if args.out:
        payload = {
            "core": result.core,
            "profile": result.profile,
            "untuned_errors": result.untuned_errors,
            "final_errors": result.final_errors,
            "tuned_assignment": result.stages[-1].irace.best_assignment,
        }
        save_result_json(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Racing to Hardware-Validated Simulation — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="list micro-benchmarks and SPEC proxies")
    p.add_argument("--category", choices=["memory", "control", "dataparallel",
                                          "execution", "store"], default=None)
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("measure", help="perf-measure a workload on the board")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("simulate", help="simulate a workload and compare to hardware")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a config parameter (repeatable)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("lmbench", help="estimate cache/memory latencies (step #2)")
    p.add_argument("--core", default="a53")
    p.set_defaults(func=cmd_lmbench)

    p = sub.add_parser("validate", help="run the full validation campaign")
    p.add_argument("--core", default="a53")
    p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    p.add_argument("--stages", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", default=None, help="write results JSON here")
    p.set_defaults(func=cmd_validate)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
