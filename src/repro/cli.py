"""Command-line interface.

Mirrors the workflows a user of the paper's framework runs by hand::

    python -m repro list-workloads --category memory
    python -m repro measure  --core a72 --workload ML2_BWld
    python -m repro simulate --core a53 --workload CS1 --set l1d.prefetcher=stride
    python -m repro lmbench  --core a53
    python -m repro validate --core a53 --profile fast --jobs 4 --out results/a53.json
    python -m repro sweep    --core a53 --workloads STc,MD \\
        --set l1d.prefetcher=none,stride --set l1d.prefetch_degree=2,4
"""

from __future__ import annotations

import argparse
import itertools
import sys

from repro.analysis.io import save_result_json
from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.engine import EvaluationEngine
from repro.hardware.board import FireflyRK3399
from repro.hardware.lmbench import lat_mem_rd
from repro.simulator.simulator import SnipeSim
from repro.tuning.cost import cpi_error
from repro.validation.campaign import PROFILES, ValidationCampaign
from repro.workloads.microbench import ALL_MICROBENCHMARKS, MICROBENCHMARKS, list_microbenchmarks
from repro.workloads.spec import SPEC_WORKLOADS


def _lookup_workload(name: str):
    if name in MICROBENCHMARKS:
        return MICROBENCHMARKS[name]
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name]
    raise SystemExit(f"unknown workload {name!r}; try 'list-workloads'")


def _public_config(core: str):
    key = core.lower().replace("cortex-", "")
    if key == "a53":
        return cortex_a53_public_config()
    if key == "a72":
        return cortex_a72_public_config()
    raise SystemExit(f"unknown core {core!r}; the board has a53 and a72")


def _convert_token(raw: str):
    """One ``--set`` value token to int/float/bool/str."""
    for conv in (int, float):
        try:
            return conv(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _parse_overrides(pairs):
    """``key=value`` strings into a dotted-path update dict."""
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        out[key] = _convert_token(raw)
    return out


def _parse_sweep_sets(pairs):
    """``key=v1,v2,...`` strings into an ordered {key: [values]} grid."""
    if not pairs:
        raise SystemExit("sweep needs at least one --set key=v1,v2,...")
    grid = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=v1,v2,..., got {pair!r}")
        key, raw = pair.split("=", 1)
        if key in grid:
            raise SystemExit(f"--set {key} given twice; list all values in one --set")
        values = [_convert_token(tok) for tok in raw.split(",") if tok != ""]
        if not values:
            raise SystemExit(f"--set {key} has no values")
        grid[key] = values
    return grid


def cmd_list_workloads(args) -> int:
    rows = []
    for wl in list_microbenchmarks(args.category):
        rows.append([wl.name, wl.category, wl.paper_instructions])
    if args.category is None:
        for wl in SPEC_WORKLOADS.values():
            rows.append([wl.name, wl.category, wl.paper_instructions])
    print(render_table(["name", "category", "paper instructions"], rows))
    return 0


def cmd_measure(args) -> int:
    board = FireflyRK3399()
    trace = _lookup_workload(args.workload).trace()
    result = board.core(args.core).measure(trace)
    rows = [[name, value] for name, value in sorted(result.counters.items())]
    rows.append(["cpi", f"{result.cpi:.4f}"])
    print(render_table(["counter", "value"],
                       rows, title=f"{args.workload} on {result.core}"))
    return 0


def cmd_simulate(args) -> int:
    board = FireflyRK3399()
    config = _public_config(args.core).with_updates(_parse_overrides(args.set))
    trace = _lookup_workload(args.workload).trace()
    stats = SnipeSim(config).run(trace)
    hw = board.core(args.core).measure(trace)
    rows = [
        ["instructions", stats.instructions, hw.instructions],
        ["cycles", stats.cycles, hw.cycles],
        ["CPI", f"{stats.cpi:.4f}", f"{hw.cpi:.4f}"],
        ["branch misses", stats.branch.mispredicts, hw.counter("branch-misses")],
        ["L1D misses", stats.l1d.misses, hw.counter("L1-dcache-load-misses")],
        ["L2 misses", stats.l2.misses, hw.counter("l2-misses")],
    ]
    print(render_table(["metric", "simulator", "hardware"], rows,
                       title=f"{args.workload} — {config.name}"))
    print(f"CPI error: {cpi_error(stats, hw):.1%}")
    return 0


def cmd_lmbench(args) -> int:
    board = FireflyRK3399()
    config = _public_config(args.core)
    estimates = lat_mem_rd(board.core(args.core),
                           l1_size=config.l1d.size, l2_size=config.l2.size)
    print(f"lmbench estimates for {args.core}: {estimates.summary()}")
    return 0


def cmd_validate(args) -> int:
    board = FireflyRK3399()
    campaign = ValidationCampaign(
        board, core=args.core, profile=args.profile, seed=args.seed, verbose=True,
        jobs=args.jobs,
    )
    try:
        result = campaign.run(stages=args.stages)
    finally:
        campaign.close()
    print(result.summary())
    print(f"engine: {campaign.engine.telemetry.summary()}")
    if args.out:
        payload = {
            "core": result.core,
            "profile": result.profile,
            "untuned_errors": result.untuned_errors,
            "final_errors": result.final_errors,
            "tuned_assignment": result.stages[-1].irace.best_assignment,
        }
        save_result_json(args.out, payload)
        print(f"wrote {args.out}")
    return 0


def cmd_sweep(args) -> int:
    """Scenario exploration: cross-product of --set value lists."""
    board = FireflyRK3399()
    base = _public_config(args.core)
    grid = _parse_sweep_sets(args.set)
    keys = list(grid)
    combos = [dict(zip(keys, values)) for values in itertools.product(*grid.values())]
    if args.workloads:
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]
        if not names:
            raise SystemExit("--workloads names no workloads")
        workloads = [_lookup_workload(n) for n in names]
    else:
        workloads = list(ALL_MICROBENCHMARKS)
        names = [wl.name for wl in workloads]

    try:
        configs = [base.with_updates(combo) for combo in combos]
    except KeyError as exc:
        raise SystemExit(f"bad --set parameter: {exc.args[0]}") from None

    with EvaluationEngine(
        hw=board.core(args.core), workloads=workloads,
        scale=args.scale, jobs=args.jobs,
    ) as engine:
        pairs = [(config, name) for config in configs for name in names]
        stats_list = engine.simulate_batch(pairs)

        rows, combo_means = [], []
        stats_iter = iter(stats_list)
        for combo in combos:
            errs = []
            for name in names:
                stats = next(stats_iter)
                hw = engine.measure_hw(name)
                err = cpi_error(stats, hw)
                errs.append(err)
                rows.append([*[combo[k] for k in keys], name,
                             f"{stats.cpi:.4f}", f"{hw.cpi:.4f}", f"{err:.1%}"])
            combo_means.append(sum(errs) / len(errs))
        telemetry = engine.telemetry

    print(render_table([*keys, "workload", "sim CPI", "hw CPI", "CPI err"],
                       rows, title=f"sweep — {base.name} on {args.core}"))
    best = min(range(len(combos)), key=combo_means.__getitem__)
    best_desc = ", ".join(f"{k}={combos[best][k]}" for k in keys)
    print(f"{len(combos)} configurations x {len(names)} workloads "
          f"= {len(pairs)} trials ({telemetry.unique_trials} unique simulations)")
    print(f"best mean CPI error: {combo_means[best]:.1%} ({best_desc})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Racing to Hardware-Validated Simulation — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="list micro-benchmarks and SPEC proxies")
    p.add_argument("--category", choices=["memory", "control", "dataparallel",
                                          "execution", "store"], default=None)
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("measure", help="perf-measure a workload on the board")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("simulate", help="simulate a workload and compare to hardware")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a config parameter (repeatable)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("lmbench", help="estimate cache/memory latencies (step #2)")
    p.add_argument("--core", default="a53")
    p.set_defaults(func=cmd_lmbench)

    p = sub.add_parser("validate", help="run the full validation campaign")
    p.add_argument("--core", default="a53")
    p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    p.add_argument("--stages", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel simulation processes (1 = serial)")
    p.add_argument("--out", default=None, help="write results JSON here")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "sweep",
        help="simulate the cross-product of --set value lists over workloads",
    )
    p.add_argument("--core", default="a53")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names (default: all 40 kernels)")
    p.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                   help="parameter value list to sweep (repeatable)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="trace scale (1.0 = nominal length)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel simulation processes (1 = serial)")
    p.set_defaults(func=cmd_sweep)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
