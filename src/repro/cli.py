"""Command-line interface.

Mirrors the workflows a user of the paper's framework runs by hand::

    python -m repro list-workloads --category memory
    python -m repro measure  --core a72 --workload ML2_BWld
    python -m repro simulate --core a53 --workload CS1 --set l1d.prefetcher=stride
    python -m repro lmbench  --core a53
    python -m repro validate --core a53 --profile fast --jobs 4 --out results/a53.json
    python -m repro sweep    --core a53 --workloads STc,MD \\
        --set l1d.prefetcher=none,stride --set l1d.prefetch_degree=2,4
    python -m repro components --slot prefetcher

Every experiment-running subcommand accepts ``--store PATH`` to read and
write a persistent experiment store (SQLite): results survive the
process, successive runs share cache hits, and ``validate``/``sweep``
runs become resumable via ``--resume RUN_ID``. The ``store`` subcommand
(``stats | ls | gc | export | import``) manages a store directly.

The store file doubles as the distributed fabric's job queue:
``--executor fabric`` on ``simulate``/``validate``/``sweep`` dispatches
every simulation batch to it, ``repro worker --store PATH`` processes
(any number, any host sharing the file) execute them, ``repro submit``
enqueues a grid without waiting, and ``repro status`` shows queue
depth, leases, dead letters and per-worker throughput::

    python -m repro worker --store fab.sqlite --max-idle 120 &
    python -m repro worker --store fab.sqlite --max-idle 120 &
    python -m repro validate --core a53 --profile fast \\
        --executor fabric --store fab.sqlite
    python -m repro status --store fab.sqlite --json

Fleets without shared storage speak HTTP instead: ``repro serve`` fronts
the store file with the experiment service (:mod:`repro.service`), and
``worker``/``status``/``submit`` accept ``--url`` (plus ``--token`` or
the ``REPRO_TOKEN`` environment variable) in place of ``--store``::

    export REPRO_TOKEN=$(python -c 'import secrets; print(secrets.token_hex())')
    python -m repro serve --store fab.sqlite --port 8537 &
    python -m repro worker --url http://fab-host:8537 --max-idle 120 &
    python -m repro status --url http://fab-host:8537 --json
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
import time
from dataclasses import asdict

from repro.analysis.io import save_result_json
from repro.analysis.tables import render_table
from repro.core.config import cortex_a53_public_config, cortex_a72_public_config
from repro.engine import EvaluationEngine
from repro.hardware.board import FireflyRK3399
from repro.hardware.lmbench import lat_mem_rd
from repro.store import open_store
from repro.tuning.cost import cpi_error
from repro.validation.campaign import PROFILES, ValidationCampaign
from repro.workloads.microbench import ALL_MICROBENCHMARKS, MICROBENCHMARKS, list_microbenchmarks
from repro.workloads.spec import SPEC_WORKLOADS


def _lookup_workload(name: str):
    if name in MICROBENCHMARKS:
        return MICROBENCHMARKS[name]
    if name in SPEC_WORKLOADS:
        return SPEC_WORKLOADS[name]
    raise SystemExit(f"unknown workload {name!r}; try 'list-workloads'")


def _public_config(core: str):
    key = core.lower().replace("cortex-", "")
    if key == "a53":
        return cortex_a53_public_config()
    if key == "a72":
        return cortex_a72_public_config()
    raise SystemExit(f"unknown core {core!r}; the board has a53 and a72")


def _convert_token(raw: str):
    """One ``--set`` value token to int/float/bool/str."""
    for conv in (int, float):
        try:
            return conv(raw)
        except ValueError:
            continue
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _parse_overrides(pairs):
    """``key=value`` strings into a dotted-path update dict."""
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        out[key] = _convert_token(raw)
    return out


def _apply_overrides(config, overrides):
    """Apply ``--set`` overrides with up-front validation.

    Unknown dotted paths and invalid component names surface here as a
    clean error with the registry's did-you-mean suggestion, instead of
    a traceback from deep inside a simulation.
    """
    try:
        return config.with_updates(overrides)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"bad --set parameter: {message}") from None


def _parse_sweep_sets(pairs):
    """``key=v1,v2,...`` strings into an ordered {key: [values]} grid."""
    if not pairs:
        raise SystemExit("sweep needs at least one --set key=v1,v2,...")
    grid = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=v1,v2,..., got {pair!r}")
        key, raw = pair.split("=", 1)
        if key in grid:
            raise SystemExit(f"--set {key} given twice; list all values in one --set")
        values = [_convert_token(tok) for tok in raw.split(",") if tok != ""]
        if not values:
            raise SystemExit(f"--set {key} has no values")
        grid[key] = values
    return grid


def cmd_list_workloads(args) -> int:
    rows = []
    for wl in list_microbenchmarks(args.category):
        rows.append([wl.name, wl.category, wl.paper_instructions])
    if args.category is None:
        for wl in SPEC_WORKLOADS.values():
            rows.append([wl.name, wl.category, wl.paper_instructions])
    print(render_table(["name", "category", "paper instructions"], rows))
    return 0


def _open_store(args):
    """The run's persistent store, or ``None`` without ``--store``."""
    path = getattr(args, "store", None)
    return open_store(path) if path else None


def _check_executor(args) -> str:
    """Validate ``--executor`` against the other knobs; returns it.

    The fabric executor queues work in the store file for external
    ``repro worker`` processes, so it is meaningless without ``--store``;
    the process executor needs ``--jobs >= 2`` to have a pool to run on.
    Both fail here, before any simulation starts.
    """
    executor = getattr(args, "executor", None)
    if executor == "fabric" and not getattr(args, "store", None):
        raise SystemExit(
            "--executor fabric needs --store PATH (the job queue lives in "
            "the store file the workers share)"
        )
    if executor == "process" and getattr(args, "jobs", 1) < 2:
        raise SystemExit(
            "--executor process needs --jobs 2 or more (or drop --executor: "
            "--jobs alone selects the process pool)"
        )
    return executor


def _resolve_resume(store, run_id: str, kind: str):
    """Fetch and reopen the run record behind ``--resume RUN_ID``."""
    if store is None:
        raise SystemExit("--resume needs --store (the run lives in a store)")
    try:
        record = store.registry.get(run_id)
    except KeyError:
        raise SystemExit(f"unknown run id {run_id!r}; try 'store ls'") from None
    if record.kind != kind:
        raise SystemExit(f"run {run_id!r} is a {record.kind!r} run, not {kind}")
    store.registry.reopen(record.run_id)
    return record


def _register_run(store, kind: str, args, params: dict):
    """Record a CLI run in the store's registry (no-op without a store)."""
    if store is None:
        return None
    return store.registry.create(
        kind, core=getattr(args, "core", None), params=params
    )


def _finish_run(store, record, engine, status: str = "completed") -> None:
    if store is None or record is None:
        return
    store.registry.finish(
        record.run_id, status=status, telemetry=asdict(engine.telemetry)
    )


def cmd_measure(args) -> int:
    """Hardware ground truth for one workload — through the engine, so a
    ``--store`` makes the measurement durable and shareable."""
    board = FireflyRK3399()
    wl = _lookup_workload(args.workload)
    store = _open_store(args)
    record = _register_run(store, "measure", args, {"workload": args.workload})
    status = "failed"
    try:
        with EvaluationEngine(hw=board.core(args.core), workloads=[wl],
                              store=store) as engine:
            result = engine.measure_hw(args.workload)
            rows = [[name, value] for name, value in sorted(result.counters.items())]
            rows.append(["cpi", f"{result.cpi:.4f}"])
            print(render_table(["counter", "value"],
                               rows, title=f"{args.workload} on {result.core}"))
            status = "completed"
            _finish_run(store, record, engine, status=status)
    finally:
        if store is not None:
            if status != "completed":
                store.registry.finish(record.run_id, status=status)
            else:
                print(f"engine: {engine.telemetry.summary()}")
            store.close()
    return 0


def cmd_simulate(args) -> int:
    """One (config, workload) trial vs hardware — engine-routed: cached,
    telemetered, and persistent when ``--store`` is given."""
    board = FireflyRK3399()
    overrides = _parse_overrides(args.set)
    config = _apply_overrides(_public_config(args.core), overrides)
    wl = _lookup_workload(args.workload)
    executor = _check_executor(args)
    store = _open_store(args)
    record = _register_run(store, "simulate", args,
                           {"workload": args.workload, "set": overrides})
    status = "failed"
    try:
        with EvaluationEngine(hw=board.core(args.core), workloads=[wl],
                              executor=executor, store=store) as engine:
            stats = engine.simulate(config, args.workload)
            hw = engine.measure_hw(args.workload)
            rows = [
                ["instructions", stats.instructions, hw.instructions],
                ["cycles", stats.cycles, hw.cycles],
                ["CPI", f"{stats.cpi:.4f}", f"{hw.cpi:.4f}"],
                ["branch misses", stats.branch.mispredicts, hw.counter("branch-misses")],
                ["L1D misses", stats.l1d.misses, hw.counter("L1-dcache-load-misses")],
                ["L2 misses", stats.l2.misses, hw.counter("l2-misses")],
            ]
            print(render_table(["metric", "simulator", "hardware"], rows,
                               title=f"{args.workload} — {config.name}"))
            print(f"CPI error: {cpi_error(stats, hw):.1%}")
            status = "completed"
            _finish_run(store, record, engine, status=status)
    finally:
        if store is not None:
            if status != "completed":
                store.registry.finish(record.run_id, status=status)
            else:
                print(f"engine: {engine.telemetry.summary()}")
            store.close()
    return 0


def cmd_lmbench(args) -> int:
    board = FireflyRK3399()
    config = _public_config(args.core)
    estimates = lat_mem_rd(board.core(args.core),
                           l1_size=config.l1d.size, l2_size=config.l2.size)
    print(f"lmbench estimates for {args.core}: {estimates.summary()}")
    return 0


def cmd_validate(args) -> int:
    board = FireflyRK3399()
    executor = _check_executor(args)
    store = _open_store(args)
    core, profile, seed, stages = args.core, args.profile, args.seed, args.stages
    resume, record = False, None
    try:
        if args.resume:
            record = _resolve_resume(store, args.resume, "validate")
            # The record carries the run's identity; only --jobs may
            # differ (parallelism never changes results).
            core, profile, seed = record.core, record.profile, record.seed
            stages = record.params.get("stages", stages)
            resume = True
            print(f"resuming run {record.run_id} ({core}, {profile} profile)")
        elif store is not None:
            record = store.registry.create(
                "validate", core=core, profile=profile, seed=seed,
                params={"stages": stages, "jobs": args.jobs,
                        "race_mode": args.race_mode}, run_id=args.run_id,
            )
            print(f"run id: {record.run_id}")
        campaign = ValidationCampaign(
            board, core=core, profile=profile, seed=seed, verbose=True,
            jobs=args.jobs, executor=executor, store=store,
            run_id=record.run_id if record else None,
            race_mode=args.race_mode, lookahead=args.lookahead,
        )
        status = "interrupted"
        try:
            result = campaign.run(stages=stages, resume=resume)
            status = "completed"
        finally:
            campaign.close()
            if store is not None:
                store.registry.finish(
                    record.run_id, status=status,
                    telemetry=asdict(campaign.engine.telemetry),
                )
        print(result.summary())
        print(f"engine: {campaign.engine.telemetry.summary()}")
        if args.out:
            payload = {
                "core": result.core,
                "profile": result.profile,
                "untuned_errors": result.untuned_errors,
                "final_errors": result.final_errors,
                "tuned_assignment": result.stages[-1].irace.best_assignment,
            }
            save_result_json(args.out, payload)
            print(f"wrote {args.out}")
    finally:
        if store is not None:
            store.close()
    return 0


def cmd_sweep(args) -> int:
    """Scenario exploration: cross-product of --set value lists."""
    board = FireflyRK3399()
    executor = _check_executor(args)
    store = _open_store(args)
    core, scale, workload_arg = args.core, args.scale, args.workloads
    record, resume = None, False
    if args.resume:
        record = _resolve_resume(store, args.resume, "sweep")
        core = record.core
        scale = record.params["scale"]
        workload_arg = record.params["workloads"]
        # The grid is recorded as ordered [key, values] pairs: canonical
        # JSON sorts dict keys, and axis order defines trial order.
        grid = dict(record.params["grid"])
        resume = True
        print(f"resuming run {record.run_id} ({core})")
    else:
        grid = _parse_sweep_sets(args.set)
    base = _public_config(core)
    keys = list(grid)
    combos = [dict(zip(keys, values)) for values in itertools.product(*grid.values())]
    if workload_arg:
        names = [n.strip() for n in workload_arg.split(",") if n.strip()]
        if not names:
            raise SystemExit("--workloads names no workloads")
        workloads = [_lookup_workload(n) for n in names]
    else:
        workloads = list(ALL_MICROBENCHMARKS)
        names = [wl.name for wl in workloads]

    configs = [_apply_overrides(base, combo) for combo in combos]

    if store is not None and not resume:
        record = store.registry.create(
            "sweep", core=core,
            params={"grid": [[key, values] for key, values in grid.items()],
                    "workloads": workload_arg, "scale": scale,
                    "jobs": args.jobs},
        )
        print(f"run id: {record.run_id}")

    status, telemetry = "interrupted", None
    try:
        with EvaluationEngine(
            hw=board.core(core), workloads=workloads,
            scale=scale, jobs=args.jobs, executor=executor, store=store,
        ) as engine:
            pairs = [(config, name) for config in configs for name in names]
            stats_list = engine.simulate_batch(pairs)

            rows, results, combo_means = [], [], []
            stats_iter = iter(stats_list)
            for combo in combos:
                errs = []
                for name in names:
                    stats = next(stats_iter)
                    hw = engine.measure_hw(name)
                    err = cpi_error(stats, hw)
                    errs.append(err)
                    rows.append([*[combo[k] for k in keys], name,
                                 f"{stats.cpi:.4f}", f"{hw.cpi:.4f}", f"{err:.1%}"])
                    results.append({"workload": name, **combo,
                                    "sim_cpi": stats.cpi, "hw_cpi": hw.cpi,
                                    "cpi_error": err})
                combo_means.append(sum(errs) / len(errs))
            telemetry = engine.telemetry
            status = "completed"
    finally:
        if store is not None:
            if record is not None:
                store.registry.finish(record.run_id, status=status,
                                      telemetry=asdict(telemetry) if telemetry else None)
            if status != "completed":
                store.close()

    print(render_table([*keys, "workload", "sim CPI", "hw CPI", "CPI err"],
                       rows, title=f"sweep — {base.name} on {core}"))
    best = min(range(len(combos)), key=combo_means.__getitem__)
    best_desc = ", ".join(f"{k}={combos[best][k]}" for k in keys)
    print(f"{len(combos)} configurations x {len(names)} workloads "
          f"= {len(pairs)} trials ({telemetry.unique_trials} unique simulations)")
    print(f"best mean CPI error: {combo_means[best]:.1%} ({best_desc})")
    if args.out:
        payload = {
            "core": core,
            "base_config": base.name,
            "grid": grid,
            "workloads": names,
            "scale": scale,
            "trials": results,
            "best": {"mean_cpi_error": combo_means[best], **combos[best]},
        }
        save_result_json(args.out, payload)
        print(f"wrote {args.out}")
    if store is not None:
        store.close()
    return 0


def cmd_components(args) -> int:
    """List the component registry: slots, components, knobs, sites."""
    from repro.components import REGISTRY, registry_fingerprint

    if args.json:
        import json as _json

        payload = REGISTRY.describe()
        payload["fingerprint"] = registry_fingerprint()
        print(_json.dumps(payload, indent=1, sort_keys=True))
        return 0

    slots = REGISTRY.slots()
    if args.slot:
        slots = [s for s in slots if s.name == args.slot]
        if not slots:
            known = ", ".join(s.name for s in REGISTRY.slots())
            raise SystemExit(f"unknown slot {args.slot!r}; choose from {known}")

    for slot in slots:
        rows = []
        for comp in slot:
            binding = ", ".join(
                f"{kwarg}<-{fieldname}" for kwarg, fieldname in comp.params
            ) or "-"
            flags = []
            if comp.null:
                flags.append("null")
            if not comp.tunable:
                flags.append("untunable")
            rows.append([comp.name, f"stage {comp.stage}",
                         " ".join(flags) or "-", binding, comp.summary])
        selector = slot.selector or "(structural)"
        print(render_table(
            ["component", "raceable", "flags", "knob binding", "summary"],
            rows, title=f"slot {slot.name} — selector field: {selector}"))

        knob_rows = []
        for knob in slot.knobs:
            condition = "always"
            if knob.gated and slot.null_name is not None:
                condition = f"when {slot.selector} != {slot.null_name!r}"
            candidates = ", ".join(map(str, knob.values))
            if not candidates and knob.kind == "boolean":
                candidates = "False, True"
            knob_rows.append([knob.field, knob.kind, candidates or "-",
                              condition, knob.summary])
        if knob_rows:
            print(render_table(["knob", "kind", "candidates", "active", "summary"],
                               knob_rows, title=f"slot {slot.name} — knobs"))

        site_rows = []
        for site in REGISTRY.sites(slot.name):
            restricted = ", ".join(site.components) if site.components else "all tunable"
            over = "; ".join(
                f"{field}={', '.join(map(str, values))}"
                for field, values in (site.values or {}).items()
            ) or "-"
            site_rows.append([site.section, restricted, over,
                              ", ".join(site.domains) or "-"])
        if site_rows:
            print(render_table(
                ["config section", "candidates", "knob overrides", "round domains"],
                site_rows, title=f"slot {slot.name} — tuning sites"))
        print()
    print(f"registry fingerprint: {registry_fingerprint()} "
          "(folded into engine cache keys)")
    return 0


def cmd_bench(args) -> int:
    """Run the perf suite and record/update ``BENCH_<host>.json``."""
    from repro.bench import (
        compare_runs,
        default_bench_path,
        get_suite,
        load_report,
        run_bench,
    )

    suite = "quick" if args.quick else args.suite
    if args.list:
        rows = [[s.name, s.kind, s.core if s.kind != "trace" else "-",
                 len(s.workloads), s.repeats]
                for s in get_suite(suite)]
        print(render_table(["scenario", "kind", "core", "workloads", "repeats"],
                           rows, title=f"bench suite — {suite}"))
        return 0

    report, entry, path = run_bench(
        suite=suite, repeats=args.repeat,
        out=args.out if args.out else default_bench_path(),
        progress=print,
    )
    rows = []
    for scn in entry["scenarios"]:
        rows.append([
            scn["name"], scn["kind"], scn["core"] or "-", scn["workloads"],
            f"{scn['wall_seconds'] * 1e3:.1f}",
            f"{scn['instructions_per_second']:,.0f}",
            f"{scn['cycles_per_second']:,.0f}" if scn["cycles_per_second"] else "-",
        ])
    print(render_table(
        ["scenario", "kind", "core", "workloads", "wall ms",
         "instr/s", "sim cycles/s"],
        rows, title=f"repro bench — {suite} suite"))
    totals = entry["totals"]
    print(f"simulate scenarios: {totals['simulate_instructions']} instructions "
          f"in {totals['simulate_wall_seconds'] * 1e3:.1f} ms = "
          f"{totals['simulate_instructions_per_second']:,.0f} instr/s")
    for scn in entry["scenarios"]:
        if not scn["telemetry"]:
            continue
        t = scn["telemetry"]
        if scn["kind"] == "fabric":
            print(f"fabric dispatch ({scn['name']}): {t['tasks']} tasks, "
                  f"{t['dispatch_overhead_ms_per_task']:.2f} ms/task overhead "
                  f"(serial {t['serial_wall_seconds'] * 1e3:.1f} ms, "
                  f"fabric {t['fabric_wall_seconds'] * 1e3:.1f} ms)")
        elif scn["kind"] == "service":
            print(f"service dispatch ({scn['name']}): {t['tasks']} tasks, "
                  f"{t['dispatch_overhead_ms_per_task']:.2f} ms/task overhead "
                  f"(serial {t['serial_wall_seconds'] * 1e3:.1f} ms, "
                  f"service {t['service_wall_seconds'] * 1e3:.1f} ms)")
        elif scn["kind"] == "dispatch":
            print(f"dispatch throughput ({scn['name']}): {t['tasks']} tasks, "
                  f"sqlite {t['sqlite_overhead_ms_per_task']:.2f} ms/task, "
                  f"http {t['http_overhead_ms_per_task']:.2f} ms/task "
                  f"(serial {t['serial_wall_seconds'] * 1e3:.1f} ms, "
                  f"sqlite {t['sqlite_wall_seconds'] * 1e3:.1f} ms, "
                  f"http {t['http_wall_seconds'] * 1e3:.1f} ms)")
        elif scn["kind"] == "batch":
            print(f"batched race step ({scn['name']}): {t['candidates']} candidates, "
                  f"{t['speedup_vs_isolated']:.2f}x vs isolated passes, "
                  f"{t['speedup_vs_warm_serial']:.2f}x vs warm serial "
                  f"(batched {t['batched_wall_seconds'] * 1e3:.1f} ms)")
        elif scn["kind"] == "mmap":
            print(f"trace attach ({scn['name']}): {t['blobs']} blobs, "
                  f"attach {t['attach_wall_seconds'] * 1e3:.2f} ms vs "
                  f"record+persist {t['build_persist_wall_seconds'] * 1e3:.1f} ms "
                  f"({t['attach_speedup']:.0f}x)")
        elif scn["kind"] == "race":
            print(f"async race ({scn['name']}): {t['tasks']} tasks on "
                  f"{t['workers']} skewed workers, busy fraction "
                  f"{t['sync_busy_fraction']:.2f} sync -> "
                  f"{t['async_busy_fraction']:.2f} async "
                  f"({t['saturation_gain']:.2f}x saturation, "
                  f"{t['wall_speedup']:.2f}x wall)")
        else:
            print(f"engine telemetry ({scn['name']}): "
                  f"{t['requested_trials']} requested, "
                  f"{t['unique_trials']} unique, "
                  f"{t['sim_cache_hits']} cache hits")
    print(f"wrote {len(report['runs'])} run(s) to {path}")
    if args.json:
        import json as _json

        print(_json.dumps(entry, indent=1, sort_keys=True))
    if args.compare:
        baseline = load_report(args.compare)
        rows, regressions = compare_runs(
            baseline["runs"][-1], entry, max_regression=args.max_regression,
        )
        if not rows:
            print(f"compare: no scenarios in common with {args.compare}")
        else:
            table = [[r["name"],
                      f"{r['baseline_instructions_per_second']:,.0f}",
                      f"{r['current_instructions_per_second']:,.0f}",
                      f"{r['ratio']:.2f}x",
                      "REGRESSED" if r["regressed"] else "ok"]
                     for r in rows]
            print(render_table(
                ["scenario", "baseline instr/s", "current instr/s",
                 "ratio", "verdict"],
                table, title=f"compare vs {args.compare} "
                             f"(threshold -{args.max_regression:.0%})"))
        if regressions:
            names = ", ".join(r["name"] for r in regressions)
            print(f"compare: {len(regressions)} scenario(s) regressed "
                  f">{args.max_regression:.0%}: {names}")
            if not args.compare_warn:
                return 1
            print("compare: --compare-warn set; not failing")
    return 0


def _fabric_spec(args):
    """Resolve a fabric subcommand's queue/store spec.

    Exactly one of ``--store PATH`` (shared file) and ``--url URL``
    (experiment service) must be given; returns ``(spec, token)``
    where the token — ``--token`` falling back to ``REPRO_TOKEN`` — is
    ``None`` for file specs.
    """
    url = getattr(args, "url", None)
    if bool(args.store) == bool(url):
        raise SystemExit(
            "give exactly one of --store PATH (shared store file) or "
            "--url URL (remote experiment service)"
        )
    if url:
        from repro.service.protocol import resolve_token

        return url, resolve_token(getattr(args, "token", None))
    return args.store, None


def _fabric_queue(spec: str, token: str = None):
    """A :class:`~repro.fabric.api.TaskQueue` for a file path or URL."""
    from repro.service.protocol import is_url

    if is_url(spec):
        from repro.service.client import HttpQueue

        return HttpQueue(spec, token=token)
    from repro.fabric import JobQueue

    return JobQueue(spec)


def cmd_serve(args) -> int:
    """Serve a fabric store over HTTP for a remote worker fleet."""
    from repro.service.protocol import WIRE_VERSION, resolve_token
    from repro.service.server import ExperimentService

    token = resolve_token(args.token)
    if not token:
        raise SystemExit(
            "repro serve refuses to run unauthenticated: pass --token TOKEN "
            "or set the REPRO_TOKEN environment variable"
        )
    service = ExperimentService(
        args.store, token=token, host=args.host, port=args.port,
        max_depth=args.max_depth, lease_seconds=args.lease,
        progress=print if args.verbose else None,
    )
    depth = "unbounded" if args.max_depth is None else str(args.max_depth)
    print(f"serving {args.store} at {service.url} "
          f"(wire v{WIRE_VERSION}, max depth {depth}; Ctrl-C to stop)")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nserve: shutting down")
    finally:
        service.close()
    return 0


def cmd_submit(args) -> int:
    """Enqueue a grid of simulation tasks on the fabric (no waiting).

    The sweep-shaped spec (``--set key=v1,v2`` axes x workloads) is
    decomposed into content-keyed tasks, deduplicated against the
    store, and left on the durable queue for ``repro worker``
    processes to chew through — pre-warming the store for campaigns
    and sweeps that run later.
    """
    from repro.fabric import expand_grid, plan_simulations

    grid = _parse_sweep_sets(args.set) if args.set else {}
    base = _public_config(args.core)
    if args.workloads:
        names = [n.strip() for n in args.workloads.split(",") if n.strip()]
        if not names:
            raise SystemExit("--workloads names no workloads")
    else:
        names = [wl.name for wl in ALL_MICROBENCHMARKS]
    for name in names:
        _lookup_workload(name)  # fail on unknown names before enqueueing
    try:
        items = expand_grid(base, grid, names, scale=args.scale)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"bad --set parameter: {message}") from None
    spec, token = _fabric_spec(args)
    with open_store(spec, token=token) as store:
        plan = plan_simulations(items, store=store)
        with _fabric_queue(spec, token) as queue:
            added = queue.enqueue(plan.tasks, submitted_by="submit")
            depth = queue.depth()
    already_queued = len(plan.tasks) - added
    flag = "--url" if getattr(args, "url", None) else "--store"
    print(f"submit: {len(plan.keys)} unique trials: {added} enqueued, "
          f"{len(plan.store_hits)} already in store, "
          f"{already_queued} already queued")
    print(f"queue depth now {depth}; run `repro worker {flag} {spec}` "
          "to execute")
    return 0


def cmd_worker(args) -> int:
    """Run one fabric worker against a shared store file or service URL."""
    from repro.fabric import FabricWorker

    spec, token = _fabric_spec(args)
    worker = FabricWorker(
        spec,
        worker_id=args.id,
        lease=args.lease,
        poll=args.poll,
        max_tasks=args.max_tasks,
        max_idle=args.max_idle,
        drain=args.drain,
        progress=print,
        token=token,
        max_retries=args.max_retries,
    )
    print(f"worker {worker.worker_id} on {spec} "
          f"(lease {args.lease:.0f}s, pid {os.getpid()})")
    stats = worker.run()
    print(f"worker {worker.worker_id}: {stats.claimed} claimed, "
          f"{stats.completed} completed, {stats.failed} failed, "
          f"{stats.lost_leases} leases lost")
    return 0


def _human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB"):
        if n < 1024 or unit == "MiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}MiB"


def cmd_status(args) -> int:
    """Queue depth, leases, workers and throughput of a fabric store."""
    from repro.fabric import status_snapshot

    spec, token = _fabric_spec(args)
    if args.requeue_dead:
        with _fabric_queue(spec, token) as queue:
            revived = queue.requeue_dead()
        print(f"requeued {revived} dead task(s)")
    snap = status_snapshot(spec, token=token)
    if args.json:
        import json as _json

        print(_json.dumps(snap, indent=1, sort_keys=True))
        return 0

    counts = snap["queue"]
    print(render_table(
        ["state", "tasks"],
        [[state, counts[state]] for state in ("queued", "leased", "done", "dead")]
        + [["(retries)", snap["retries"]]],
        title=f"fabric queue — {spec}"))
    if snap["leases"]:
        rows = [[l["worker"], f"{l['expires_in_seconds']:.1f}s",
                 l["attempts"], l["key"][:60]]
                for l in snap["leases"]]
        print(render_table(["worker", "expires in", "attempt", "task key"],
                           rows, title="live leases"))
    if snap["dead"]:
        rows = [[d["attempts"], (d["error"] or "-")[:50], d["key"][:50]]
                for d in snap["dead"]]
        print(render_table(["attempts", "last error", "task key"],
                           rows, title="dead letters"))
    if snap["workers"]:
        rows = []
        for w in snap["workers"]:
            rows.append([
                w["worker_id"], w["pid"] or "-",
                f"{w['last_seen_seconds_ago']:.1f}s ago",
                w["tasks_done"], w["tasks_failed"],
                f"{w['tasks_per_second']:.2f}/s",
                w["store_hits"],
                f"{w['unique_trials']}/{w['requested_trials']}",
                w["batched_trials"],
                w["wire_requests"],
                _human_bytes(w["wire_bytes_out"] + w["wire_bytes_in"]),
            ])
        print(render_table(
            ["worker", "pid", "last seen", "done", "failed", "throughput",
             "store hits", "trials (unique/req)", "batched", "wire reqs",
             "wire bytes"],
            rows, title="workers"))
    results = snap["results"]
    print(f"store: {results['sim_results']} sim results, "
          f"{results['hw_results']} hw results, "
          f"{results['trial_costs']} trial costs")
    return 0


def cmd_store_stats(args) -> int:
    with open_store(args.store) as store:
        stats = store.stats()
    rows = [[key, stats[key]] for key in
            ("backend", "path", "schema_version", "sim_results", "hw_results",
             "trial_costs", "runs", "checkpoints", "size_bytes")]
    print(render_table(["field", "value"], rows, title=f"store — {args.store}"))
    return 0


def cmd_store_ls(args) -> int:
    with open_store(args.store) as store:
        records = store.registry.list(kind=args.kind, status=args.status)
    rows = []
    for r in records:
        started = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(r.started))
        wall = f"{r.wall_seconds:.1f}s" if r.wall_seconds is not None else "-"
        trials = "-"
        if r.telemetry:
            trials = (f"{r.telemetry.get('unique_trials', 0)}"
                      f"/{r.telemetry.get('requested_trials', 0)}")
        rows.append([r.run_id, r.kind, r.core or "-", r.profile or "-",
                     r.status, started, wall, trials])
    print(render_table(
        ["run id", "kind", "core", "profile", "status", "started",
         "wall", "trials (unique/req)"],
        rows, title=f"runs — {args.store}"))
    return 0


def cmd_store_gc(args) -> int:
    with open_store(args.store) as store:
        removed = store.gc(days=args.days)
    print(f"gc: removed {removed['checkpoints_removed']} checkpoints of finished runs, "
          f"pruned {removed['rows_pruned']} result rows")
    return 0


def cmd_store_export(args) -> int:
    with open_store(args.store) as store:
        counts = store.export_json(args.file)
    total = sum(counts.values())
    print(f"exported {total} rows ({', '.join(f'{k}={v}' for k, v in counts.items())}) "
          f"to {args.file}")
    return 0


def cmd_store_import(args) -> int:
    with open_store(args.store) as store:
        counts = store.import_json(args.file, replace=args.replace)
    total = sum(counts.values())
    print(f"imported {total} new rows "
          f"({', '.join(f'{k}={v}' for k, v in counts.items())}) from {args.file}")
    return 0


def _add_fabric_target(p) -> None:
    """``--store`` / ``--url`` / ``--token`` trio of fabric subcommands."""
    p.add_argument("--store", default=None,
                   help="shared store file (queue + results)")
    p.add_argument("--url", default=None,
                   help="experiment service URL (http://host:port) instead "
                        "of --store")
    p.add_argument("--token", default=None,
                   help="bearer token for --url (default: REPRO_TOKEN "
                        "environment variable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Racing to Hardware-Validated Simulation — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="list micro-benchmarks and SPEC proxies")
    p.add_argument("--category", choices=["memory", "control", "dataparallel",
                                          "execution", "store"], default=None)
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("measure", help="perf-measure a workload on the board")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.add_argument("--store", default=None,
                   help="persistent experiment store (SQLite path)")
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("simulate", help="simulate a workload and compare to hardware")
    p.add_argument("--core", default="a53")
    p.add_argument("--workload", required=True)
    p.add_argument("--set", action="append", metavar="KEY=VALUE",
                   help="override a config parameter (repeatable)")
    p.add_argument("--store", default=None,
                   help="persistent experiment store (SQLite path)")
    p.add_argument("--executor", choices=["serial", "process", "fabric"],
                   default=None,
                   help="execution backend (fabric = distributed workers)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("lmbench", help="estimate cache/memory latencies (step #2)")
    p.add_argument("--core", default="a53")
    p.set_defaults(func=cmd_lmbench)

    p = sub.add_parser("validate", help="run the full validation campaign")
    p.add_argument("--core", default="a53")
    p.add_argument("--profile", choices=sorted(PROFILES), default="fast")
    p.add_argument("--stages", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel simulation processes (1 = serial)")
    p.add_argument("--executor", choices=["serial", "process", "fabric"],
                   default=None,
                   help="execution backend (fabric = distributed workers "
                        "sharing --store)")
    p.add_argument("--race-mode", choices=["sync", "async"], default="sync",
                   help="race execution: sync = barrier per instance step, "
                        "async = speculative scheduling that keeps workers "
                        "saturated (bit-identical results either way)")
    p.add_argument("--lookahead", type=int, default=2,
                   help="async racing: instance steps speculated beyond the "
                        "commit frontier per alive candidate")
    p.add_argument("--out", default=None, help="write results JSON here")
    p.add_argument("--store", default=None,
                   help="persistent experiment store (SQLite path)")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="resume an interrupted run from its checkpoints")
    p.add_argument("--run-id", default=None,
                   help="explicit run id for the registry (default: generated)")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "sweep",
        help="simulate the cross-product of --set value lists over workloads",
    )
    p.add_argument("--core", default="a53")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names (default: all 40 kernels)")
    p.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                   help="parameter value list to sweep (repeatable)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="trace scale (1.0 = nominal length)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel simulation processes (1 = serial)")
    p.add_argument("--executor", choices=["serial", "process", "fabric"],
                   default=None,
                   help="execution backend (fabric = distributed workers "
                        "sharing --store)")
    p.add_argument("--out", default=None, help="write sweep results JSON here")
    p.add_argument("--store", default=None,
                   help="persistent experiment store (SQLite path)")
    p.add_argument("--resume", default=None, metavar="RUN_ID",
                   help="re-run a recorded sweep (warm store makes it cheap)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "submit",
        help="enqueue a task grid on the distributed fabric (no waiting)",
    )
    p.add_argument("--core", default="a53")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names (default: all 40 kernels)")
    p.add_argument("--set", action="append", metavar="KEY=V1,V2,...",
                   help="parameter value list axis (repeatable; optional)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="trace scale (1.0 = nominal length)")
    _add_fabric_target(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "serve",
        help="serve a fabric store over HTTP for remote workers",
    )
    p.add_argument("--store", required=True,
                   help="store file to serve (queue + results)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback; 0.0.0.0 for a fleet)")
    p.add_argument("--port", type=int, default=8537,
                   help="TCP port (default 8537; 0 picks a free port)")
    p.add_argument("--token", default=None,
                   help="bearer token workers must present (default: "
                        "REPRO_TOKEN environment variable; required)")
    p.add_argument("--max-depth", type=int, default=None,
                   help="backpressure: reject submits (429) while this many "
                        "tasks are outstanding (default: unbounded)")
    p.add_argument("--lease", type=float, default=30.0,
                   help="default lease seconds for claims that don't override")
    p.add_argument("--verbose", action="store_true",
                   help="log every request (tokens redacted)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run a fabric worker: lease tasks, simulate, write the store",
    )
    _add_fabric_target(p)
    p.add_argument("--id", default=None,
                   help="stable worker id (default: generated)")
    p.add_argument("--lease", type=float, default=30.0,
                   help="lease seconds per claim (heartbeat renews at 1/3)")
    p.add_argument("--poll", type=float, default=0.5,
                   help="seconds between empty claim attempts")
    p.add_argument("--max-tasks", type=int, default=None,
                   help="exit after executing this many tasks")
    p.add_argument("--max-idle", type=float, default=None,
                   help="exit after this many seconds without work")
    p.add_argument("--drain", action="store_true",
                   help="run the current backlog, then exit")
    p.add_argument("--max-retries", type=int, default=None,
                   help="with --url: transient-failure budget per request "
                        "(connection refused, timeout, 5xx, 429; "
                        "exponential backoff with jitter between tries)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "status",
        help="fabric queue depth, leases, workers, throughput",
    )
    _add_fabric_target(p)
    p.add_argument("--json", action="store_true",
                   help="emit the snapshot as JSON")
    p.add_argument("--requeue-dead", action="store_true",
                   help="give dead-lettered tasks a fresh claim budget first")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "components",
        help="list registered components per slot (knobs, candidates, sites)",
    )
    p.add_argument("--slot", default=None,
                   help="show one slot only (e.g. prefetcher)")
    p.add_argument("--json", action="store_true",
                   help="emit the registry description as JSON")
    p.set_defaults(func=cmd_components)

    p = sub.add_parser(
        "bench",
        help="run the perf scenario suite, update BENCH_<host>.json",
    )
    p.add_argument("--suite", choices=["full", "quick"], default="full")
    p.add_argument("--quick", action="store_true",
                   help="shorthand for --suite quick (CI smoke)")
    p.add_argument("--repeat", type=int, default=None,
                   help="override per-scenario repeat count")
    p.add_argument("--out", default=None,
                   help="report path (default: BENCH_<host>.json)")
    p.add_argument("--list", action="store_true",
                   help="print the scenario list without running")
    p.add_argument("--json", action="store_true",
                   help="also print this run's entry as JSON")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="diff this run against a baseline report; exit "
                        "non-zero on regression")
    p.add_argument("--compare-warn", action="store_true",
                   help="with --compare: report regressions but exit 0 "
                        "(soft gate for noisy shared runners)")
    p.add_argument("--max-regression", type=float, default=0.15,
                   help="relative throughput loss tolerated by --compare "
                        "(default 0.15)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("store", help="manage a persistent experiment store")
    store_sub = p.add_subparsers(dest="store_command", required=True)

    sp = store_sub.add_parser("stats", help="row counts, schema, size")
    sp.add_argument("--store", required=True)
    sp.set_defaults(func=cmd_store_stats)

    sp = store_sub.add_parser("ls", help="list registered runs")
    sp.add_argument("--store", required=True)
    sp.add_argument("--kind", default=None,
                    choices=["validate", "sweep", "measure", "simulate"])
    sp.add_argument("--status", default=None,
                    choices=["running", "interrupted", "completed", "failed"])
    sp.set_defaults(func=cmd_store_ls)

    sp = store_sub.add_parser("gc", help="drop finished runs' checkpoints, prune old rows")
    sp.add_argument("--store", required=True)
    sp.add_argument("--days", type=float, default=None,
                    help="also prune result rows older than this many days")
    sp.set_defaults(func=cmd_store_gc)

    sp = store_sub.add_parser("export", help="dump the store to a portable JSON file")
    sp.add_argument("--store", required=True)
    sp.add_argument("file")
    sp.set_defaults(func=cmd_store_export)

    sp = store_sub.add_parser("import", help="merge an exported JSON file into the store")
    sp.add_argument("--store", required=True)
    sp.add_argument("file")
    sp.add_argument("--replace", action="store_true",
                    help="overwrite rows that already exist (default: skip)")
    sp.set_defaults(func=cmd_store_import)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
