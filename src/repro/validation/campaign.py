"""The end-to-end validation campaign (Figure 1).

Steps:

1. build the model from publicly available information
   (:func:`cortex_a53_public_config` / :func:`cortex_a72_public_config`);
2. set latency parameters using lmbench micro-benchmarks;
3. best-effort guesses for the remaining unknowns (the public configs'
   defaults);
4. tune the unknown parameters with iterated racing over the targeted
   micro-benchmark suite;
5. inspect per-component errors; where a component still shows high
   error, apply the corresponding *model fix* (add the indirect
   predictor and GHB prefetcher options, initialise the anomalous
   arrays, replace a buggy decoder) and run another tuning round;
6. emit the tuned model.

The campaign reproduces the §IV-B staging: stage 1 races the *initial*
model's parameter list; the step-5 inspection then unlocks stage 2's
extended list.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field

from repro.components import domain_param_names
from repro.core.config import (
    SimConfig,
    cortex_a53_public_config,
    cortex_a72_public_config,
)
from repro.engine import AssignmentEvaluator, EvaluationEngine
from repro.engine.keys import config_token, decoder_token, overrides_token
from repro.hardware.board import FireflyRK3399, HardwareCore
from repro.hardware.lmbench import apply_latency_estimates, lat_mem_rd
from repro.isa.decoder import BuggyDecoder, Decoder
from repro.store.checkpoint import (
    SETUP_STAGE,
    irace_result_from_payload,
    irace_result_to_payload,
    stage_name,
)
from repro.tuning.cost import make_weighted_cost
from repro.tuning.irace import IraceResult, IraceTuner
from repro.tuning.parameters import ParamSpace
from repro.validation.steps import param_space_for
from repro.workloads.microbench import ALL_MICROBENCHMARKS, MICROBENCHMARKS

#: Step-5 component rounds: which workloads stress a component and which
#: perf metrics join the weighted cost. The paper: "instead of using the
#: CPI error only, a weighted cost function that includes both the branch
#: misprediction rate and the CPI can be used" (§III-A). The *parameters*
#: each round races are not listed here: every tunable's registry
#: declaration carries domain tags, and the round asks the registry for
#: its domain's parameters (:func:`repro.components.domain_param_names`).
_COMPONENT_ROUNDS = {
    "branch": {
        "workloads": ("CCa", "CCe", "CCh", "CCl", "CCm", "CF1", "CRd", "CRf",
                      "CRm", "CS1", "CS3", "MIP"),
        "weights": {"cpi": 1.0, "branch-mpki": 1.0},
    },
    "memory": {
        "workloads": ("MC", "MCS", "MD", "ML2", "ML2_BWld", "ML2_BWldst",
                      "ML2_BWst", "ML2_st", "MM", "MM_st", "M_Dyn"),
        "weights": {"cpi": 1.0, "l1d-mpki": 0.5, "l2-mpki": 0.5},
    },
    "execution": {
        "workloads": ("ED1", "EF", "EI", "EM1", "EM5", "DP1d", "DP1f",
                      "DPcvt", "DPT", "DPTd"),
        "weights": {"cpi": 1.0},
    },
    "store": {
        "workloads": ("STL2", "STL2b", "STc", "ML2_BWst", "MM_st"),
        "weights": {"cpi": 1.0},
    },
}


@dataclass(frozen=True)
class BudgetProfile:
    """Scaling knobs: trial budgets and workload scale."""

    name: str
    stage1_budget: int
    stage2_budget: int
    microbench_scale: float = 1.0
    first_test: int = 6
    n_elites: int = 3


PROFILES = {
    "fast": BudgetProfile("fast", 350, 350, first_test=5, n_elites=2),
    "default": BudgetProfile("default", 1000, 1400),
    "thorough": BudgetProfile("thorough", 3000, 4000),
    # The paper's 10K/100K budgets, for completeness (hours of runtime).
    "paper": BudgetProfile("paper", 10_000, 20_000),
}


@dataclass
class InspectionReport:
    """Step-5 output: per-category errors and recommended fixes."""

    per_benchmark: dict
    per_category: dict
    overall: float
    recommendations: list = field(default_factory=list)

    def summary(self) -> str:
        """Readable per-category error report with recommendations."""
        lines = [f"overall mean CPI error: {self.overall:.1%}"]
        for cat, err in sorted(self.per_category.items()):
            lines.append(f"  {cat:<14}{err:.1%}")
        for rec in self.recommendations:
            lines.append(f"  fix: {rec}")
        return "\n".join(lines)


@dataclass
class StageResult:
    """One tuning round."""

    stage: int
    irace: IraceResult
    tuned_config: SimConfig
    errors: dict
    inspection: InspectionReport


@dataclass
class CampaignResult:
    """Everything the campaign produced."""

    core: str
    profile: str
    public_config: SimConfig
    lmbench_config: SimConfig
    untuned_errors: dict
    stages: list
    final_config: SimConfig
    final_errors: dict

    @property
    def untuned_mean_error(self) -> float:
        """Mean CPI error of the public (vendor-documented) config."""
        return sum(self.untuned_errors.values()) / len(self.untuned_errors)

    @property
    def tuned_mean_error(self) -> float:
        """Mean CPI error after the final tuning stage."""
        return sum(self.final_errors.values()) / len(self.final_errors)

    def summary(self) -> str:
        """Readable before/after account of the whole campaign."""
        lines = [
            f"validation campaign: {self.core} ({self.profile} profile)",
            f"  untuned mean CPI error: {self.untuned_mean_error:.1%}",
        ]
        for stage in self.stages:
            mean = sum(stage.errors.values()) / len(stage.errors)
            lines.append(
                f"  stage {stage.stage}: tuned mean error {mean:.1%} "
                f"({stage.irace.unique_trials} unique trials, "
                f"{stage.irace.requested_trials} requested)"
            )
        lines.append(f"  final mean CPI error: {self.tuned_mean_error:.1%}")
        return "\n".join(lines)


class ValidationCampaign:
    """Drives the Figure-1 methodology for one board core."""

    def __init__(
        self,
        board: FireflyRK3399,
        core: str = "a53",
        profile: str = "default",
        seed: int = 0,
        verbose: bool = False,
        decoder: Decoder = None,
        workloads: list = None,
        jobs: int = 1,
        executor: str = None,
        engine: EvaluationEngine = None,
        store=None,
        run_id: str = None,
        race_mode: str = "sync",
        lookahead: int = 2,
    ) -> None:
        self.board = board
        self.hw: HardwareCore = board.core(core)
        self.core_name = core
        self.profile = PROFILES[profile] if isinstance(profile, str) else profile
        self.seed = seed
        self.verbose = verbose
        #: Race execution mode for the tuning stages (a parallelism
        #: knob, like ``jobs``: it never changes the tuned result —
        #: async races make bit-identical elimination decisions).
        self.race_mode = race_mode
        self.lookahead = lookahead
        #: Persistent experiment store + run identity. With both set the
        #: campaign writes stage-granular checkpoints under ``run_id``
        #: and ``run(resume=True)`` replays completed stages from them.
        self.run_id = run_id
        self.workloads = list(workloads) if workloads is not None else list(ALL_MICROBENCHMARKS)
        self._workload_by_name = {wl.name: wl for wl in self.workloads}
        #: Every trial — simulator run or hardware measurement — executes
        #: through the shared engine: one trace store, one
        #: content-addressed result cache, ``jobs``-way parallelism.
        if engine is not None:
            # A supplied engine brings its own executor and scale; don't
            # let conflicting knobs get silently ignored.
            if jobs != 1:
                raise ValueError("pass jobs via the engine when supplying one")
            if executor is not None:
                raise ValueError("pass executor via the engine when supplying one")
            if engine.hw is not self.hw:
                raise ValueError(
                    "supplied engine measures a different hardware core "
                    f"than {core!r}; build it with hw=board.core({core!r})"
                )
            missing = [wl.name for wl in self.workloads if wl.name not in engine.traces]
            if missing:
                raise ValueError(
                    f"supplied engine cannot run campaign workloads: {missing}"
                )
            if engine.scale != self.profile.microbench_scale:
                raise ValueError(
                    f"engine scale {engine.scale} conflicts with profile "
                    f"microbench_scale {self.profile.microbench_scale}"
                )
            if engine.overrides:
                raise ValueError(
                    "supplied engine carries per-workload overrides "
                    f"{sorted(engine.overrides)}; pass a clean engine — the "
                    "campaign's step-5 fixes must start from none"
                )
            if decoder is not None:
                engine.decoder = decoder
            if store is not None and engine.store is None:
                engine.store = store
            self.engine = engine
        else:
            self.engine = EvaluationEngine(
                hw=self.hw,
                workloads=self.workloads,
                scale=self.profile.microbench_scale,
                decoder=decoder,
                jobs=jobs,
                executor=executor,
                store=store,
            )
        self.store = self.engine.store
    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    @property
    def workload_overrides(self) -> dict:
        """Per-workload kwargs overrides (step-5 fixes land here).

        This *is* the engine's overrides dict — the engine folds it into
        its cache keys — so both mutation and wholesale assignment reach
        the engine."""
        return self.engine.overrides

    @workload_overrides.setter
    def workload_overrides(self, value: dict) -> None:
        if value is not self.engine.overrides:
            self.engine.overrides.clear()
            self.engine.overrides.update(value or {})

    @property
    def decoder(self) -> Decoder:
        """The decoder library the *simulator* uses. Constructing the
        campaign with a :class:`BuggyDecoder` reproduces the decoder-bug
        study; the step-5 inspection will recommend replacing it."""
        return self.engine.decoder

    @decoder.setter
    def decoder(self, decoder: Decoder) -> None:
        self.engine.decoder = decoder

    def error_for(self, config: SimConfig, name: str) -> float:
        """Absolute relative CPI error of ``config`` on one workload."""
        return self.engine.evaluate(config, name)

    def evaluate(self, config: SimConfig) -> dict:
        """Per-workload CPI error of ``config`` over the whole suite.

        Submitted as one batch, so with ``jobs > 1`` the suite runs in
        parallel.
        """
        names = [wl.name for wl in self.workloads]
        costs = self.engine.evaluate_batch([(config, name) for name in names])
        return dict(zip(names, costs))

    def close(self) -> None:
        """Release engine resources (worker processes). The store, if
        any, is shared with the caller and stays open."""
        self.engine.close()

    # ------------------------------------------------------------------
    # Checkpoints (stage-granular, written to the store under run_id)
    # ------------------------------------------------------------------
    @property
    def _checkpointing(self) -> bool:
        return self.store is not None and self.run_id is not None

    def _trial_context(self, tag: str, config: SimConfig, weights: dict = None) -> str:
        """Store context for one tuning round's trial-cost memo.

        The memoised costs depend on everything the evaluator closes
        over — base config, decoder, per-workload overrides, cost
        weights, saturation — so all of it is folded into the token;
        two rounds share persisted costs only when genuinely identical.
        """
        if not self._checkpointing:
            return None
        ident = (
            config_token(config),
            decoder_token(self.engine.decoder),
            tuple(sorted(
                (name, overrides_token(ovr))
                for name, ovr in self.engine.overrides.items()
            )),
            tuple(sorted((weights or {}).items())),
            self.cost_saturation,
        )
        digest = hashlib.sha256(repr(ident).encode("utf-8")).hexdigest()[:16]
        return f"{self.run_id}/{tag}/{digest}"

    def _save_checkpoint(self, name: str, payload: dict) -> None:
        if self._checkpointing:
            self.store.put_checkpoint(self.run_id, name, payload)

    def _load_checkpoint(self, name: str):
        if not self._checkpointing:
            return None
        return self.store.get_checkpoint(self.run_id, name)

    def _stage_to_payload(self, stage_result: "StageResult") -> dict:
        return {
            "stage": stage_result.stage,
            "irace": irace_result_to_payload(stage_result.irace),
            "tuned_flat": stage_result.tuned_config.flatten(),
            "errors": stage_result.errors,
            "inspection": asdict(stage_result.inspection),
        }

    def _stage_from_payload(self, payload: dict, base_config: SimConfig) -> "StageResult":
        return StageResult(
            stage=payload["stage"],
            irace=irace_result_from_payload(payload["irace"]),
            tuned_config=base_config.with_updates(payload["tuned_flat"]),
            errors=dict(payload["errors"]),
            inspection=InspectionReport(**payload["inspection"]),
        )

    #: Per-instance cost saturation. Abstraction-error anomalies (the
    #: uninitialised-array kernels pre-fix) produce 10-30x errors that no
    #: configuration can remove; capping them keeps the tuner's mean cost
    #: from being hijacked by unfixable outliers while preserving their
    #: ordering. Raw (uncapped) errors are always reported.
    cost_saturation = 3.0

    def make_evaluator(self, base_config: SimConfig) -> AssignmentEvaluator:
        """The ``evaluate(assignment, instance)`` callable irace needs.

        Engine-backed: it also exposes ``evaluate_batch``, which lets the
        race submit each instance step's alive candidates as one
        parallel block.
        """
        return AssignmentEvaluator(
            self.engine, base_config, saturation=self.cost_saturation
        )

    # ------------------------------------------------------------------
    # Methodology steps
    # ------------------------------------------------------------------
    def step1_public_config(self) -> SimConfig:
        """Step #1: model from publicly available information."""
        if self.core_name in ("a53", "cortex-a53"):
            return cortex_a53_public_config()
        return cortex_a72_public_config()

    def step2_lmbench(self, config: SimConfig) -> SimConfig:
        """Step #2: measure cache/memory latencies and plug them in."""
        estimates = lat_mem_rd(self.hw, l1_size=config.l1d.size, l2_size=config.l2.size)
        if self.verbose:
            print(f"[campaign] lmbench estimates: {estimates.summary()}")
        return apply_latency_estimates(config, estimates)

    def step4_tune(self, config: SimConfig, stage: int, budget: int) -> tuple:
        """Step #4: race the unknown parameters; returns (config, result)."""
        space = param_space_for(config.core_type, stage=stage)
        initial = space.default_assignment(config.flatten())
        tuner = IraceTuner(
            space,
            self.make_evaluator(config),
            instances=[wl.name for wl in self.workloads],
            budget=budget,
            seed=self.seed + stage,
            n_elites=self.profile.n_elites,
            first_test=self.profile.first_test,
            initial_assignments=[initial],
            verbose=self.verbose,
            store=self.store,
            trial_context=self._trial_context(f"stage{stage}", config),
            race_mode=self.race_mode,
            lookahead=self.lookahead,
        )
        result = tuner.run()
        return config.with_updates(result.best_assignment), result

    def component_round(
        self,
        config: SimConfig,
        component: str,
        budget: int = 300,
        stage: int = 2,
    ) -> tuple:
        """Step-5 extra optimisation round focused on one component.

        Races only the parameters belonging to ``component`` (e.g. the
        branch-prediction unit), over the micro-benchmarks that stress
        it, under a *weighted* cost that mixes the component's perf
        metrics with CPI — the paper's recipe for polishing a component
        whose error a low overall average can mask. Returns
        ``(tuned_config, IraceResult)``.
        """
        try:
            spec = _COMPONENT_ROUNDS[component]
        except KeyError:
            raise ValueError(
                f"unknown component {component!r}; choose from {sorted(_COMPONENT_ROUNDS)}"
            ) from None
        round_names = domain_param_names(config.core_type, component, stage=stage)
        full_space = param_space_for(config.core_type, stage=stage)
        params = [p for p in full_space if p.name in round_names]
        space = ParamSpace(params)
        instances = [n for n in spec["workloads"] if n in self._workload_by_name]
        if not instances:
            raise ValueError(f"none of the {component!r} workloads are in this campaign")
        # The engine caches raw SimStats, so racing the same runs under
        # this weighted cost reuses any CPI-cost simulations already done.
        evaluator = AssignmentEvaluator(
            self.engine,
            config,
            cost=make_weighted_cost(spec["weights"]),
            saturation=self.cost_saturation,
        )

        tuner = IraceTuner(
            space,
            evaluator,
            instances=instances,
            budget=budget,
            seed=self.seed + 97,
            n_elites=self.profile.n_elites,
            first_test=min(self.profile.first_test, max(2, len(instances) - 1)),
            initial_assignments=[space.default_assignment(config.flatten())],
            verbose=self.verbose,
            store=self.store,
            trial_context=self._trial_context(
                f"component-{component}", config, weights=spec["weights"]
            ),
            race_mode=self.race_mode,
            lookahead=self.lookahead,
        )
        result = tuner.run()
        return config.with_updates(result.best_assignment), result

    def step5_inspect(self, errors: dict) -> InspectionReport:
        """Step #5: per-component error inspection and fix recommendations."""
        per_category: dict = {}
        counts: dict = {}
        for name, err in errors.items():
            category = self._workload_by_name[name].category
            per_category[category] = per_category.get(category, 0.0) + err
            counts[category] = counts.get(category, 0) + 1
        per_category = {c: per_category[c] / counts[c] for c in per_category}
        overall = sum(errors.values()) / len(errors)
        # Thresholds compare against the *median* error: a couple of
        # anomalous kernels can push the mean so high that every other
        # outlier hides below it.
        ordered = sorted(errors.values())
        typical = ordered[len(ordered) // 2]

        recommendations = []
        indirect_errs = [errors[n] for n in ("CS1", "CS3") if n in errors]
        if indirect_errs and max(indirect_errs) > max(2 * typical, 0.20):
            recommendations.append(
                "indirect-branch kernels (CS1/CS3) show outlier error: add "
                "indirect-branch predictor support and re-tune (stage 2 space)"
            )
        anomaly_errs = [errors[n] for n in ("MM", "M_Dyn") if n in errors]
        if anomaly_errs and max(anomaly_errs) > max(3 * typical, 0.50):
            recommendations.append(
                "uninitialised-array kernels (MM/M_Dyn) behave like cache hits "
                "on hardware (OS zero page): initialise the arrays prior to "
                "simulation"
            )
        dp_err = per_category.get("dataparallel", 0.0)
        if isinstance(self.decoder, BuggyDecoder) and dp_err > max(1.5 * typical, 0.15):
            recommendations.append(
                "data-parallel kernels show dependence-modelling error: the "
                "decoder library drops FP source operands — fix the decoder"
            )
        mem_err = per_category.get("memory", 0.0)
        if mem_err > max(1.5 * typical, 0.25):
            recommendations.append(
                "memory kernels still err: widen prefetcher/hashing options "
                "(GHB prefetching, address hashing) for the next round"
            )
        return InspectionReport(
            per_benchmark=dict(errors),
            per_category=per_category,
            overall=overall,
            recommendations=recommendations,
        )

    def apply_fixes(self, inspection: InspectionReport) -> None:
        """Apply the step-5 recommendations that change workloads/decoder."""
        for rec in inspection.recommendations:
            if "initialise the arrays" in rec:
                for name in ("MM", "M_Dyn"):
                    if name in self._workload_by_name:
                        self.workload_overrides[name] = {"initialized": True}
            if "fix the decoder" in rec:
                self.decoder = Decoder()

    # ------------------------------------------------------------------
    def run(self, stages: int = 2, resume: bool = False) -> CampaignResult:
        """Execute the full campaign; returns all artefacts.

        With a store and a run id attached, every completed unit of work
        (the lmbench/untuned setup, then each stage) is checkpointed;
        ``resume=True`` replays checkpointed units verbatim — the step-5
        fixes are re-applied from the restored inspections, so a live
        stage after restored ones sees the exact state the uninterrupted
        run would have had — and continues from the first missing one.
        """
        if resume and not self._checkpointing:
            raise ValueError("resume=True needs both a store and a run_id")
        public = self.step1_public_config()
        setup = self._load_checkpoint(SETUP_STAGE) if resume else None
        if setup is not None:
            lmbench_config = public.with_updates(setup["lmbench_flat"])
            untuned_errors = dict(setup["untuned_errors"])
            if self.verbose:
                print(f"[campaign] setup restored from checkpoint ({self.run_id})")
        else:
            lmbench_config = self.step2_lmbench(public)
            untuned_errors = self.evaluate(lmbench_config)
            self._save_checkpoint(SETUP_STAGE, {
                "lmbench_flat": lmbench_config.flatten(),
                "untuned_errors": untuned_errors,
            })
            if self.verbose:
                mean = sum(untuned_errors.values()) / len(untuned_errors)
                print(f"[campaign] untuned mean CPI error: {mean:.1%}")
        config = lmbench_config

        stage_results: list = []
        budgets = [self.profile.stage1_budget, self.profile.stage2_budget]
        for stage in range(1, stages + 1):
            payload = self._load_checkpoint(stage_name(stage)) if resume else None
            if payload is not None:
                stage_result = self._stage_from_payload(payload, public)
                config = stage_result.tuned_config
                inspection = stage_result.inspection
                if self.verbose:
                    print(f"[campaign] stage {stage} restored from checkpoint")
            else:
                budget = budgets[min(stage - 1, len(budgets) - 1)]
                config, irace_result = self.step4_tune(config, stage, budget)
                errors = self.evaluate(config)
                inspection = self.step5_inspect(errors)
                stage_result = StageResult(
                    stage=stage,
                    irace=irace_result,
                    tuned_config=config,
                    errors=errors,
                    inspection=inspection,
                )
                self._save_checkpoint(stage_name(stage), self._stage_to_payload(stage_result))
                if self.verbose:
                    print(f"[campaign] stage {stage}:\n{inspection.summary()}")
            stage_results.append(stage_result)
            if stage < stages:
                self.apply_fixes(inspection)

        final_errors = stage_results[-1].errors
        return CampaignResult(
            core=self.core_name,
            profile=self.profile.name,
            public_config=public,
            # Reuse the step-2 config computed above; re-running lmbench
            # here would repeat its hardware measurements for a field.
            lmbench_config=lmbench_config,
            untuned_errors=untuned_errors,
            stages=stage_results,
            final_config=config,
            final_errors=final_errors,
        )
