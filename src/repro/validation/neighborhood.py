"""Near-optimum worst-case study (§VI-B, Figures 7/8).

The paper starts from the tuned optimum and searches for the *worst*
configuration reachable by moving parameters at most one step from their
tuned values (including several parameters simultaneously), showing that
"even with controlled deviation from an optimum configuration the
average error reaches about 45%".

The paper describes the search as exhaustive; with ~40 three-way
parameters that cross product is ~3^40, so this reproduction substitutes
a *greedy-plus-random* ascent (documented in DESIGN.md): score each
single-parameter deviation, greedily stack the damaging ones, then
random-restart multi-parameter perturbations — a standard surrogate that
lower-bounds the exhaustive worst case. The qualitative claim (errors
several-fold above tuned) is insensitive to the exact maximiser.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class NeighborhoodResult:
    """The worst near-optimum configuration found."""

    worst_assignment: dict
    worst_mean_error: float
    tuned_mean_error: float
    per_benchmark: dict
    deviated_params: list
    evaluations: int

    def summary(self) -> str:
        return (
            f"worst near-optimum: mean error {self.worst_mean_error:.1%} "
            f"(tuned {self.tuned_mean_error:.1%}), "
            f"{len(self.deviated_params)} parameters deviated, "
            f"{self.evaluations} evaluations"
        )


def worst_near_optimum(
    space,
    tuned: dict,
    mean_error,
    per_benchmark_error=None,
    random_restarts: int = 12,
    seed: int = 0,
    mean_error_batch=None,
) -> NeighborhoodResult:
    """Find a damaging one-step-per-parameter deviation of ``tuned``.

    Parameters
    ----------
    space:
        The :class:`~repro.tuning.parameters.ParamSpace` raced earlier.
    tuned:
        The tuned assignment (every value must be a candidate).
    mean_error:
        ``mean_error(assignment) -> float`` — mean CPI error over the
        suite (the maximisation objective).
    per_benchmark_error:
        Optional ``per_benchmark_error(assignment) -> dict`` used to
        report the final per-benchmark series (Figures 7/8 bars).
    random_restarts:
        Number of random multi-parameter perturbations tried after the
        greedy phase.
    mean_error_batch:
        Optional ``mean_error_batch(assignments) -> list`` used to score
        whole candidate blocks at once. Phase 1 (every single-parameter
        deviation, the bulk of the search's evaluations) is one such
        block; an engine-backed batch evaluator runs it in parallel.
    """
    space.validate_assignment(tuned)
    rng = random.Random(seed)
    evaluations = 0

    def score_many(assignments: list) -> list:
        nonlocal evaluations
        evaluations += len(assignments)
        if mean_error_batch is not None:
            return list(mean_error_batch(assignments))
        return [mean_error(a) for a in assignments]

    def score(assignment: dict) -> float:
        return score_many([assignment])[0]

    tuned_error = score(tuned)

    # Phase 1: damage of each single-parameter one-step deviation,
    # scored as a single batch (embarrassingly parallel).
    deviations = []  # (name, value)
    for param in space.active_params(tuned):
        for value in space.neighbor_values(param, tuned[param.name]):
            deviations.append((param.name, value))
    candidates = []
    for name, value in deviations:
        candidate = dict(tuned)
        candidate[name] = value
        candidates.append(candidate)
    errs = score_many(candidates)
    single_damage = [
        (err - tuned_error, name, value)
        for err, (name, value) in zip(errs, deviations)
    ]
    single_damage.sort(reverse=True)

    # Phase 2: greedily stack damaging deviations (one per parameter).
    worst = dict(tuned)
    worst_error = tuned_error
    used_params: set = set()
    for damage, name, value in single_damage:
        if damage <= 0 or name in used_params:
            continue
        candidate = dict(worst)
        candidate[name] = value
        err = score(candidate)
        if err > worst_error:
            worst = candidate
            worst_error = err
            used_params.add(name)

    # Phase 3: random multi-parameter perturbations around the optimum.
    damaging = [(n, v) for d, n, v in single_damage if d > 0]
    for _ in range(random_restarts):
        if not damaging:
            break
        candidate = dict(tuned)
        picked: set = set()
        for name, value in damaging:
            if name not in picked and rng.random() < 0.6:
                candidate[name] = value
                picked.add(name)
        if not picked:
            continue
        err = score(candidate)
        if err > worst_error:
            worst = candidate
            worst_error = err
            used_params = picked

    deviated = sorted(name for name in worst if worst[name] != tuned[name])
    per_bench = per_benchmark_error(worst) if per_benchmark_error is not None else {}
    return NeighborhoodResult(
        worst_assignment=worst,
        worst_mean_error=worst_error,
        tuned_mean_error=tuned_error,
        per_benchmark=per_bench,
        deviated_params=deviated,
        evaluations=evaluations,
    )
