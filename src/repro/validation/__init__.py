"""The validation methodology (Figure 1) built on iterated racing."""

from repro.validation.steps import (
    inorder_param_space,
    ooo_param_space,
    param_space_for,
)
from repro.validation.campaign import (
    BudgetProfile,
    CampaignResult,
    PROFILES,
    ValidationCampaign,
)
from repro.validation.neighborhood import NeighborhoodResult, worst_near_optimum

__all__ = [
    "inorder_param_space",
    "ooo_param_space",
    "param_space_for",
    "BudgetProfile",
    "PROFILES",
    "ValidationCampaign",
    "CampaignResult",
    "worst_near_optimum",
    "NeighborhoodResult",
]
