"""Tunable-parameter lists per core model (methodology steps #3/#4).

These are the parameters "that cannot be accurately adjusted using
publicly disclosed information or via latency estimation using lmbench"
(§IV-A) — the paper counts 64 of them for Sniper-ARM; our models expose
a comparable list. Every parameter comes with the discrete candidate set
the racing tuner samples from.

The lists are no longer written here: they are **derived** from the
component registry (:mod:`repro.components`) — component slots
contribute their selector and knob parameters, scalar tunables come
from the catalog's per-core layouts, and ``stage`` models the §IV-B
narrative. The *initial* model (stage 1) has no indirect-branch
predictor and no GHB prefetcher — those options only exist after step
#5's inspection triggers the corresponding model fixes — so stage 1's
space simply lacks them, stage 2 adds them, and stage 3 unlocks this
reproduction's extension components (TAGE-lite, SRRIP, skewed hashing,
the stream-filtered prefetcher). ``tests/golden/param_spaces.json``
pins the stage-1/stage-2 spaces value-identical to the pre-registry
hand-written lists.
"""

from __future__ import annotations

from repro.components import derive_param_space
from repro.tuning.parameters import ParamSpace


def inorder_param_space(stage: int = 2) -> ParamSpace:
    """Tunables of the in-order (Cortex-A53-like) model."""
    return derive_param_space("inorder", stage=stage)


def ooo_param_space(stage: int = 2) -> ParamSpace:
    """Tunables of the out-of-order (Cortex-A72-like) model."""
    return derive_param_space("ooo", stage=stage)


def param_space_for(core_type: str, stage: int = 2) -> ParamSpace:
    """Space lookup by core type ("inorder" / "ooo")."""
    return derive_param_space(core_type, stage=stage)
