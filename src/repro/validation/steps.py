"""Tunable-parameter lists per core model (methodology steps #3/#4).

These are the parameters "that cannot be accurately adjusted using
publicly disclosed information or via latency estimation using lmbench"
(§IV-A) — the paper counts 64 of them for Sniper-ARM; our models expose
a comparable list. Every parameter comes with the discrete candidate set
the racing tuner samples from.

``stage`` models the §IV-B narrative: the *initial* model (stage 1) has
no indirect-branch predictor and no GHB prefetcher — those options only
exist after step #5's inspection triggers the corresponding model fixes
— so stage 1's space simply lacks them, and stage 2 adds them.
"""

from __future__ import annotations

from repro.tuning.parameters import (
    BooleanParam,
    CategoricalParam,
    OrdinalParam,
    ParamSpace,
)


def _prefetcher_choices(stage: int) -> list:
    choices = ["none", "nextline", "stride"]
    if stage >= 2:
        choices.append("ghb")
    return choices


def _common_params(stage: int, l2_latency_candidates: list, dram_candidates: list) -> list:
    """Parameters shared by the in-order and out-of-order models."""
    prefetchers = _prefetcher_choices(stage)
    active_l1d_pf = lambda a: a.get("l1d.prefetcher", "none") != "none"
    active_l2_pf = lambda a: a.get("l2.prefetcher", "none") != "none"

    params = [
        # --- branch prediction unit --------------------------------
        CategoricalParam(
            "branch.predictor", ["static-taken", "bimodal", "gshare", "tournament"]
        ),
        OrdinalParam("branch.predictor_bits", [10, 11, 12, 13, 14]),
        OrdinalParam("branch.btb_entries", [128, 256, 512, 1024]),
        OrdinalParam("branch.btb_assoc", [1, 2, 4]),
        OrdinalParam("branch.ras_entries", [4, 8, 16, 32]),
        OrdinalParam("branch.btb_miss_penalty", [1, 2, 3, 4]),
        # --- execution units ---------------------------------------
        OrdinalParam("execute.imul_latency", [2, 3, 4, 5]),
        OrdinalParam("execute.idiv_latency", [4, 6, 8, 12, 16, 20]),
        OrdinalParam("execute.fpalu_latency", [2, 3, 4, 5]),
        OrdinalParam("execute.fpmul_latency", [3, 4, 5, 6]),
        OrdinalParam("execute.fpdiv_latency", [6, 10, 14, 18, 22]),
        OrdinalParam("execute.fcvt_latency", [1, 2, 3, 4]),
        OrdinalParam("execute.simd_alu_latency", [2, 3, 4]),
        OrdinalParam("execute.simd_mul_latency", [3, 4, 5]),
        # --- L1 data cache ------------------------------------------
        OrdinalParam("l1d.hit_latency", [1, 2, 3, 4]),
        CategoricalParam("l1d.hashing", ["mask", "xor", "mersenne"]),
        BooleanParam("l1d.serial_tag_data"),
        OrdinalParam("l1d.mshr_entries", [1, 2, 3, 4, 6, 8, 10]),
        OrdinalParam("l1d.victim_entries", [0, 2, 4, 8]),
        CategoricalParam("l1d.replacement", ["lru", "plru", "random"]),
        CategoricalParam("l1d.prefetcher", prefetchers),
        OrdinalParam("l1d.prefetch_degree", [1, 2, 4], condition=active_l1d_pf),
        OrdinalParam("l1d.prefetch_table_entries", [16, 32, 64], condition=active_l1d_pf),
        BooleanParam("l1d.prefetch_on_hit", condition=active_l1d_pf),
        # --- L1 instruction cache -----------------------------------
        CategoricalParam("l1i.prefetcher", ["none", "nextline"]),
        OrdinalParam(
            "l1i.prefetch_degree",
            [1, 2],
            condition=lambda a: a.get("l1i.prefetcher", "none") != "none",
        ),
        # --- L2 cache ------------------------------------------------
        OrdinalParam("l2.hit_latency", l2_latency_candidates),
        OrdinalParam("l2.mshr_entries", [4, 6, 7, 8, 12, 16]),
        CategoricalParam("l2.hashing", ["mask", "xor", "mersenne"]),
        CategoricalParam("l2.replacement", ["lru", "plru", "random"]),
        CategoricalParam("l2.prefetcher", prefetchers),
        OrdinalParam("l2.prefetch_degree", [1, 2, 4], condition=active_l2_pf),
        OrdinalParam("l2.prefetch_table_entries", [64, 128, 256], condition=active_l2_pf),
        BooleanParam("l2.prefetch_on_hit", condition=active_l2_pf),
        # --- store path / main memory -------------------------------
        OrdinalParam("memsys.store_buffer_entries", [2, 4, 6, 8, 12, 16]),
        BooleanParam("memsys.store_coalescing"),
        OrdinalParam("memsys.dram_latency", dram_candidates),
        OrdinalParam("memsys.dram_bandwidth", [1, 2, 4, 8]),
        CategoricalParam("memsys.dram_page_policy", ["open", "closed"]),
    ]
    if stage >= 2:
        active_ind = lambda a: a.get("branch.indirect", "none") != "none"
        params += [
            CategoricalParam("branch.indirect", ["none", "last-target", "tagged"]),
            OrdinalParam("branch.indirect_entries", [128, 256, 512], condition=active_ind),
            OrdinalParam("branch.indirect_history_bits", [4, 6, 8], condition=active_ind),
        ]
    return params


def inorder_param_space(stage: int = 2) -> ParamSpace:
    """Tunables of the in-order (Cortex-A53-like) model."""
    params = [
        OrdinalParam("pipeline.frontend_depth", [3, 4, 5, 6]),
        OrdinalParam("branch.mispredict_penalty", [6, 7, 8, 9, 10, 12]),
        OrdinalParam("execute.n_ls_pipes", [1, 2]),
        BooleanParam("pipeline.dual_issue_rules"),
    ]
    params += _common_params(
        stage,
        l2_latency_candidates=[11, 12, 13, 14, 15, 16, 17],
        dram_candidates=[140, 150, 160, 170, 180, 190, 200],
    )
    return ParamSpace(params)


def ooo_param_space(stage: int = 2) -> ParamSpace:
    """Tunables of the out-of-order (Cortex-A72-like) model."""
    params = [
        OrdinalParam("pipeline.frontend_depth", [8, 9, 11, 13, 15]),
        OrdinalParam("pipeline.rob_size", [64, 96, 128, 160, 192]),
        OrdinalParam("pipeline.iq_size", [24, 36, 48, 60]),
        OrdinalParam("pipeline.ldq_entries", [8, 16, 24]),
        OrdinalParam("pipeline.stq_entries", [8, 12, 16, 24]),
        OrdinalParam("branch.mispredict_penalty", [10, 12, 14, 15, 16, 18]),
        OrdinalParam("execute.n_ialu", [1, 2, 3]),
        OrdinalParam("execute.n_fpu", [1, 2]),
        OrdinalParam("execute.n_ls_pipes", [1, 2]),
    ]
    params += _common_params(
        stage,
        l2_latency_candidates=[14, 16, 18, 20, 22, 24],
        dram_candidates=[150, 160, 170, 180, 190, 200, 210, 220],
    )
    return ParamSpace(params)


def param_space_for(core_type: str, stage: int = 2) -> ParamSpace:
    """Space lookup by core type ("inorder" / "ooo")."""
    if core_type == "inorder":
        return inorder_param_space(stage)
    if core_type == "ooo":
        return ooo_param_space(stage)
    raise ValueError(f"unknown core type {core_type!r}")
