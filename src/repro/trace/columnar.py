"""Columnar trace representation and its binary blob format.

The tuple stream of :func:`repro.trace.record.build_stream` is the hot
in-memory form the timing cores iterate, but it is expensive two ways:
every Python tuple costs ~200 bytes of heap, and every consumer that is
not the recording process (a fabric worker, a second race candidate)
must re-record and re-flatten the trace to obtain it. The
:class:`ColumnarTrace` fixes both by storing one compact
:mod:`array`-module column per issue-tuple field —

``opclass, kind, dst, src1, src2, pc, addr, taken, target``

— built once per (trace, decoder library), ~30 bytes per dynamic
instruction, and serialisable to a stable self-describing binary blob.
The blob can be persisted content-addressed by
:class:`~repro.engine.tracestore.TraceStore` and **memory-mapped** by
every fabric worker on a host: attaching is a zero-copy
``memoryview.cast`` per column over the shared page cache, so the
second worker pays microseconds where it used to pay a full re-record.

Consumers materialise issue tuples *per chunk*
(:meth:`ColumnarTrace.chunks`): a batched simulation drives K core
instances down one pass, each chunk's tuple list shared by all K, and
peak memory stays bounded by the chunk size instead of the trace
length. The materialised tuples are value-identical to
:func:`~repro.trace.record.build_stream` output — the golden-stats
tests pin that equivalence bit-for-bit.
"""

from __future__ import annotations

import struct
from array import array

from repro.isa.decoder import decoder_library
from repro.trace.record import KIND_FLAGS

#: Leading bytes of every columnar blob.
BLOB_MAGIC = b"RCOL"

#: Bump on any incompatible change to the column set or encoding.
BLOB_VERSION = 1

#: Canonical column order and array typecodes. Registers are signed
#: bytes (``NO_REG`` is -1, ids stay below 128); opclass/kind/taken fit
#: unsigned bytes; pc/addr/target are 8-byte unsigned.
COLUMN_FIELDS = (
    ("opclass", "B"),
    ("kind", "B"),
    ("dst", "b"),
    ("src1", "b"),
    ("src2", "b"),
    ("pc", "Q"),
    ("addr", "Q"),
    ("taken", "B"),
    ("target", "Q"),
)

#: Instructions per materialised chunk in batched passes. Large enough
#: to amortise per-chunk overhead, small enough that a chunk's shared
#: tuple list stays cache- and memory-friendly.
DEFAULT_CHUNK = 4096

_HEADER = struct.Struct("<4sHHQ")  # magic, version, n_fields, length
_FIELD_HEADER = struct.Struct("<16scxQ")  # name, typecode, byte length


class ColumnarTrace:
    """One decoded trace as parallel per-field columns.

    Instances come from :meth:`build` (recording process),
    :meth:`from_blob` (attaching process; zero-copy over ``bytes``,
    ``memoryview`` or ``mmap`` buffers) or
    :meth:`repro.trace.record.Trace.columns_with` (memoised per decoder
    library). A columnar trace is *trace-like* for the simulation
    layer: it has ``name``, ``__len__``, ``instruction_count`` and
    ``stream_with``, so :class:`~repro.simulator.simulator.SnipeSim`
    and both cores accept it anywhere a recorded
    :class:`~repro.trace.record.Trace` is accepted — which is exactly
    what lets a fabric worker simulate from an attached blob without
    ever re-recording.
    """

    __slots__ = ("name", "library", "length", "columns", "_buffer", "_stream")

    def __init__(self, name: str, library: tuple, length: int,
                 columns: dict, buffer=None) -> None:
        self.name = name
        #: ``decoder_library(...)`` tuple the columns were decoded with.
        self.library = tuple(library)
        self.length = length
        #: field name -> array/memoryview column, aligned by index.
        self.columns = columns
        # Keep the backing buffer (mmap / bytes) alive for the life of
        # any memoryview columns sliced out of it.
        self._buffer = buffer
        self._stream = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, records: list, decoded: list, name: str, library: tuple) -> "ColumnarTrace":
        """Columnarise ``records`` + their ``decoded`` forms.

        The per-unique-instruction interning mirrors
        :func:`~repro.trace.record.build_stream`: opclass conversion and
        kind-flag derivation happen once per static instruction, not per
        dynamic occurrence.
        """
        cols = {fname: array(code) for fname, code in COLUMN_FIELDS}
        op_a = cols["opclass"].append
        kind_a = cols["kind"].append
        dst_a = cols["dst"].append
        src1_a = cols["src1"].append
        src2_a = cols["src2"].append
        pc_a = cols["pc"].append
        addr_a = cols["addr"].append
        taken_a = cols["taken"].append
        target_a = cols["target"].append
        fields_of: dict = {}
        for rec, inst in zip(records, decoded):
            key = id(inst)
            fields = fields_of.get(key)
            if fields is None:
                opclass = int(inst.opclass)
                fields = (opclass, KIND_FLAGS[opclass], inst.dst, inst.src1, inst.src2)
                fields_of[key] = fields
            op_a(fields[0])
            kind_a(fields[1])
            dst_a(fields[2])
            src1_a(fields[3])
            src2_a(fields[4])
            pc_a(rec.pc)
            addr_a(rec.addr)
            taken_a(1 if rec.taken else 0)
            target_a(rec.target)
        return cls(name, library, len(records), cols)

    # ------------------------------------------------------------------
    # Blob serialisation
    # ------------------------------------------------------------------
    def to_blob(self) -> bytes:
        """Serialise to the stable self-describing binary form.

        Layout (all integers little-endian):

        - header: magic ``RCOL``, ``BLOB_VERSION``, field count,
          instruction count;
        - name block: u32 byte length + UTF-8 trace name;
        - library block: u32 byte length + UTF-8 ``module\\n`` lines of
          the decoder-library identity;
        - per field: 16-byte padded name, typecode char, payload byte
          length — then all payloads concatenated in field order.

        Column payloads are emitted in little-endian regardless of host
        order, so the blob (and its content address) is stable across
        recording hosts; :meth:`from_blob` byte-swaps on attach when the
        reader is big-endian.
        """
        parts = [_HEADER.pack(BLOB_MAGIC, BLOB_VERSION, len(COLUMN_FIELDS), self.length)]
        name_bytes = self.name.encode("utf-8")
        parts.append(struct.pack("<I", len(name_bytes)))
        parts.append(name_bytes)
        lib_bytes = "\n".join(str(part) for part in self.library).encode("utf-8")
        parts.append(struct.pack("<I", len(lib_bytes)))
        parts.append(lib_bytes)
        payloads = []
        for fname, code in COLUMN_FIELDS:
            col = self.columns[fname]
            if isinstance(col, memoryview):
                payload = col.tobytes()
            else:
                swapped = None
                if struct.pack("=H", 1) != struct.pack("<H", 1):  # big-endian host
                    swapped = array(code, col)
                    swapped.byteswap()
                payload = (swapped if swapped is not None else col).tobytes()
            parts.append(_FIELD_HEADER.pack(fname.encode("ascii").ljust(16, b"\0"),
                                            code.encode("ascii"), len(payload)))
            payloads.append(payload)
        parts.extend(payloads)
        return b"".join(parts)

    @classmethod
    def from_blob(cls, buffer) -> "ColumnarTrace":
        """Attach to a serialised blob; zero-copy for buffer-backed input.

        ``buffer`` may be ``bytes``, a ``memoryview`` or an ``mmap``
        object. Columns become ``memoryview.cast`` views straight over
        the buffer (the returned trace keeps the buffer alive), so
        attaching a memory-mapped file shares the OS page cache between
        every worker on the host instead of duplicating the trace per
        process. On big-endian hosts the columns are copied and
        byte-swapped instead (blobs are canonically little-endian).
        """
        view = memoryview(buffer)
        magic, version, n_fields, length = _HEADER.unpack_from(view, 0)
        if magic != BLOB_MAGIC:
            raise ValueError("not a columnar trace blob (bad magic)")
        if version != BLOB_VERSION:
            raise ValueError(
                f"columnar blob version {version} unsupported "
                f"(this build reads version {BLOB_VERSION})"
            )
        offset = _HEADER.size
        (name_len,) = struct.unpack_from("<I", view, offset)
        offset += 4
        name = bytes(view[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        (lib_len,) = struct.unpack_from("<I", view, offset)
        offset += 4
        library = tuple(bytes(view[offset:offset + lib_len]).decode("utf-8").split("\n"))
        offset += lib_len
        fields = []
        for _ in range(n_fields):
            raw_name, code, payload_len = _FIELD_HEADER.unpack_from(view, offset)
            offset += _FIELD_HEADER.size
            fields.append((raw_name.rstrip(b"\0").decode("ascii"),
                           code.decode("ascii"), payload_len))
        little_endian = struct.pack("=H", 1) == struct.pack("<H", 1)
        columns: dict = {}
        for fname, code, payload_len in fields:
            payload = view[offset:offset + payload_len]
            offset += payload_len
            if little_endian:
                columns[fname] = payload.cast(code)
            else:
                col = array(code)
                col.frombytes(bytes(payload))
                col.byteswap()
                columns[fname] = col
        expected = {fname: code for fname, code in COLUMN_FIELDS}
        got = {fname: code for fname, code, _len in fields}
        if got != expected:
            raise ValueError(f"columnar blob field set {got} != expected {expected}")
        return cls(name, library, length, columns, buffer=buffer)

    def __reduce__(self):
        """Pickle as the self-contained blob (mmap views don't pickle)."""
        return (ColumnarTrace.from_blob, (self.to_blob(),))

    # ------------------------------------------------------------------
    # Trace-like surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.length

    def instruction_count(self) -> int:
        """Number of dynamically executed instructions."""
        return self.length

    def __repr__(self) -> str:
        kind = "attached" if self._buffer is not None else "built"
        return f"ColumnarTrace({self.name!r}, {self.length} instructions, {kind})"

    def matches(self, decoder) -> bool:
        """True when ``decoder`` belongs to the recorded library."""
        return tuple(str(part) for part in decoder_library(decoder)) == self.library

    def _require(self, decoder) -> None:
        lib = tuple(str(part) for part in decoder_library(decoder))
        if lib != self.library:
            raise ValueError(
                f"columnar trace {self.name!r} was decoded with library "
                f"{self.library}, not {lib}; re-record for this decoder"
            )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def tuples(self, start: int, stop: int) -> list:
        """Issue tuples for ``[start, stop)``, shared-ready.

        Value-identical to the corresponding
        :func:`~repro.trace.record.build_stream` slice — including
        ``taken`` coming back as a ``bool`` — so a core consuming these
        tuples is bit-identical to one consuming the tuple stream.
        """
        cols = self.columns
        return list(zip(
            cols["opclass"][start:stop],
            cols["kind"][start:stop],
            cols["dst"][start:stop],
            cols["src1"][start:stop],
            cols["src2"][start:stop],
            cols["pc"][start:stop],
            cols["addr"][start:stop],
            map(bool, cols["taken"][start:stop]),
            cols["target"][start:stop],
        ))

    def chunks(self, size: int = DEFAULT_CHUNK):
        """Yield successive shared tuple lists of up to ``size`` rows."""
        for start in range(0, self.length, size):
            yield self.tuples(start, start + size)

    def stream(self) -> list:
        """The full issue-tuple list (memoised; for serial consumers)."""
        if self._stream is None:
            self._stream = self.tuples(0, self.length)
        return self._stream

    def stream_with(self, decoder) -> list:
        """Trace-API compatibility: the full stream for ``decoder``.

        A columnar trace carries no instruction words, so it can only
        serve the decoder library it was built with; any other library
        raises instead of silently mis-decoding.
        """
        self._require(decoder)
        return self.stream()

    def columns_with(self, decoder) -> "ColumnarTrace":
        """Trace-API compatibility: itself, after a library check."""
        self._require(decoder)
        return self

    def nbytes(self) -> int:
        """Total column payload size in bytes (excludes tuple caches)."""
        total = 0
        for fname, _code in COLUMN_FIELDS:
            col = self.columns[fname]
            total += col.nbytes if isinstance(col, memoryview) else len(col) * col.itemsize
        return total
