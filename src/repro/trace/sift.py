"""Binary serialisation of traces — the SIFT stand-in.

Format (little-endian, varint-compressed)::

    header:  magic b"SIFT" | version u8 | name length varint | name utf-8
             | record count varint
    record:  flags u8
             | pc delta zigzag-varint        (vs. previous record's pc)
             | word varint
             | [addr zigzag-varint]          if flags & HAS_ADDR (delta vs.
                                             previous record's addr)
             | [target zigzag-varint]        if flags & TAKEN (delta vs. pc)

Deltas plus zigzag encoding keep sequential code and strided data accesses
to one or two bytes per field, the same trick real trace formats use.
"""

from __future__ import annotations

import io

from repro.trace.record import DynInst, Trace

_MAGIC = b"SIFT"
_VERSION = 1

_FLAG_HAS_ADDR = 0x01
_FLAG_TAKEN = 0x02


class SiftError(ValueError):
    """Raised on malformed trace files."""


def _write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise SiftError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SiftError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise SiftError("varint too long")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return -((value + 1) >> 1) if value & 1 else value >> 1


def write_trace(trace: Trace) -> bytes:
    """Serialise ``trace`` to SIFT bytes."""
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(bytes((_VERSION,)))
    name_bytes = trace.name.encode("utf-8")
    _write_varint(out, len(name_bytes))
    out.write(name_bytes)
    _write_varint(out, len(trace.records))

    prev_pc = 0
    prev_addr = 0
    for rec in trace.records:
        flags = 0
        if rec.addr:
            flags |= _FLAG_HAS_ADDR
        if rec.taken:
            flags |= _FLAG_TAKEN
        out.write(bytes((flags,)))
        _write_varint(out, _zigzag(rec.pc - prev_pc))
        _write_varint(out, rec.word)
        if flags & _FLAG_HAS_ADDR:
            _write_varint(out, _zigzag(rec.addr - prev_addr))
            prev_addr = rec.addr
        if flags & _FLAG_TAKEN:
            _write_varint(out, _zigzag(rec.target - rec.pc))
        prev_pc = rec.pc
    return out.getvalue()


def read_trace(data: bytes) -> Trace:
    """Deserialise SIFT bytes back into a :class:`Trace`."""
    if data[:4] != _MAGIC:
        raise SiftError("bad magic; not a SIFT trace")
    if len(data) < 5:
        raise SiftError("truncated header")
    version = data[4]
    if version != _VERSION:
        raise SiftError(f"unsupported SIFT version {version}")
    pos = 5
    name_len, pos = _read_varint(data, pos)
    if pos + name_len > len(data):
        raise SiftError("truncated trace name")
    name = data[pos : pos + name_len].decode("utf-8")
    pos += name_len
    count, pos = _read_varint(data, pos)

    records = []
    prev_pc = 0
    prev_addr = 0
    for _ in range(count):
        if pos >= len(data):
            raise SiftError("truncated record stream")
        flags = data[pos]
        pos += 1
        delta, pos = _read_varint(data, pos)
        pc = prev_pc + _unzigzag(delta)
        word, pos = _read_varint(data, pos)
        addr = 0
        if flags & _FLAG_HAS_ADDR:
            delta, pos = _read_varint(data, pos)
            addr = prev_addr + _unzigzag(delta)
            prev_addr = addr
        taken = bool(flags & _FLAG_TAKEN)
        target = 0
        if taken:
            delta, pos = _read_varint(data, pos)
            target = pc + _unzigzag(delta)
        records.append(DynInst(pc, word, addr, taken, target))
        prev_pc = pc
    if pos != len(data):
        raise SiftError(f"{len(data) - pos} trailing bytes after last record")
    return Trace(records, name=name)
