"""SIFT-like instruction traces.

The paper's workflow records each workload once on the ARM board (via
DynamoRIO) into the Sniper Instruction Trace Format (SIFT), then replays
the trace against every candidate simulator configuration on x86 servers.
This package provides the equivalent decoupling: :class:`Trace` is the
in-memory dynamic instruction stream, and :mod:`repro.trace.sift` persists
it in a compact binary format so a trace is produced once and replayed for
thousands of tuning simulations.
"""

from repro.trace.record import DynInst, Trace
from repro.trace.sift import SiftError, read_trace, write_trace
from repro.trace.stats import TraceStats, compute_trace_stats

__all__ = [
    "DynInst",
    "Trace",
    "SiftError",
    "read_trace",
    "write_trace",
    "TraceStats",
    "compute_trace_stats",
]
