"""Dynamic instruction records and in-memory traces."""

from __future__ import annotations

from repro.isa.decoder import Decoder, decoder_library
from repro.isa.opclasses import OpClass

#: Kind-flag bits carried in issue streams: one precomputed bitmask per
#: instruction replaces the repeated opclass range comparisons the core
#: timing loops would otherwise evaluate per dynamic instruction.
KF_LOAD = 1     #: LOAD / LDP
KF_STORE = 2    #: STORE / STP
KF_BRANCH = 4   #: any control-flow class
KF_NOP = 8      #: NOP
KF_MUL = 16     #: IMUL / IDIV (dual-issue pairing class)
KF_FP = 32      #: FPALU..SIMD_MUL (dual-issue pairing class)
KF_PAIR = 64    #: LDP / STP (writes/reads a register pair)


def _kind_flags(opclass: int) -> int:
    flags = 0
    if opclass == int(OpClass.NOP):
        flags |= KF_NOP
    if opclass in (int(OpClass.LOAD), int(OpClass.LDP)):
        flags |= KF_LOAD
    if opclass in (int(OpClass.STORE), int(OpClass.STP)):
        flags |= KF_STORE
    if int(OpClass.BRANCH) <= opclass <= int(OpClass.RET):
        flags |= KF_BRANCH
    if opclass in (int(OpClass.IMUL), int(OpClass.IDIV)):
        flags |= KF_MUL
    if int(OpClass.FPALU) <= opclass <= int(OpClass.SIMD_MUL):
        flags |= KF_FP
    if opclass in (int(OpClass.LDP), int(OpClass.STP)):
        flags |= KF_PAIR
    return flags


#: opclass int -> kind bitmask, built once at import.
KIND_FLAGS = tuple(_kind_flags(int(op)) for op in OpClass)


def build_stream(records: list, decoded: list) -> list:
    """Flatten ``records`` + their ``decoded`` forms into issue tuples.

    The timing cores consume one flat tuple per dynamic instruction —
    ``(opclass, kind, dst, src1, src2, pc, addr, taken, target)`` — so
    the hot loop pays tuple unpacking instead of six attribute loads, an
    enum conversion and several opclass range tests per instruction.
    Decoded instructions are interned per word, so the conversion work
    is memoised per *unique* word here rather than recomputed per
    dynamic occurrence.
    """
    fields_of: dict = {}
    stream = []
    append = stream.append
    for rec, inst in zip(records, decoded):
        key = id(inst)
        fields = fields_of.get(key)
        if fields is None:
            opclass = int(inst.opclass)
            fields = (opclass, KIND_FLAGS[opclass], inst.dst, inst.src1, inst.src2)
            fields_of[key] = fields
        opclass, kind, dst, src1, src2 = fields
        append((opclass, kind, dst, src1, src2,
                rec.pc, rec.addr, rec.taken, rec.target))
    return stream


class DynInst:
    """One dynamically executed instruction, as recorded by the front-end.

    This is the SIFT record: the program counter, the raw instruction
    word (decoded lazily by the back-end's decoder library), the effective
    memory address for loads/stores, and the control-flow outcome for
    branches. Timing state lives in the core models, never here, so one
    trace can be replayed concurrently against many configurations.
    """

    __slots__ = ("pc", "word", "addr", "taken", "target")

    def __init__(self, pc: int, word: int, addr: int = 0, taken: bool = False, target: int = 0) -> None:
        self.pc = pc
        self.word = word
        #: Effective byte address for memory operations (0 otherwise).
        self.addr = addr
        #: Branch outcome (False for non-branches and not-taken branches).
        self.taken = taken
        #: Next program counter for taken branches (0 otherwise).
        self.target = target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynInst):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.word == other.word
            and self.addr == other.addr
            and self.taken == other.taken
            and self.target == other.target
        )

    def __repr__(self) -> str:
        flags = " taken" if self.taken else ""
        return f"DynInst(pc={self.pc:#x}, word={self.word:#010x}, addr={self.addr:#x}{flags})"


class Trace:
    """A dynamic instruction stream plus its decode cache.

    ``decoded_with`` pre-decodes every record with a given decoder library
    and memoises the result per decoder *library* (class identity, not
    instance id — decoding is pure per class, instances are
    interchangeable, and id-keying could silently alias a freed decoder
    with a newly allocated one at the same address); replaying the same
    trace under many configurations (the tuning loop) then pays decode
    cost once.
    """

    def __init__(self, records: list, name: str = "anonymous") -> None:
        self.records = records
        self.name = name
        self._decoded_cache: dict = {}
        self._stream_cache: dict = {}
        self._columnar_cache: dict = {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def __getstate__(self) -> dict:
        # Decoded lists, flattened streams and columnar blobs are bulky
        # and cheap to rebuild; ship the trace without them to keep
        # pickles small.
        state = self.__dict__.copy()
        state["_decoded_cache"] = {}
        state["_stream_cache"] = {}
        state["_columnar_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        # Traces pickled by older builds predate the columnar cache;
        # restore it so unpickled traces keep the full cache surface.
        state.setdefault("_columnar_cache", {})
        self.__dict__.update(state)

    def decoded_with(self, decoder: Decoder) -> list:
        """Return per-record :class:`DecodedInst` list for ``decoder``."""
        key = decoder_library(decoder)
        cached = self._decoded_cache.get(key)
        if cached is None:
            decode = decoder.decode
            cached = [decode(rec.word) for rec in self.records]
            self._decoded_cache[key] = cached
        return cached

    def stream_with(self, decoder: Decoder) -> list:
        """Flat per-record issue tuples for ``decoder`` (memoised).

        The stream is the hot-path representation the timing cores
        iterate (see :func:`build_stream`); like ``decoded_with`` it is
        cached per decoder *library*, so the thousands of configurations
        a tuning campaign replays over one trace flatten it exactly once.
        """
        key = decoder_library(decoder)
        cached = self._stream_cache.get(key)
        if cached is None:
            cached = build_stream(self.records, self.decoded_with(decoder))
            self._stream_cache[key] = cached
        return cached

    def columns_with(self, decoder: Decoder):
        """Columnar form of this trace for ``decoder`` (memoised).

        Returns a :class:`repro.trace.columnar.ColumnarTrace` — one
        compact array per issue-tuple field — built once per decoder
        *library* like the other caches. This is the shareable form:
        its blob serialisation is what the trace store persists and
        fabric workers memory-map instead of re-recording.
        """
        from repro.trace.columnar import ColumnarTrace

        key = decoder_library(decoder)
        cached = self._columnar_cache.get(key)
        if cached is None:
            cached = ColumnarTrace.build(
                self.records, self.decoded_with(decoder), self.name,
                tuple(str(part) for part in key),
            )
            self._columnar_cache[key] = cached
        return cached

    def instruction_count(self) -> int:
        """Number of dynamically executed instructions."""
        return len(self.records)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.records)} instructions)"
