"""Dynamic instruction records and in-memory traces."""

from __future__ import annotations

from repro.isa.decoder import Decoder, decoder_library


class DynInst:
    """One dynamically executed instruction, as recorded by the front-end.

    This is the SIFT record: the program counter, the raw instruction
    word (decoded lazily by the back-end's decoder library), the effective
    memory address for loads/stores, and the control-flow outcome for
    branches. Timing state lives in the core models, never here, so one
    trace can be replayed concurrently against many configurations.
    """

    __slots__ = ("pc", "word", "addr", "taken", "target")

    def __init__(self, pc: int, word: int, addr: int = 0, taken: bool = False, target: int = 0) -> None:
        self.pc = pc
        self.word = word
        #: Effective byte address for memory operations (0 otherwise).
        self.addr = addr
        #: Branch outcome (False for non-branches and not-taken branches).
        self.taken = taken
        #: Next program counter for taken branches (0 otherwise).
        self.target = target

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynInst):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.word == other.word
            and self.addr == other.addr
            and self.taken == other.taken
            and self.target == other.target
        )

    def __repr__(self) -> str:
        flags = " taken" if self.taken else ""
        return f"DynInst(pc={self.pc:#x}, word={self.word:#010x}, addr={self.addr:#x}{flags})"


class Trace:
    """A dynamic instruction stream plus its decode cache.

    ``decoded_with`` pre-decodes every record with a given decoder library
    and memoises the result per decoder *library* (class identity, not
    instance id — decoding is pure per class, instances are
    interchangeable, and id-keying could silently alias a freed decoder
    with a newly allocated one at the same address); replaying the same
    trace under many configurations (the tuning loop) then pays decode
    cost once.
    """

    def __init__(self, records: list, name: str = "anonymous") -> None:
        self.records = records
        self.name = name
        self._decoded_cache: dict = {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def __getstate__(self) -> dict:
        # Decoded lists are bulky and cheap to rebuild; ship the trace
        # without them to keep pickles small.
        state = self.__dict__.copy()
        state["_decoded_cache"] = {}
        return state

    def decoded_with(self, decoder: Decoder) -> list:
        """Return per-record :class:`DecodedInst` list for ``decoder``."""
        key = decoder_library(decoder)
        cached = self._decoded_cache.get(key)
        if cached is None:
            decode = decoder.decode
            cached = [decode(rec.word) for rec in self.records]
            self._decoded_cache[key] = cached
        return cached

    def instruction_count(self) -> int:
        """Number of dynamically executed instructions."""
        return len(self.records)

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.records)} instructions)"
