"""Static/dynamic trace statistics.

Used by workload tests to check that each micro-benchmark actually has the
instruction-mix signature its category promises (memory kernels are
load/store heavy, control kernels are branch heavy, ...), and by the
Table I / Table II benches to print per-workload instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.decoder import Decoder
from repro.isa.opclasses import (
    BRANCH_CLASSES,
    FP_CLASSES,
    LOAD_CLASSES,
    OpClass,
    STORE_CLASSES,
)
from repro.trace.record import Trace


@dataclass
class TraceStats:
    """Aggregate statistics over one trace."""

    name: str
    instructions: int
    loads: int
    stores: int
    branches: int
    taken_branches: int
    indirect_branches: int
    fp_ops: int
    unique_pcs: int
    unique_cachelines: int
    opclass_counts: dict = field(default_factory=dict)

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def fp_fraction(self) -> float:
        return self.fp_ops / self.instructions if self.instructions else 0.0

    @property
    def mem_fraction(self) -> float:
        return self.load_fraction + self.store_fraction


def compute_trace_stats(trace: Trace, line_size: int = 64) -> TraceStats:
    """Walk ``trace`` once and summarise its instruction mix."""
    decoder = Decoder()
    decoded = trace.decoded_with(decoder)
    loads = stores = branches = taken = indirect = fp_ops = 0
    pcs = set()
    lines = set()
    opclass_counts: dict = {}
    for rec, inst in zip(trace.records, decoded):
        oc = int(inst.opclass)
        opclass_counts[oc] = opclass_counts.get(oc, 0) + 1
        pcs.add(rec.pc)
        if oc in LOAD_CLASSES:
            loads += 1
            lines.add(rec.addr // line_size)
        elif oc in STORE_CLASSES:
            stores += 1
            lines.add(rec.addr // line_size)
        elif oc in BRANCH_CLASSES:
            branches += 1
            if rec.taken:
                taken += 1
            if OpClass(oc).is_indirect:
                indirect += 1
        if oc in FP_CLASSES:
            fp_ops += 1
    return TraceStats(
        name=trace.name,
        instructions=len(trace.records),
        loads=loads,
        stores=stores,
        branches=branches,
        taken_branches=taken,
        indirect_branches=indirect,
        fp_ops=fp_ops,
        unique_pcs=len(pcs),
        unique_cachelines=len(lines),
        opclass_counts={OpClass(k).name: v for k, v in sorted(opclass_counts.items())},
    )
