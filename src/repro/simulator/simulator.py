"""SnipeSim — the user-facing simulator (our Sniper-ARM stand-in).

Wires the decoder library, the configured core model and the memory
hierarchy together, and runs SIFT traces to produce :class:`SimStats`.
Each ``run`` uses a fresh core and hierarchy so no micro-architectural
state leaks between workloads, while the decoder (and therefore its
decode cache, like a real decoder library) persists across runs.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.core.stats import SimStats
from repro.isa.decoder import Decoder
from repro.trace.columnar import DEFAULT_CHUNK
from repro.trace.record import Trace


class SnipeSim:
    """Trace-driven cycle-accounting simulator.

    Parameters
    ----------
    config:
        The processor description (:class:`repro.core.config.SimConfig`).
    decoder:
        The decoder library; defaults to a correct
        :class:`repro.isa.decoder.Decoder`. Pass a
        :class:`repro.isa.decoder.BuggyDecoder` to reproduce the paper's
        decoder-bug study.
    effects:
        Optional hardware-only behaviour hook; ``None`` for the plain
        simulator (the board injects one for ground-truth runs).
    """

    def __init__(self, config: SimConfig, decoder: Decoder = None, effects=None) -> None:
        self.config = config
        self.decoder = decoder if decoder is not None else Decoder()
        self.effects = effects

    def run(self, trace: Trace) -> SimStats:
        """Simulate ``trace`` from cold state; returns the run's stats.

        The trace's flattened issue stream (decode + record fields) is
        memoised per decoder library on the trace itself, so replaying
        one trace under many configurations — the tuning loop — pays
        decode and flattening exactly once.
        """
        if self.effects is not None:
            self.effects.reset()
        core = self._build_core()
        stream = trace.stream_with(self.decoder)
        stats = core.run_stream(trace, stream)
        stats.decoder = self.decoder.name
        return stats

    def _build_core(self):
        if self.config.core_type == "inorder":
            return InOrderCore(self.config, effects=self.effects)
        return OutOfOrderCore(self.config, effects=self.effects)


def simulate(config: SimConfig, trace: Trace, decoder: Decoder = None, effects=None) -> SimStats:
    """One-shot convenience wrapper around :class:`SnipeSim`."""
    return SnipeSim(config, decoder=decoder, effects=effects).run(trace)


def simulate_batch(trace, configs: list, decoder: Decoder = None,
                   effects: list = None, chunk_size: int = None) -> list:
    """Simulate K configurations over ``trace`` in one shared pass.

    Builds (or attaches — ``trace`` may itself be a
    :class:`repro.trace.columnar.ColumnarTrace`) the columnar form once,
    then drives one fresh core instance per configuration down a single
    chunked pass: trace preparation, chunk materialisation and the
    per-chunk tuple lists are paid once and shared by every candidate,
    while each core keeps its own pipeline, memory-hierarchy and
    branch-predictor state in a suspended :meth:`stream_runner`
    generator. This is the race-step fusion primitive: all alive
    candidates of one F-race round, one instance, one pass.

    Results are bit-identical to K independent :func:`simulate` calls —
    the kernels are verbatim copies of ``run_stream`` with state in
    generator locals — and are returned in ``configs`` order.

    ``effects``, when given, is a sequence parallel to ``configs``
    (entries may be ``None``): hardware-effects objects are stateful
    per run, so batched candidates must not share one.
    """
    if effects is not None and len(effects) != len(configs):
        raise ValueError("effects must be parallel to configs (one entry each)")
    if decoder is None:
        decoder = Decoder()
    if not configs:
        return []
    columns = trace.columns_with(decoder)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK

    runners = []
    for i, config in enumerate(configs):
        eff = effects[i] if effects is not None else None
        if eff is not None:
            eff.reset()
        core = SnipeSim(config, decoder=decoder, effects=eff)._build_core()
        gen = core.stream_runner(columns)
        next(gen)  # advance to the first chunk suspension point
        runners.append(gen)

    for chunk in columns.chunks(chunk_size):
        for gen in runners:
            gen.send(chunk)

    results = []
    for gen in runners:
        try:
            gen.send(None)
        except StopIteration as fin:
            stats = fin.value
        else:  # pragma: no cover - a kernel must finish when told to
            raise RuntimeError("stream_runner did not terminate")
        stats.decoder = decoder.name
        results.append(stats)
    return results
