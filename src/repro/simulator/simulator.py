"""SnipeSim — the user-facing simulator (our Sniper-ARM stand-in).

Wires the decoder library, the configured core model and the memory
hierarchy together, and runs SIFT traces to produce :class:`SimStats`.
Each ``run`` uses a fresh core and hierarchy so no micro-architectural
state leaks between workloads, while the decoder (and therefore its
decode cache, like a real decoder library) persists across runs.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.core.stats import SimStats
from repro.isa.decoder import Decoder
from repro.trace.record import Trace


class SnipeSim:
    """Trace-driven cycle-accounting simulator.

    Parameters
    ----------
    config:
        The processor description (:class:`repro.core.config.SimConfig`).
    decoder:
        The decoder library; defaults to a correct
        :class:`repro.isa.decoder.Decoder`. Pass a
        :class:`repro.isa.decoder.BuggyDecoder` to reproduce the paper's
        decoder-bug study.
    effects:
        Optional hardware-only behaviour hook; ``None`` for the plain
        simulator (the board injects one for ground-truth runs).
    """

    def __init__(self, config: SimConfig, decoder: Decoder = None, effects=None) -> None:
        self.config = config
        self.decoder = decoder if decoder is not None else Decoder()
        self.effects = effects

    def run(self, trace: Trace) -> SimStats:
        """Simulate ``trace`` from cold state; returns the run's stats.

        The trace's flattened issue stream (decode + record fields) is
        memoised per decoder library on the trace itself, so replaying
        one trace under many configurations — the tuning loop — pays
        decode and flattening exactly once.
        """
        if self.effects is not None:
            self.effects.reset()
        core = self._build_core()
        stream = trace.stream_with(self.decoder)
        stats = core.run_stream(trace, stream)
        stats.decoder = self.decoder.name
        return stats

    def _build_core(self):
        if self.config.core_type == "inorder":
            return InOrderCore(self.config, effects=self.effects)
        return OutOfOrderCore(self.config, effects=self.effects)


def simulate(config: SimConfig, trace: Trace, decoder: Decoder = None, effects=None) -> SimStats:
    """One-shot convenience wrapper around :class:`SnipeSim`."""
    return SnipeSim(config, decoder=decoder, effects=effects).run(trace)
