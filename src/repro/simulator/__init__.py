"""Simulator facade."""

from repro.simulator.simulator import SnipeSim, simulate

__all__ = ["SnipeSim", "simulate"]
