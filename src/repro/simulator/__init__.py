"""Simulator facade."""

from repro.simulator.simulator import SnipeSim, simulate, simulate_batch

__all__ = ["SnipeSim", "simulate", "simulate_batch"]
