"""Cost functions for the tuner.

The cost of a (configuration, workload) pair is the simulator's
prediction error against the hardware measurement. The default is the
absolute relative CPI error (§III-C input #4); step-5 component-focused
rounds use a weighted cost mixing CPI with component metrics, exactly as
the paper recommends ("a weighted cost function that includes both the
branch misprediction rate and the CPI").
"""

from __future__ import annotations

from repro.core.stats import SimStats
from repro.hardware.perf import PerfResult


def cpi_error(sim: SimStats, hw: PerfResult) -> float:
    """Absolute relative CPI error — the paper's headline metric."""
    hw_cpi = hw.cpi
    if hw_cpi <= 0:
        raise ValueError(f"hardware CPI is non-positive for {hw.workload!r}")
    return abs(sim.cpi - hw_cpi) / hw_cpi


def _relative_error(sim_value: float, hw_value: float) -> float:
    """Relative error robust to near-zero hardware counts."""
    denom = max(abs(hw_value), 1e-9)
    if hw_value == 0 and sim_value == 0:
        return 0.0
    return abs(sim_value - hw_value) / denom


def make_cpi_cost():
    """Cost callable of ``(SimStats, PerfResult) -> float`` using CPI."""
    return cpi_error


def make_weighted_cost(weights: dict):
    """Weighted multi-metric cost.

    ``weights`` maps counter names (``"cpi"``, ``"branch-mpki"``,
    ``"l1d-mpki"``, ``"l2-mpki"``...) to non-negative weights. Each
    metric contributes its relative error; weights are normalised.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    total = float(sum(weights.values()))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    items = [(name, w / total) for name, w in weights.items() if w > 0]

    def cost(sim: SimStats, hw: PerfResult) -> float:
        acc = 0.0
        for name, weight in items:
            if name == "cpi":
                acc += weight * cpi_error(sim, hw)
            elif name == "branch-mpki":
                acc += weight * _relative_error(sim.branch_mpki, hw.branch_mpki)
            elif name == "l1d-mpki":
                hw_mpki = 1000.0 * hw.counter("L1-dcache-load-misses") / hw.instructions
                acc += weight * _relative_error(sim.l1d_mpki, hw_mpki)
            elif name == "l2-mpki":
                hw_mpki = 1000.0 * hw.counter("l2-misses") / hw.instructions
                acc += weight * _relative_error(sim.l2_mpki, hw_mpki)
            else:
                acc += weight * _relative_error(sim.counter(name), hw.counter(name))
        return acc

    return cost
