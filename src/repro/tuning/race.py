"""Statistical racing of candidate configurations (Figure 2, step 2).

All candidates are evaluated on a first block of instances; from then on
each additional instance is followed by a statistical test that
eliminates candidates shown to be worse than the current best — "fast
elimination of configurations that can be statistically proven to be
inferior" (§III-C). Two tests are provided:

- ``"friedman"`` — the Friedman rank test with Conover's post-hoc
  pairwise comparison against the best-ranked candidate (irace's F-race
  default);
- ``"ttest"`` — paired one-sided t-test of each candidate against the
  best (irace's t-race variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats


@dataclass
class RaceResult:
    """Outcome of one race."""

    #: Indices into the input config list, best mean cost first.
    survivors: list
    #: Mean cost per surviving config index (over instances it saw).
    mean_costs: dict
    #: (config, instance) evaluations consumed.
    evaluations: int
    #: config index -> instance count seen before elimination.
    eliminated_after: dict = field(default_factory=dict)
    #: Number of instances the survivors were evaluated on.
    instances_used: int = 0


def _friedman_eliminate(costs: np.ndarray, alive: list, alpha: float) -> list:
    """Conover post-hoc elimination; returns the indices to eliminate.

    ``costs`` is (n_alive, n_instances). Candidates whose rank sum
    exceeds the best's by more than the critical difference go.
    """
    k, b = costs.shape
    if k < 2 or b < 2:
        return []
    # Rank within each instance column (1 = best/lowest cost).
    ranks = np.apply_along_axis(stats.rankdata, 0, costs)
    rank_sums = ranks.sum(axis=1)
    a2 = float((ranks**2).sum())
    b2 = float((rank_sums**2).sum()) / b
    mean_term = b * k * (k + 1) ** 2 / 4.0
    numer = b2 - mean_term
    spread = a2 - b2
    df = (b - 1) * (k - 1)
    best = int(np.argmin(rank_sums))

    if spread <= 1e-9:
        if numer <= 1e-9:
            return []  # every candidate performs identically
        # Perfectly consistent rankings across all blocks: maximal
        # significance, the post-hoc critical difference degenerates to
        # zero — everything ranked behind the best is dominated.
        return [alive[i] for i in range(k) if i != best and rank_sums[i] > rank_sums[best]]

    # Conover's F-statistic for the Friedman test.
    t_stat = (k - 1) * numer / spread
    p_value = stats.f.sf(t_stat, k - 1, df)
    if p_value > alpha:
        return []
    critical = stats.t.ppf(1 - alpha / 2.0, df) * np.sqrt(2.0 * b * spread / df)
    out = []
    for i in range(k):
        if i != best and rank_sums[i] - rank_sums[best] > critical:
            out.append(alive[i])
    return out


def _ttest_eliminate(costs: np.ndarray, alive: list, alpha: float) -> list:
    """Paired t-test of each candidate against the best-mean candidate."""
    k, b = costs.shape
    if k < 2 or b < 2:
        return []
    means = costs.mean(axis=1)
    best = int(np.argmin(means))
    out = []
    for i in range(k):
        if i == best:
            continue
        diff = costs[i] - costs[best]
        if np.allclose(diff, 0):
            continue
        t_stat, p_two = stats.ttest_rel(costs[i], costs[best])
        # One-sided: candidate i is worse.
        if t_stat > 0 and p_two / 2.0 < alpha:
            out.append(alive[i])
    return out


def race(
    configs: list,
    instances: list,
    evaluate=None,
    budget: int = None,
    first_test: int = 5,
    alpha: float = 0.05,
    min_survivors: int = 2,
    test: str = "friedman",
    batch_evaluate=None,
) -> RaceResult:
    """Race ``configs`` (list of assignments) across ``instances``.

    ``evaluate(config, instance) -> cost``; lower is better. The race
    stops when instances or ``budget`` are exhausted, or when only
    ``min_survivors`` candidates remain.

    When ``batch_evaluate`` is given (``batch_evaluate(pairs) -> costs``
    over ``(config, instance)`` pairs), each instance step submits all
    alive candidates as one block — the embarrassingly parallel unit of
    F-race — instead of looping; statistics, elimination order and
    results are unchanged, only execution differs. That block is also
    the fabric's dispatch unit: under an engine-backed evaluator each
    race round becomes one batch of content-keyed tasks, fanned out to
    however many ``repro worker`` processes share the store
    (``--executor fabric``), with process pools (``jobs > 1``) and the
    serial loop as the in-process alternatives.
    """
    if not configs:
        raise ValueError("need at least one configuration to race")
    if not instances:
        raise ValueError("need at least one instance to race on")
    if evaluate is None and batch_evaluate is None:
        raise ValueError("need evaluate and/or batch_evaluate")
    if test not in ("friedman", "ttest"):
        raise ValueError(f"unknown test {test!r}; use 'friedman' or 'ttest'")
    eliminate_fn = _friedman_eliminate if test == "friedman" else _ttest_eliminate

    n = len(configs)
    alive = list(range(n))
    cost_rows = {i: [] for i in alive}
    evaluations = 0
    eliminated_after: dict = {}
    instances_used = 0

    for j, instance in enumerate(instances):
        if budget is not None and evaluations + len(alive) > budget:
            break
        if batch_evaluate is not None:
            block = batch_evaluate([(configs[i], instance) for i in alive])
            for i, cost in zip(alive, block):
                cost_rows[i].append(cost)
        else:
            for i in alive:
                cost_rows[i].append(evaluate(configs[i], instance))
        evaluations += len(alive)
        instances_used = j + 1

        if j + 1 >= first_test and len(alive) > min_survivors:
            costs = np.array([cost_rows[i] for i in alive])
            to_drop = eliminate_fn(costs, alive, alpha)
            if to_drop:
                drop_set = set(to_drop)
                # Never drop below min_survivors: keep the best-mean ones.
                if len(alive) - len(drop_set) < min_survivors:
                    means = {i: float(np.mean(cost_rows[i])) for i in alive}
                    keep = sorted(alive, key=means.__getitem__)[:min_survivors]
                    drop_set -= set(keep)
                for i in drop_set:
                    eliminated_after[i] = j + 1
                alive = [i for i in alive if i not in drop_set]

    means = {i: float(np.mean(cost_rows[i])) for i in alive}
    survivors = sorted(alive, key=means.__getitem__)
    return RaceResult(
        survivors=survivors,
        mean_costs=means,
        evaluations=evaluations,
        eliminated_after=eliminated_after,
        instances_used=instances_used,
    )
