"""Statistical racing of candidate configurations (Figure 2, step 2).

All candidates are evaluated on a first block of instances; from then on
each additional instance is followed by a statistical test that
eliminates candidates shown to be worse than the current best — "fast
elimination of configurations that can be statistically proven to be
inferior" (§III-C). Two tests are provided:

- ``"friedman"`` — the Friedman rank test with Conover's post-hoc
  pairwise comparison against the best-ranked candidate (irace's F-race
  default);
- ``"ttest"`` — paired one-sided t-test of each candidate against the
  best (irace's t-race variant).

Execution modes
---------------

The race can run in two modes with *identical decisions*:

- ``mode="sync"`` — the classic barrier loop: each instance step
  evaluates every alive candidate, then the elimination test runs.
- ``mode="async"`` — :class:`AsyncRaceScheduler` speculatively submits
  up to ``lookahead`` instance steps ahead for every alive candidate and
  commits steps as results stream in.  Elimination statistics are a pure
  function of the committed cost matrix — *which* results are in, never
  *when* they arrived — so for any pure per-``(config, instance)``
  evaluator the elimination sequence, survivor set and mean costs are
  bit-identical to the synchronous race regardless of executor, worker
  count or completion order.  Results computed for candidates that are
  eliminated before their step commits are simply ignored (and reported
  as ``wasted_evaluations``); in-flight work for eliminated candidates
  is cancelled best-effort through the source.

Both modes drive the same :class:`_RaceState` commit/eliminate state
machine, which is what makes the equivalence hold by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import stats


@dataclass
class RaceResult:
    """Outcome of one race."""

    #: Indices into the input config list, best mean cost first.
    survivors: list
    #: Mean cost per surviving config index (over instances it saw).
    mean_costs: dict
    #: (config, instance) evaluations consumed (committed steps only).
    evaluations: int
    #: config index -> instance count seen before elimination.
    eliminated_after: dict = field(default_factory=dict)
    #: Number of instances the survivors were evaluated on.
    instances_used: int = 0
    #: Speculative results that completed but were never committed
    #: (telemetry only; never part of the decision sequence).
    wasted_evaluations: int = 0

    def decision_record(self) -> dict:
        """The decision sequence as comparable data.

        Two races made the same decisions iff their records are equal:
        execution telemetry (``wasted_evaluations``) is deliberately
        excluded, everything the race *decided* is included.
        """
        return {
            "survivors": list(self.survivors),
            "mean_costs": {int(i): float(c)
                           for i, c in sorted(self.mean_costs.items())},
            "evaluations": int(self.evaluations),
            "eliminated_after": {int(i): int(j)
                                 for i, j in sorted(self.eliminated_after.items())},
            "instances_used": int(self.instances_used),
        }


def _friedman_eliminate(costs: np.ndarray, alive: list, alpha: float) -> list:
    """Conover post-hoc elimination; returns the indices to eliminate.

    ``costs`` is (n_alive, n_instances). Candidates whose rank sum
    exceeds the best's by more than the critical difference go.
    """
    k, b = costs.shape
    if k < 2 or b < 2:
        return []
    # Rank within each instance column (1 = best/lowest cost).
    ranks = np.apply_along_axis(stats.rankdata, 0, costs)
    rank_sums = ranks.sum(axis=1)
    a2 = float((ranks**2).sum())
    b2 = float((rank_sums**2).sum()) / b
    mean_term = b * k * (k + 1) ** 2 / 4.0
    numer = b2 - mean_term
    spread = a2 - b2
    df = (b - 1) * (k - 1)
    best = int(np.argmin(rank_sums))

    if spread <= 1e-9:
        if numer <= 1e-9:
            return []  # every candidate performs identically
        # Perfectly consistent rankings across all blocks: maximal
        # significance, the post-hoc critical difference degenerates to
        # zero — everything ranked behind the best is dominated.
        return [alive[i] for i in range(k) if i != best and rank_sums[i] > rank_sums[best]]

    # Conover's F-statistic for the Friedman test.
    t_stat = (k - 1) * numer / spread
    p_value = stats.f.sf(t_stat, k - 1, df)
    if p_value > alpha:
        return []
    critical = stats.t.ppf(1 - alpha / 2.0, df) * np.sqrt(2.0 * b * spread / df)
    out = []
    for i in range(k):
        if i != best and rank_sums[i] - rank_sums[best] > critical:
            out.append(alive[i])
    return out


def _ttest_eliminate(costs: np.ndarray, alive: list, alpha: float) -> list:
    """Paired t-test of each candidate against the best-mean candidate."""
    k, b = costs.shape
    if k < 2 or b < 2:
        return []
    means = costs.mean(axis=1)
    best = int(np.argmin(means))
    out = []
    for i in range(k):
        if i == best:
            continue
        diff = costs[i] - costs[best]
        if np.allclose(diff, 0):
            continue
        t_stat, p_two = stats.ttest_rel(costs[i], costs[best])
        # One-sided: candidate i is worse.
        if t_stat > 0 and p_two / 2.0 < alpha:
            out.append(alive[i])
    return out


class _RaceState:
    """The shared commit/eliminate state machine.

    Both execution modes feed completed instance steps through
    :meth:`commit_step`; all statistics, elimination and bookkeeping
    live here, so sync and async races are identical by construction.
    """

    def __init__(self, n_configs: int, n_instances: int, eliminate_fn,
                 alpha: float, budget, first_test: int, min_survivors: int,
                 early_exit: bool = True):
        self.n_instances = n_instances
        self.eliminate_fn = eliminate_fn
        self.alpha = alpha
        self.budget = budget
        self.first_test = first_test
        self.min_survivors = min_survivors
        self.early_exit = early_exit
        self.alive = list(range(n_configs))
        self.cost_rows = {i: [] for i in self.alive}
        self.evaluations = 0
        self.eliminated_after: dict = {}
        self.instances_used = 0
        self.step = 0  # next instance index to commit

    def finished(self) -> bool:
        """True when no further instance step may be committed."""
        if self.step >= self.n_instances:
            return True
        if self.budget is not None and self.evaluations + len(self.alive) > self.budget:
            return True
        # A lone survivor has already won: evaluating the remaining
        # instance block cannot change any decision.
        if self.early_exit and len(self.alive) == 1 and self.step > 0:
            return True
        return False

    def commit_step(self, costs: dict) -> None:
        """Commit instance step ``self.step``: one cost per alive index."""
        for i in self.alive:
            self.cost_rows[i].append(costs[i])
        self.evaluations += len(self.alive)
        self.step += 1
        self.instances_used = self.step

        if self.step >= self.first_test and len(self.alive) > self.min_survivors:
            arr = np.array([self.cost_rows[i] for i in self.alive])
            to_drop = self.eliminate_fn(arr, self.alive, self.alpha)
            if to_drop:
                drop_set = set(to_drop)
                # Never drop below min_survivors: keep the best-mean ones.
                if len(self.alive) - len(drop_set) < self.min_survivors:
                    means = {i: float(np.mean(self.cost_rows[i])) for i in self.alive}
                    keep = sorted(self.alive, key=means.__getitem__)[:self.min_survivors]
                    drop_set -= set(keep)
                for i in drop_set:
                    self.eliminated_after[i] = self.step
                self.alive = [i for i in self.alive if i not in drop_set]

    def result(self, wasted: int = 0) -> RaceResult:
        means = {i: float(np.mean(self.cost_rows[i])) for i in self.alive}
        survivors = sorted(self.alive, key=means.__getitem__)
        return RaceResult(
            survivors=survivors,
            mean_costs=means,
            evaluations=self.evaluations,
            eliminated_after=self.eliminated_after,
            instances_used=self.instances_used,
            wasted_evaluations=wasted,
        )


class FunctionRaceSource:
    """Race source over plain ``evaluate``/``batch_evaluate`` callables.

    ``submit`` buffers requests; ``poll`` computes every buffered,
    non-cancelled request at once (in submission order).  This emulates
    an always-ready fleet, so ``mode="async"`` works against any
    evaluator — and the scheduler's decisions still match sync exactly
    whenever the evaluator is a pure function of ``(config, instance)``.
    """

    def __init__(self, evaluate=None, batch_evaluate=None):
        if evaluate is None and batch_evaluate is None:
            raise ValueError("need evaluate and/or batch_evaluate")
        self._evaluate = evaluate
        self._batch = batch_evaluate
        self._pending = []  # [(token, config, instance)]

    def submit(self, requests) -> None:
        """Accept ``(token, config, instance)`` work items."""
        self._pending.extend(requests)

    def poll(self) -> list:
        """Return ``[(token, cost)]`` for newly completed work."""
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        if self._batch is not None:
            costs = self._batch([(config, inst) for _, config, inst in pending])
            return [(tok, cost) for (tok, _, _), cost in zip(pending, costs)]
        return [(tok, self._evaluate(config, inst))
                for tok, config, inst in pending]

    def cancel(self, tokens) -> None:
        """Drop still-buffered requests; already-polled work is done."""
        drop = set(tokens)
        self._pending = [p for p in self._pending if p[0] not in drop]


class BatchSource:
    """Race source over a ``submit_batch``/``poll_batch`` backend.

    The backend is typically a :class:`repro.engine.TrialCache` or
    :class:`repro.engine.AssignmentEvaluator`: ``submit_batch(pairs)``
    returns a ticket, ``poll_batch(ticket)`` yields ``{index: cost}``
    for pairs completed since the previous poll, and
    ``cancel_batch(ticket, indices)`` withdraws work best-effort.
    """

    def __init__(self, backend):
        for name in ("submit_batch", "poll_batch", "cancel_batch"):
            if not hasattr(backend, name):
                raise TypeError(f"backend lacks {name}(): {backend!r}")
        self.backend = backend
        self._entries = []  # [ticket, tokens, remaining-index set]

    def submit(self, requests) -> None:
        """Forward ``(token, config, instance)`` items as one batch."""
        requests = list(requests)
        if not requests:
            return
        tokens = [tok for tok, _, _ in requests]
        ticket = self.backend.submit_batch(
            [(config, inst) for _, config, inst in requests])
        self._entries.append([ticket, tokens, set(range(len(tokens)))])

    def poll(self) -> list:
        """``[(token, cost)]`` newly completed across all live tickets."""
        out = []
        finished = []
        for entry in self._entries:
            ticket, tokens, remaining = entry
            got = self.backend.poll_batch(ticket)
            for idx in sorted(got):
                if idx in remaining:
                    remaining.discard(idx)
                    out.append((tokens[idx], got[idx]))
            if not remaining:
                finished.append(entry)
        for entry in finished:
            self._entries.remove(entry)
        return out

    def cancel(self, tokens) -> None:
        """Withdraw tokens best-effort (per-ticket ``cancel_batch``)."""
        drop = set(tokens)
        finished = []
        for entry in self._entries:
            ticket, toks, remaining = entry
            indices = [k for k, t in enumerate(toks)
                       if t in drop and k in remaining]
            if indices:
                self.backend.cancel_batch(ticket, indices)
                remaining.difference_update(indices)
            if not remaining:
                finished.append(entry)
        for entry in finished:
            self._entries.remove(entry)


class AsyncRaceScheduler:
    """Speculative race execution: keep the fleet saturated.

    Instead of a barrier per instance step, the scheduler keeps up to
    ``lookahead`` steps beyond the commit frontier submitted for every
    alive candidate.  Steps commit strictly in instance order, each as
    soon as all frontier results are in; the shared :class:`_RaceState`
    then decides eliminations exactly as the synchronous loop would.
    Work in flight for eliminated candidates is cancelled (best-effort)
    and any of their results that still arrive are ignored.
    """

    def __init__(self, configs, instances, source, state: _RaceState,
                 lookahead: int = 2, poll_interval: float = 0.01,
                 timeout: float = None):
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        self.configs = configs
        self.instances = instances
        self.source = source
        self.state = state
        self.lookahead = lookahead
        self.poll_interval = poll_interval
        self.timeout = timeout

    def run(self) -> RaceResult:
        """Drive the race to completion; returns the shared-state result."""
        state = self.state
        requested: set = set()   # tokens ever submitted
        cancelled: set = set()   # tokens withdrawn
        results: dict = {}       # token -> cost
        used: set = set()        # tokens whose cost was committed
        start = time.monotonic()

        while not state.finished():
            self._speculate(requested)
            self._await_frontier(results, start)
            committed = list(state.alive)
            step = state.step
            state.commit_step({i: results[(i, step)] for i in committed})
            used.update((i, step) for i in committed)
            self._cancel_stale(requested, cancelled, results)

        # Withdraw whatever speculation is still in flight.
        leftover = sorted(t for t in requested
                          if t not in results and t not in cancelled)
        if leftover:
            self.source.cancel(leftover)
            cancelled.update(leftover)

        wasted = sum(1 for t in results if t not in used)
        return state.result(wasted=wasted)

    def _speculate(self, requested: set) -> None:
        """Submit the frontier plus up to ``lookahead`` steps beyond it."""
        state = self.state
        horizon = min(state.step + self.lookahead, state.n_instances - 1)
        batch = []
        for step in range(state.step, horizon + 1):
            for i in state.alive:
                token = (i, step)
                if token not in requested:
                    requested.add(token)
                    batch.append((token, self.configs[i], self.instances[step]))
        if batch:
            self.source.submit(batch)

    def _await_frontier(self, results: dict, start: float) -> None:
        """Poll until every alive candidate's frontier result is in.

        Empty polls back off exponentially from ``poll_interval`` up to
        a 1 s cap (any result resets the pace), so a scheduler stalled
        on slow workers stops hammering the executor's queue/server.
        """
        state = self.state
        frontier = [(i, state.step) for i in state.alive]
        pace = self.poll_interval
        while not all(t in results for t in frontier):
            got = self.source.poll()
            if got:
                for token, cost in got:
                    results[token] = cost
                pace = self.poll_interval
                continue
            if (self.timeout is not None
                    and time.monotonic() - start > self.timeout):
                missing = [t for t in frontier if t not in results]
                raise TimeoutError(
                    f"race step {state.step} timed out after {self.timeout}s "
                    f"({len(missing)} frontier result(s) outstanding)")
            time.sleep(pace)
            pace = min(pace * 2, max(self.poll_interval, 1.0))

    def _cancel_stale(self, requested: set, cancelled: set,
                      results: dict) -> None:
        """Withdraw in-flight work owned by eliminated candidates."""
        alive = set(self.state.alive)
        stale = sorted(t for t in requested
                       if t[0] not in alive
                       and t not in results and t not in cancelled)
        if stale:
            self.source.cancel(stale)
            cancelled.update(stale)


def race(
    configs: list,
    instances: list,
    evaluate=None,
    budget: int = None,
    first_test: int = 5,
    alpha: float = 0.05,
    min_survivors: int = 2,
    test: str = "friedman",
    batch_evaluate=None,
    mode: str = "sync",
    lookahead: int = 2,
    source=None,
    early_exit: bool = True,
    poll_interval: float = 0.01,
    timeout: float = None,
) -> RaceResult:
    """Race ``configs`` (list of assignments) across ``instances``.

    ``evaluate(config, instance) -> cost``; lower is better. The race
    stops when instances or ``budget`` are exhausted, or (with
    ``early_exit``, the default) as soon as a single candidate remains
    with at least one committed step.

    When ``batch_evaluate`` is given (``batch_evaluate(pairs) -> costs``
    over ``(config, instance)`` pairs), each instance step submits all
    alive candidates as one block — the embarrassingly parallel unit of
    F-race — instead of looping; statistics, elimination order and
    results are unchanged, only execution differs. That block is also
    the fabric's dispatch unit: under an engine-backed evaluator each
    race round becomes one batch of content-keyed tasks, fanned out to
    however many ``repro worker`` processes share the store
    (``--executor fabric``), with process pools (``jobs > 1``) and the
    serial loop as the in-process alternatives.

    ``mode="async"`` replaces the per-step barrier with speculative
    scheduling (see :class:`AsyncRaceScheduler`): ``lookahead`` extra
    instance steps are kept in flight per alive candidate, and a
    ``source`` streams completions back.  If no ``source`` is given one
    is derived — a :class:`BatchSource` when the evaluator exposes the
    non-blocking ``submit_batch`` protocol (``TrialCache``,
    ``AssignmentEvaluator``), else a :class:`FunctionRaceSource` over
    the plain callables.  For pure evaluators the decision sequence is
    bit-identical to ``mode="sync"``.
    """
    if not configs:
        raise ValueError("need at least one configuration to race")
    if not instances:
        raise ValueError("need at least one instance to race on")
    if evaluate is None and batch_evaluate is None and source is None:
        raise ValueError("need evaluate, batch_evaluate or a source")
    if test not in ("friedman", "ttest"):
        raise ValueError(f"unknown test {test!r}; use 'friedman' or 'ttest'")
    if mode not in ("sync", "async"):
        raise ValueError(f"unknown race mode {mode!r}; use 'sync' or 'async'")
    eliminate_fn = _friedman_eliminate if test == "friedman" else _ttest_eliminate

    state = _RaceState(
        n_configs=len(configs),
        n_instances=len(instances),
        eliminate_fn=eliminate_fn,
        alpha=alpha,
        budget=budget,
        first_test=first_test,
        min_survivors=min_survivors,
        early_exit=early_exit,
    )

    if mode == "async":
        if source is None:
            backend = _find_batch_backend(evaluate, batch_evaluate)
            if backend is not None:
                source = BatchSource(backend)
            else:
                source = FunctionRaceSource(evaluate, batch_evaluate)
        scheduler = AsyncRaceScheduler(
            configs, instances, source, state,
            lookahead=lookahead, poll_interval=poll_interval, timeout=timeout)
        return scheduler.run()

    for instance in instances:
        if state.finished():
            break
        if batch_evaluate is not None:
            block = batch_evaluate([(configs[i], instance) for i in state.alive])
            costs = dict(zip(state.alive, block))
        else:
            costs = {i: evaluate(configs[i], instance) for i in state.alive}
        state.commit_step(costs)
    return state.result()


def _find_batch_backend(evaluate, batch_evaluate):
    """Locate an object speaking the non-blocking batch protocol."""
    for fn in (batch_evaluate, evaluate):
        if fn is None:
            continue
        owner = getattr(fn, "__self__", None)
        for candidate in (owner, fn):
            if candidate is not None and hasattr(candidate, "submit_batch") \
                    and hasattr(candidate, "poll_batch"):
                return candidate
    return None
