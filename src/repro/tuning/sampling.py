"""Sampling distributions for iterated racing (Figure 2, steps 1 and 3).

Each parameter carries a sampling distribution: a probability vector for
categorical parameters, a truncated discretised normal over candidate
*indices* for ordinal parameters. New candidates are sampled around a
parent elite; after each race the distributions are biased toward the
surviving elites and the ordinal spread shrinks, so sampling
progressively concentrates near the winning region — the "update the
distributions to bias future configuration sampling towards the best
ones" step.
"""

from __future__ import annotations

import random

from repro.tuning.parameters import Param, ParamSpace


class CategoricalSampler:
    """Probability vector over a categorical parameter's candidates."""

    def __init__(self, param: Param) -> None:
        self.param = param
        n = len(param.values)
        self.probs = [1.0 / n] * n

    def sample(self, rng: random.Random, parent_value=None, parent_weight: float = 0.5):
        """Sample a value; with ``parent_weight`` probability keep the
        parent elite's value, otherwise draw from the learned vector."""
        if parent_value is not None and rng.random() < parent_weight:
            return parent_value
        r = rng.random()
        acc = 0.0
        for value, p in zip(self.param.values, self.probs):
            acc += p
            if r <= acc:
                return value
        return self.param.values[-1]

    def update(self, elite_values: list, rate: float) -> None:
        """Shift mass toward the elites' values by ``rate``."""
        if not elite_values:
            return
        n = len(self.param.values)
        counts = [0.0] * n
        for value in elite_values:
            counts[self.param.index_of(value)] += 1.0
        total = sum(counts)
        target = [c / total for c in counts]
        floor = 0.01 / n
        self.probs = [
            max(floor, (1.0 - rate) * p + rate * t) for p, t in zip(self.probs, target)
        ]
        norm = sum(self.probs)
        self.probs = [p / norm for p in self.probs]


class OrdinalSampler:
    """Truncated discretised normal over candidate indices."""

    def __init__(self, param: Param) -> None:
        self.param = param
        n = len(param.values)
        self.sigma = max(0.5, (n - 1) / 2.0)
        self._initial_sigma = self.sigma

    def sample(self, rng: random.Random, parent_value=None, parent_weight: float = 0.0):
        values = self.param.values
        n = len(values)
        if parent_value is None:
            return values[rng.randrange(n)]
        mean = self.param.index_of(parent_value)
        idx = int(round(rng.gauss(mean, self.sigma)))
        if idx < 0:
            idx = 0
        elif idx >= n:
            idx = n - 1
        return values[idx]

    def shrink(self, factor: float) -> None:
        """Tighten the spread after an iteration (never fully collapses,
        so late iterations still explore adjacent candidates)."""
        self.sigma = max(0.35, self.sigma * factor)

    def reset(self) -> None:
        self.sigma = self._initial_sigma


class ConfigSampler:
    """Samples full assignments around parent elites."""

    def __init__(self, space: ParamSpace, seed: int = 0) -> None:
        self.space = space
        self.rng = random.Random(seed)
        self._samplers: dict = {}
        for p in space:
            if p.kind == "ordinal":
                self._samplers[p.name] = OrdinalSampler(p)
            else:
                self._samplers[p.name] = CategoricalSampler(p)

    def sample_config(self, parent: dict = None, parent_weight: float = 0.5) -> dict:
        """One new assignment; uniform when ``parent`` is None."""
        out = {}
        for p in self.space:
            sampler = self._samplers[p.name]
            parent_value = parent.get(p.name) if parent else None
            out[p.name] = sampler.sample(self.rng, parent_value, parent_weight)
        return out

    def update(self, elites: list, rate: float, shrink: float = 0.7) -> None:
        """Bias distributions toward ``elites`` (list of assignments)."""
        for p in self.space:
            sampler = self._samplers[p.name]
            values = [e[p.name] for e in elites if p.name in e]
            if isinstance(sampler, CategoricalSampler):
                sampler.update(values, rate)
            else:
                sampler.shrink(shrink)

    def soft_restart(self) -> None:
        """Re-widen ordinal spreads after premature convergence."""
        for sampler in self._samplers.values():
            if isinstance(sampler, OrdinalSampler):
                sampler.reset()
