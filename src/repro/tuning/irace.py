"""The iterated-racing driver (§III-C, Figure 2).

Each iteration (1) samples new candidate configurations around the
current elites, (2) races them — with the elites — across the workload
instances, eliminating statistically dominated candidates early, and
(3) updates the sampling distributions toward the survivors. The loop
ends when the trial budget is exhausted; the number of iterations and
the per-iteration candidate count follow the irace budget-partitioning
scheme. Evaluations are memoised per (configuration, instance), so
elites carry their results across iterations as irace does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.evaluator import TrialCache
from repro.engine.keys import freeze_assignment as _freeze
from repro.tuning.parameters import ParamSpace
from repro.tuning.race import race
from repro.tuning.sampling import ConfigSampler


@dataclass
class IraceIteration:
    """Telemetry for one iteration (drives the Figure-2 convergence bench)."""

    iteration: int
    candidates: int
    evaluations: int
    best_cost: float
    survivor_count: int
    best_assignment: dict = field(default_factory=dict)


@dataclass
class IraceResult:
    """Final tuner output.

    Trial accounting distinguishes *unique* trials (distinct
    (configuration, instance) pairs that actually ran — what the budget
    buys) from *requested* trials (every evaluation the race asked for,
    including ones answered by the memo, as elites re-race across
    iterations). ``total_evaluations`` is kept as an alias of
    ``unique_trials`` for backwards compatibility.
    """

    best_assignment: dict
    best_cost: float
    elites: list
    history: list
    total_evaluations: int
    budget: int
    unique_trials: int = 0
    requested_trials: int = 0

    def summary(self) -> str:
        """Readable account of budget use and the winning assignment."""
        lines = [
            f"irace finished: {self.unique_trials} unique trials "
            f"({self.requested_trials} requested) / budget {self.budget}, "
            f"best mean cost {self.best_cost:.4f}"
        ]
        for it in self.history:
            lines.append(
                f"  iter {it.iteration}: {it.candidates} candidates, "
                f"{it.evaluations} requested trials, best {it.best_cost:.4f}, "
                f"{it.survivor_count} survivors"
            )
        return "\n".join(lines)


class IraceTuner:
    """Iterated racing over a :class:`ParamSpace`.

    Parameters
    ----------
    space:
        The tunable parameters with candidate values.
    evaluate:
        ``evaluate(assignment, instance) -> cost`` (lower is better).
        Typically built by the validation layer: apply the assignment to
        the base config, simulate the instance's trace, compare to the
        cached hardware measurement.
    instances:
        Workload instance identifiers (the micro-benchmark names).
    budget:
        Maximum number of (configuration, instance) trials — the paper
        runs budgets of 10K-100K; scaled-down experiments use hundreds
        to a few thousands.
    initial_assignments:
        Seed configurations for the first race (e.g. the best-guess
        model of step #3).
    store / trial_context:
        Optional persistent :class:`~repro.store.resultstore.ResultStore`
        plus a context token identifying this tuning run (e.g.
        ``"<run-id>/stage1"``). When both are given the trial memo is
        written through to the store's trial-costs table, so a killed
        tuner resumed under the same context replays its completed
        trials from disk (see :class:`~repro.engine.evaluator.TrialCache`).
    race_mode / lookahead:
        Execution mode for each race (``"sync"`` or ``"async"``; see
        :func:`~repro.tuning.race.race`). Async races speculate
        ``lookahead`` instance steps ahead to keep a distributed fleet
        saturated; elimination decisions — and therefore the tuned
        result — are bit-identical either way. Only trial *telemetry*
        (requested/unique counts) may differ, since speculative trials
        for eliminated candidates can compute before cancellation.
    """

    def __init__(
        self,
        space: ParamSpace,
        evaluate,
        instances: list,
        budget: int = 2000,
        seed: int = 0,
        n_elites: int = 3,
        first_test: int = 5,
        alpha: float = 0.05,
        test: str = "friedman",
        min_survivors: int = 2,
        initial_assignments: list = None,
        parent_weight: float = 0.55,
        verbose: bool = False,
        store=None,
        trial_context=None,
        race_mode: str = "sync",
        lookahead: int = 2,
    ) -> None:
        if budget < len(instances):
            raise ValueError("budget must allow at least one full race block")
        if race_mode not in ("sync", "async"):
            raise ValueError(
                f"unknown race mode {race_mode!r}; use 'sync' or 'async'")
        self.space = space
        self.instances = list(instances)
        self.budget = budget
        self.n_elites = n_elites
        self.first_test = min(first_test, len(self.instances))
        self.alpha = alpha
        self.test = test
        self.min_survivors = min_survivors
        self.parent_weight = parent_weight
        self.verbose = verbose
        self.race_mode = race_mode
        self.lookahead = lookahead
        self._sampler = ConfigSampler(space, seed=seed)
        self._rng = self._sampler.rng
        #: Shared memo + trial telemetry (replaces a private cache dict).
        #: When ``evaluate`` exposes ``evaluate_batch`` (an engine-backed
        #: AssignmentEvaluator), each race block runs as one parallel
        #: batch through it.
        self._trials = TrialCache(evaluate, store=store, context=trial_context)
        self._initial = [dict(a) for a in (initial_assignments or [])]
        for assignment in self._initial:
            space.validate_assignment(assignment)

    def _n_iterations(self) -> int:
        return max(2, 2 + int(math.floor(math.log2(max(2, len(self.space))))))

    def run(self) -> IraceResult:
        """Execute the iterated race; returns the tuned configuration."""
        n_iter = self._n_iterations()
        used = 0
        elites: list = []
        history: list = []

        for iteration in range(1, n_iter + 1):
            remaining = self.budget - used
            if remaining < len(self.instances) // 2 + self.first_test:
                break
            iter_budget = remaining // (n_iter - iteration + 1)
            # Expected instances per candidate grows with iterations.
            expected_len = self.first_test + min(5, iteration) + 2
            n_new = max(3, iter_budget // max(1, expected_len))

            candidates: list = []
            seen = set()

            def add(assignment: dict) -> None:
                key = _freeze(assignment)
                if key not in seen:
                    seen.add(key)
                    candidates.append(assignment)

            for elite in elites:
                add(elite)
            if iteration == 1:
                for assignment in self._initial:
                    add(assignment)
            parents = elites or [None]
            attempts = 0
            while len(candidates) < n_new + len(elites) and attempts < 20 * n_new:
                parent = parents[self._rng.randrange(len(parents))]
                add(self._sampler.sample_config(parent, self.parent_weight))
                attempts += 1

            order = list(self.instances)
            self._rng.shuffle(order)
            result = race(
                candidates,
                order,
                self._trials,
                batch_evaluate=self._trials.evaluate_batch,
                budget=iter_budget,
                first_test=self.first_test,
                alpha=self.alpha,
                min_survivors=self.min_survivors,
                test=self.test,
                mode=self.race_mode,
                lookahead=self.lookahead,
            )
            used += result.evaluations

            elites = [candidates[i] for i in result.survivors[: self.n_elites]]
            best_idx = result.survivors[0]
            best_cost = result.mean_costs[best_idx]
            history.append(
                IraceIteration(
                    iteration=iteration,
                    candidates=len(candidates),
                    evaluations=result.evaluations,
                    best_cost=best_cost,
                    survivor_count=len(result.survivors),
                    best_assignment=dict(candidates[best_idx]),
                )
            )
            if self.verbose:
                print(
                    f"[irace] iter {iteration}/{n_iter}: {len(candidates)} candidates, "
                    f"{result.evaluations} trials (total {used}/{self.budget}), "
                    f"best cost {best_cost:.4f}"
                )
            rate = 0.3 + 0.5 * iteration / n_iter
            self._sampler.update(elites, rate=rate)

        if not elites:
            raise RuntimeError("irace budget too small: no iteration completed")

        # Definitive comparison on every instance: the final elites plus a
        # hall of fame of each iteration's race winner. Racing sees random
        # instance subsets, so this full pass protects the tuned model
        # against a lucky-subset winner (the cache keeps the cost modest).
        finalists: list = []
        seen_final = set()
        for assignment in elites + [it.best_assignment for it in history]:
            key = _freeze(assignment)
            if key not in seen_final:
                seen_final.add(key)
                finalists.append(assignment)
        pairs = [(f, inst) for f in finalists for inst in self.instances]
        all_costs = self._trials.evaluate_batch(pairs)
        n_inst = len(self.instances)
        final_costs = [
            sum(all_costs[i * n_inst:(i + 1) * n_inst]) / n_inst
            for i in range(len(finalists))
        ]
        best_i = min(range(len(finalists)), key=final_costs.__getitem__)

        return IraceResult(
            best_assignment=dict(finalists[best_i]),
            best_cost=final_costs[best_i],
            elites=[dict(e) for e in elites],
            history=history,
            total_evaluations=self._trials.unique_trials,
            budget=self.budget,
            unique_trials=self._trials.unique_trials,
            requested_trials=self._trials.requested_trials,
        )
