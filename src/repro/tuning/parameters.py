"""Tunable-parameter space.

The user prepares "a list of all the configuration parameters that
require a best guess ... paired with all the candidate values it could
take" (§III-A step 4). A :class:`ParamSpace` is exactly that list. Three
parameter kinds cover the paper's examples:

- :class:`CategoricalParam` — unordered choices (which prefetcher, which
  address hash, which branch predictor);
- :class:`OrdinalParam` — ordered discrete numeric candidates (window
  sizes, latencies, entry counts) — the paper notes ranges are
  discretised "to avoid wasting irace's budget";
- :class:`BooleanParam` — true/false features (prefetch on hit, store
  coalescing).

Parameters may be *conditional* (active only when another parameter
takes certain values), e.g. prefetch degree only matters when a
prefetcher is selected — matching irace's conditional parameter support.
"""

from __future__ import annotations


class Param:
    """Base class: a named parameter with discrete candidate values."""

    kind = "abstract"

    def __init__(self, name: str, values, condition=None) -> None:
        values = list(values)
        if len(values) < 2:
            raise ValueError(f"{name}: need at least two candidate values")
        if len(set(map(repr, values))) != len(values):
            raise ValueError(f"{name}: duplicate candidate values")
        self.name = name
        self.values = values
        #: Optional ``callable(assignment_dict) -> bool``; inactive
        #: parameters keep their base-config value.
        self.condition = condition

    def is_active(self, assignment: dict) -> bool:
        return self.condition is None or bool(self.condition(assignment))

    def index_of(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(f"{value!r} is not a candidate of {self.name}") from None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.values!r})"


class CategoricalParam(Param):
    """Unordered choice among alternatives."""

    kind = "categorical"


class OrdinalParam(Param):
    """Ordered numeric candidates; sampling respects locality."""

    kind = "ordinal"

    def __init__(self, name: str, values, condition=None) -> None:
        values = list(values)
        if sorted(values) != values:
            raise ValueError(f"{name}: ordinal candidate values must be sorted")
        super().__init__(name, values, condition)


class BooleanParam(CategoricalParam):
    """True/false feature switch."""

    kind = "boolean"

    def __init__(self, name: str, condition=None) -> None:
        super().__init__(name, [False, True], condition)


class ParamSpace:
    """An ordered collection of tunable parameters.

    ``neighbors(assignment)`` enumerates one-step deviations (each
    parameter moved to an adjacent ordinal value or another category),
    which is the neighbourhood the Figures 7/8 worst-case study searches.
    """

    def __init__(self, params: list) -> None:
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self.params = list(params)
        self._by_name = {p.name: p for p in params}

    def __len__(self) -> int:
        return len(self.params)

    def __iter__(self):
        return iter(self.params)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Param:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no parameter {name!r} in space") from None

    def names(self) -> list:
        return [p.name for p in self.params]

    def total_combinations(self) -> int:
        """Size of the full cross product (why racing is needed)."""
        total = 1
        for p in self.params:
            total *= len(p.values)
        return total

    def validate_assignment(self, assignment: dict) -> None:
        """Check every value is a known candidate of a known parameter."""
        for name, value in assignment.items():
            self.get(name).index_of(value)

    def active_params(self, assignment: dict) -> list:
        return [p for p in self.params if p.is_active(assignment)]

    def default_assignment(self, base_values: dict = None) -> dict:
        """Assignment taking each parameter's value from ``base_values``
        when it is a valid candidate, else the middle candidate."""
        base_values = base_values or {}
        out = {}
        for p in self.params:
            value = base_values.get(p.name)
            if value is not None and value in p.values:
                out[p.name] = value
            else:
                out[p.name] = p.values[len(p.values) // 2]
        return out

    def neighbor_values(self, param: Param, value) -> list:
        """One-step deviations of ``param`` away from ``value``.

        Ordinal parameters move to adjacent candidates; categorical and
        boolean parameters may switch to any other candidate (a single
        "step" in an unordered domain).
        """
        idx = param.index_of(value)
        if param.kind == "ordinal":
            out = []
            if idx > 0:
                out.append(param.values[idx - 1])
            if idx + 1 < len(param.values):
                out.append(param.values[idx + 1])
            return out
        return [v for i, v in enumerate(param.values) if i != idx]

    def neighbors(self, assignment: dict) -> list:
        """All assignments that deviate from ``assignment`` by one step in
        exactly one active parameter."""
        out = []
        for p in self.active_params(assignment):
            for value in self.neighbor_values(p, assignment[p.name]):
                neighbor = dict(assignment)
                neighbor[p.name] = value
                out.append(neighbor)
        return out
