"""Iterated racing — the machine-learning parameter tuner (§III-C).

A from-scratch Python implementation of the iterated racing algorithm
(Birattari et al.'s racing; López-Ibáñez et al.'s irace): sample
candidate configurations from per-parameter distributions, race them
across workload instances with statistical elimination of dominated
candidates, then sharpen the distributions around the survivors and
repeat until the trial budget is exhausted.
"""

from repro.tuning.parameters import (
    BooleanParam,
    CategoricalParam,
    OrdinalParam,
    Param,
    ParamSpace,
)
from repro.tuning.cost import cpi_error, make_cpi_cost, make_weighted_cost
from repro.tuning.race import RaceResult, race
from repro.tuning.irace import IraceResult, IraceTuner

__all__ = [
    "Param",
    "CategoricalParam",
    "OrdinalParam",
    "BooleanParam",
    "ParamSpace",
    "cpi_error",
    "make_cpi_cost",
    "make_weighted_cost",
    "race",
    "RaceResult",
    "IraceTuner",
    "IraceResult",
]
