"""Main-memory (DDR-like) timing model.

Models the three externally visible properties the paper's tuning list
includes for the memory system: access latency, bandwidth, and the
organisation's row-buffer behaviour (open-page hits are cheaper than row
conflicts).
"""

from __future__ import annotations


class DramModel:
    """Latency/bandwidth/row-buffer model of main memory.

    - ``latency``: closed-page access latency in core cycles;
    - ``page_hit_latency``: latency when the access hits the currently
      open row of its bank (only with ``page_policy='open'``);
    - ``banks``: row-buffer count (bank interleaved by line address);
    - ``bandwidth``: concurrent in-flight requests (channel occupancy is
      ``1/bandwidth`` cycles per request).
    """

    def __init__(
        self,
        latency: int = 150,
        page_hit_latency: int = 90,
        banks: int = 8,
        row_bytes: int = 2048,
        bandwidth: int = 4,
        page_policy: str = "open",
        line_size: int = 64,
    ) -> None:
        if latency <= 0 or page_hit_latency <= 0:
            raise ValueError("latencies must be positive")
        if page_hit_latency > latency:
            raise ValueError("page_hit_latency cannot exceed closed-page latency")
        if banks <= 0 or bandwidth <= 0:
            raise ValueError("banks and bandwidth must be positive")
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.latency = latency
        self.page_hit_latency = page_hit_latency
        self.banks = banks
        self.row_bytes = row_bytes
        self.bandwidth = bandwidth
        self.page_policy = page_policy
        self.line_size = line_size
        self._open_rows = [-1] * banks
        self._channel_free = [0] * bandwidth
        self.accesses = 0
        self.page_hits = 0

    def access(self, line_addr: int, now: int) -> int:
        """Return the absolute cycle at which the line is available."""
        self.accesses += 1
        addr = line_addr * self.line_size
        bank = (addr // self.row_bytes) % self.banks
        row = addr // (self.row_bytes * self.banks)

        # Channel occupancy: claim the earliest-free slot.
        slot = min(range(self.bandwidth), key=self._channel_free.__getitem__)
        start = max(now, self._channel_free[slot])

        if self.page_policy == "open" and self._open_rows[bank] == row:
            latency = self.page_hit_latency
            self.page_hits += 1
        else:
            latency = self.latency
            self._open_rows[bank] = row if self.page_policy == "open" else -1

        done = start + latency
        # A request occupies the channel for the data-burst duration,
        # approximated as a constant four cycles per line.
        self._channel_free[slot] = start + 4
        return done

    def access_line(self, line_addr: int, now: int, is_write: bool = False, is_prefetch: bool = False) -> int:
        """Cache-level interface adapter (writes and reads cost the same)."""
        return self.access(line_addr, now)

    def reset(self) -> None:
        self._open_rows = [-1] * self.banks
        self._channel_free = [0] * self.bandwidth
        self.accesses = 0
        self.page_hits = 0
