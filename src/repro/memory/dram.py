"""Main-memory (DDR-like) timing model.

Models the three externally visible properties the paper's tuning list
includes for the memory system: access latency, bandwidth, and the
organisation's row-buffer behaviour (open-page hits are cheaper than row
conflicts).
"""

from __future__ import annotations


class DramModel:
    """Latency/bandwidth/row-buffer model of main memory.

    - ``latency``: closed-page access latency in core cycles;
    - ``page_hit_latency``: latency when the access hits the currently
      open row of its bank (only with ``page_policy='open'``);
    - ``banks``: row-buffer count (bank interleaved by line address);
    - ``bandwidth``: concurrent in-flight requests (channel occupancy is
      ``1/bandwidth`` cycles per request).
    """

    __slots__ = ("latency", "page_hit_latency", "banks", "row_bytes", "bandwidth",
                 "page_policy", "line_size", "_open_rows", "_channel_free",
                 "accesses", "page_hits", "_open_page", "_row_span",
                 "_lines_per_row")

    def __init__(
        self,
        latency: int = 150,
        page_hit_latency: int = 90,
        banks: int = 8,
        row_bytes: int = 2048,
        bandwidth: int = 4,
        page_policy: str = "open",
        line_size: int = 64,
    ) -> None:
        if latency <= 0 or page_hit_latency <= 0:
            raise ValueError("latencies must be positive")
        if page_hit_latency > latency:
            raise ValueError("page_hit_latency cannot exceed closed-page latency")
        if banks <= 0 or bandwidth <= 0:
            raise ValueError("banks and bandwidth must be positive")
        if page_policy not in ("open", "closed"):
            raise ValueError("page_policy must be 'open' or 'closed'")
        self.latency = latency
        self.page_hit_latency = page_hit_latency
        self.banks = banks
        self.row_bytes = row_bytes
        self.bandwidth = bandwidth
        self.page_policy = page_policy
        self.line_size = line_size
        self._open_rows = [-1] * banks
        self._channel_free = [0] * bandwidth
        self.accesses = 0
        self.page_hits = 0
        self._open_page = page_policy == "open"
        self._row_span = row_bytes * banks
        # When lines tile rows exactly (the practical case), bank/row
        # derive from the line address without the byte multiply.
        self._lines_per_row = row_bytes // line_size if row_bytes % line_size == 0 else 0

    def access_line(self, line_addr: int, now: int, is_write: bool = False, is_prefetch: bool = False) -> int:
        """Cache-level interface: absolute cycle the line is available.

        Reads, writes and prefetches cost the same at this level.
        """
        self.accesses += 1
        lines_per_row = self._lines_per_row
        if lines_per_row:
            row_index = line_addr // lines_per_row
            bank = row_index % self.banks
            row = row_index // self.banks
        else:
            addr = line_addr * self.line_size
            bank = (addr // self.row_bytes) % self.banks
            row = addr // self._row_span

        # Channel occupancy: claim the earliest-free slot.
        channel_free = self._channel_free
        slot = 0
        slot_free = channel_free[0]
        for i in range(1, self.bandwidth):
            if channel_free[i] < slot_free:
                slot_free = channel_free[i]
                slot = i
        start = now if now > slot_free else slot_free

        if self._open_page and self._open_rows[bank] == row:
            latency = self.page_hit_latency
            self.page_hits += 1
        else:
            latency = self.latency
            self._open_rows[bank] = row if self._open_page else -1

        done = start + latency
        # A request occupies the channel for the data-burst duration,
        # approximated as a constant four cycles per line.
        channel_free[slot] = start + 4
        return done

    def access(self, line_addr: int, now: int) -> int:
        """Convenience alias of :meth:`access_line` (reads = writes)."""
        return self.access_line(line_addr, now)

    def reset(self) -> None:
        self._open_rows = [-1] * self.banks
        self._channel_free = [0] * self.bandwidth
        self.accesses = 0
        self.page_hits = 0
