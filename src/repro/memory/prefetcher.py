"""Hardware data prefetchers.

§IV-B: "we provide the tuning algorithm with ... configurable prefetching
options including stride and GHB prefetching" (citing Fu et al. for
stride-directed and Nesbit & Smith for global-history-buffer
prefetching). Each prefetcher observes demand accesses and proposes line
addresses to fill; the owning cache schedules the fills.
"""

from __future__ import annotations


class Prefetcher:
    """Observes demand accesses, proposes prefetch line addresses."""

    kind = "abstract"

    #: Whether to train/trigger on hits as well as misses (the paper's
    #: "prefetch after a prefetch hit" boolean shows up here).
    def __init__(self, on_hit: bool = False) -> None:
        self.on_hit = on_hit

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        """Return line addresses to prefetch after this demand access."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class NullPrefetcher(Prefetcher):
    """No prefetching."""

    kind = "none"

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        return []

    def reset(self) -> None:
        pass


class NextLinePrefetcher(Prefetcher):
    """Sequential next-line prefetcher with configurable degree."""

    kind = "nextline"

    def __init__(self, degree: int = 1, on_hit: bool = False) -> None:
        super().__init__(on_hit)
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        if hit and not self.on_hit:
            return []
        return [line_addr + d for d in range(1, self.degree + 1)]

    def reset(self) -> None:
        pass


class StridePrefetcher(Prefetcher):
    """PC-indexed stride prefetcher (Fu/Patel/Janssens style).

    A reference-prediction table keyed by load PC tracks the last line
    address and stride with a 2-bit confidence counter; once confident it
    prefetches ``degree`` strides ahead.
    """

    kind = "stride"

    def __init__(self, table_entries: int = 64, degree: int = 2, on_hit: bool = True) -> None:
        super().__init__(on_hit)
        if table_entries <= 0 or degree <= 0:
            raise ValueError("table_entries and degree must be positive")
        self.table_entries = table_entries
        self.degree = degree
        #: pc-index -> [tag, last_line, stride, confidence]
        self._table: dict = {}

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        idx = (pc >> 2) % self.table_entries
        tag = pc
        entry = self._table.get(idx)
        out: list = []
        if entry is None or entry[0] != tag:
            self._table[idx] = [tag, line_addr, 0, 0]
            return out
        stride = line_addr - entry[1]
        if stride == entry[2] and stride != 0:
            if entry[3] < 3:
                entry[3] += 1
        else:
            entry[3] = entry[3] - 1 if entry[3] > 0 else 0
            if entry[3] == 0:
                entry[2] = stride
        entry[1] = line_addr
        confident = entry[3] >= 2
        if confident and (not hit or self.on_hit) and entry[2] != 0:
            out = [line_addr + entry[2] * d for d in range(1, self.degree + 1)]
        return out

    def reset(self) -> None:
        self._table = {}


class GHBPrefetcher(Prefetcher):
    """Global History Buffer delta-correlation prefetcher (Nesbit & Smith).

    A FIFO of recent miss line addresses plus an index table keyed by the
    last two deltas: on a miss, the last delta pair is looked up and the
    historical successor deltas are replayed ``degree`` deep.
    """

    kind = "ghb"

    def __init__(self, buffer_entries: int = 128, degree: int = 2, on_hit: bool = False) -> None:
        super().__init__(on_hit)
        if buffer_entries < 4 or degree <= 0:
            raise ValueError("buffer_entries must be >= 4 and degree positive")
        self.buffer_entries = buffer_entries
        self.degree = degree
        self._history: list = []
        #: (delta1, delta2) -> list of following deltas (most recent first)
        self._correlation: dict = {}

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        if hit and not self.on_hit:
            return []
        history = self._history
        out: list = []
        if len(history) >= 2:
            d1 = history[-1] - history[-2]
            d2 = line_addr - history[-1]
            if len(history) >= 3:
                d0 = history[-2] - history[-3]
                key_prev = (d0, d1)
                followers = self._correlation.setdefault(key_prev, [])
                followers.insert(0, d2)
                del followers[8:]
            predicted = self._correlation.get((d1, d2))
            if predicted:
                addr = line_addr
                for delta in predicted[: self.degree]:
                    addr += delta
                    out.append(addr)
        history.append(line_addr)
        if len(history) > self.buffer_entries:
            del history[0]
        return out

    def reset(self) -> None:
        self._history = []
        self._correlation = {}


class StreamPrefetcher(Prefetcher):
    """Next-N-line prefetcher behind a stream-detection filter.

    Plain next-line prefetching pollutes the cache on irregular access
    patterns; the classic fix (Jouppi-style stream buffers) is an
    *allocation filter*: a small table of candidate streams, each keyed
    by the line it expects next. Only when an access confirms a
    candidate (the second consecutive ascending line) does the stream
    issue ``degree`` next-line prefetches; unconfirmed candidates age
    out of the FIFO-managed table. ``table_entries`` bounds the number
    of streams tracked concurrently.
    """

    kind = "stream"

    def __init__(self, table_entries: int = 8, degree: int = 2,
                 on_hit: bool = False) -> None:
        super().__init__(on_hit)
        if table_entries <= 0 or degree <= 0:
            raise ValueError("table_entries and degree must be positive")
        self.table_entries = table_entries
        self.degree = degree
        #: Set of expected-next lines, one per tracked stream; the
        #: insertion-ordered dict doubles as the FIFO for candidate
        #: replacement (values are a meaningless sentinel).
        self._streams: dict = {}

    def observe(self, line_addr: int, pc: int, hit: bool) -> list:
        if hit and not self.on_hit:
            return []
        streams = self._streams
        out: list = []
        if streams.pop(line_addr, None) is not None:
            # The access a stream predicted: the stream is confirmed —
            # advance it and run ``degree`` lines ahead.
            streams[line_addr + 1] = True
            out = [line_addr + d for d in range(1, self.degree + 1)]
        else:
            # New candidate stream anchored here; evict the oldest
            # candidate when the table is full.
            if len(streams) >= self.table_entries:
                del streams[next(iter(streams))]
            streams[line_addr + 1] = True
        return out

    def reset(self) -> None:
        self._streams = {}


def build_prefetcher(
    kind: str,
    degree: int = 2,
    table_entries: int = 64,
    on_hit: bool = False,
) -> Prefetcher:
    """Instantiate a prefetcher by registry ``kind``.

    Dispatches through the component registry
    (:mod:`repro.components`): the arguments are presented under their
    :class:`~repro.core.config.CacheConfig` field names and each
    component's declared knob binding selects what its constructor
    consumes (the GHB's ``buffer_entries`` aliases ``table_entries``).
    """
    from repro.components import build_component

    return build_component("prefetcher", kind, {
        "prefetch_degree": degree,
        "prefetch_table_entries": table_entries,
        "prefetch_on_hit": on_hit,
    })
