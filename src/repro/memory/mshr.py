"""Miss-status holding registers.

MSHRs bound the number of outstanding misses a cache can sustain, which
caps memory-level parallelism; the bandwidth micro-benchmarks
(ML2_BW_*) are sensitive to exactly this limit, making MSHR count one of
the tunable parameters.
"""

from __future__ import annotations

import heapq


class MSHRFile:
    """Tracks outstanding line fills as (completion_time, line_addr).

    ``allocate`` returns the time at which the new miss may *start* its
    downstream access: immediately if a register is free, otherwise when
    the earliest outstanding fill completes. ``lookup`` implements miss
    merging — a second miss to an in-flight line shares its completion.
    """

    __slots__ = ("entries", "_heap", "_inflight")

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._heap: list = []
        self._inflight: dict = {}

    def _expire(self, now: int) -> None:
        heap = self._heap
        if not heap or heap[0][0] > now:
            return
        inflight = self._inflight
        while heap and heap[0][0] <= now:
            _, line = heapq.heappop(heap)
            # Only drop the mapping if it still refers to this fill.
            done = inflight.get(line)
            if done is not None and done <= now:
                del inflight[line]

    def lookup(self, line_addr: int, now: int) -> int:
        """Completion time of an in-flight fill of ``line_addr``, or -1."""
        inflight = self._inflight
        if not inflight:
            return -1
        self._expire(now)
        return inflight.get(line_addr, -1)

    def allocate(self, line_addr: int, now: int) -> int:
        """Reserve a register; returns the earliest cycle the miss may issue."""
        self._expire(now)
        if len(self._inflight) < self.entries:
            return now
        # Full: wait for the earliest fill to complete.
        earliest = self._heap[0][0]
        self._expire(earliest)
        return max(now, earliest)

    def record(self, line_addr: int, completion: int) -> None:
        """Register the fill completion time of an allocated miss."""
        self._inflight[line_addr] = completion
        heapq.heappush(self._heap, (completion, line_addr))

    @property
    def outstanding(self) -> int:
        return len(self._inflight)

    def reset(self) -> None:
        # In place: cache fast-path closures alias these containers.
        self._heap.clear()
        self._inflight.clear()
