"""Cache set-index hashing functions.

The paper explicitly lists address hashing among the undisclosed
micro-architectural choices it adds to Sniper and exposes to the tuner:
"we implement mask-based, xor-based, and Mersenne modulo address hashing
for cache indexing" (§IV-A, citing Kharbutli et al. for prime-modulo
indexing). Conflict-miss kernels (MC/MCS) distinguish these empirically.
"""

from __future__ import annotations


class AddressHash:
    """Maps a line address (byte address / line size) to a set index."""

    kind = "abstract"

    __slots__ = ("n_sets",)

    def __init__(self, n_sets: int) -> None:
        if n_sets <= 0:
            raise ValueError("n_sets must be positive")
        self.n_sets = n_sets

    def index(self, line_addr: int) -> int:
        raise NotImplementedError

    @property
    def effective_sets(self) -> int:
        """Number of sets the hash can actually produce."""
        return self.n_sets


class MaskHash(AddressHash):
    """Plain modulo of the line address — the textbook power-of-two mask."""

    kind = "mask"

    __slots__ = ("_pow2", "_mask")

    def __init__(self, n_sets: int) -> None:
        super().__init__(n_sets)
        self._pow2 = n_sets & (n_sets - 1) == 0
        self._mask = n_sets - 1

    def index(self, line_addr: int) -> int:
        if self._pow2:
            return line_addr & self._mask
        return line_addr % self.n_sets


class XorHash(AddressHash):
    """XOR-folds upper address bits into the index.

    Spreads power-of-two strided streams across sets, removing the
    pathological conflict behaviour mask indexing shows on them.
    """

    kind = "xor"

    __slots__ = ("_mask", "_bits")

    def __init__(self, n_sets: int) -> None:
        super().__init__(n_sets)
        if n_sets & (n_sets - 1):
            raise ValueError("xor hashing requires a power-of-two set count")
        self._mask = n_sets - 1
        self._bits = n_sets.bit_length() - 1

    def index(self, line_addr: int) -> int:
        bits = self._bits
        folded = line_addr ^ (line_addr >> bits) ^ (line_addr >> (2 * bits))
        return folded & self._mask


def _largest_mersenne_at_most(n: int) -> int:
    """Largest Mersenne prime (2^k - 1, k prime exponent) <= n."""
    mersenne_primes = [3, 7, 31, 127, 8191, 131071, 524287]
    candidates = [p for p in mersenne_primes if p <= n]
    if not candidates:
        raise ValueError(f"no Mersenne prime <= {n}; cache too small for mersenne hashing")
    return candidates[-1]


class MersenneHash(AddressHash):
    """Prime-modulo indexing with a Mersenne prime (Kharbutli et al.).

    Uses the largest Mersenne prime not exceeding the set count, so a few
    sets go unused — the standard trade-off of prime-based indexing, which
    buys near-uniform distribution of arbitrary strides. The ``mod (2^k -
    1)`` computation is what makes it implementable in hardware.
    """

    kind = "mersenne"

    __slots__ = ("prime",)

    def __init__(self, n_sets: int) -> None:
        super().__init__(n_sets)
        self.prime = _largest_mersenne_at_most(n_sets)

    def index(self, line_addr: int) -> int:
        return line_addr % self.prime

    @property
    def effective_sets(self) -> int:
        return self.prime


class SkewHash(AddressHash):
    """Skewed indexing function (Seznec's skewed-associative caches).

    Applies the inter-bank shuffle Seznec builds skewed caches from: the
    tag bits above the index are folded in through rotate-and-XOR steps,
    so two addresses conflicting under mask indexing almost never
    conflict after skewing — a single-index-per-set rendition of the
    skewed-associative idea, strictly stronger mixing than
    :class:`XorHash` on power-of-two *and* near-power-of-two strides.
    """

    kind = "skew"

    __slots__ = ("_mask", "_bits")

    def __init__(self, n_sets: int) -> None:
        super().__init__(n_sets)
        if n_sets < 2 or n_sets & (n_sets - 1):
            raise ValueError(
                "skew hashing requires a power-of-two set count >= 2, "
                f"got {n_sets}"
            )
        self._mask = n_sets - 1
        self._bits = n_sets.bit_length() - 1

    def index(self, line_addr: int) -> int:
        bits = self._bits
        mask = self._mask
        index = line_addr & mask
        tag = line_addr >> bits
        while tag:
            # Rotate the partial index one bit right, then fold the next
            # tag segment in — each segment lands on a rotated basis.
            index = ((index >> 1) | ((index & 1) << (bits - 1))) ^ (tag & mask)
            tag >>= bits
        return index & mask


def build_hash(kind: str, n_sets: int) -> AddressHash:
    """Instantiate an address hash by registry ``kind``.

    Dispatches through the component registry
    (:mod:`repro.components`); ``n_sets`` is structural (cache geometry,
    not a tunable knob), so it is passed through to the constructor.
    """
    from repro.components import build_component

    return build_component("hashing", kind, {}, n_sets=n_sets)
