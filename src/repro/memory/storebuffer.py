"""Store buffer with forwarding and optional line coalescing.

Stores retire into the buffer and drain to the L1D in order; a full
buffer back-pressures the core. Loads snoop the buffer for
store-to-load forwarding — the behaviour the load/store-dependence
micro-benchmarks stress. Line coalescing (merging a store into an
already-buffered line) is one of the undisclosed behaviours the
ground-truth hardware enables.
"""

from __future__ import annotations


class StoreBuffer:
    """In-order draining store buffer.

    ``push`` returns the cycle at which the store can occupy a buffer slot
    (its visible issue stall); the actual L1D write is scheduled through
    the ``write`` callable handed in by the hierarchy.
    """

    def __init__(self, entries: int, coalescing: bool = False, forward_latency: int = 1) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if forward_latency < 0:
            raise ValueError("forward_latency must be non-negative")
        self.entries = entries
        self.coalescing = coalescing
        self.forward_latency = forward_latency
        #: FIFO of (line_addr, drain_completion_cycle).
        self._fifo: list = []
        #: line_addr -> newest drain completion (forwarding snoop).
        self._by_line: dict = {}
        self._last_drain_done = 0
        self.pushes = 0
        self.coalesced = 0
        self.full_stalls = 0
        self.forwards = 0

    def _expire(self, now: int) -> None:
        fifo = self._fifo
        while fifo and fifo[0][1] <= now:
            line_addr, done = fifo.pop(0)
            if self._by_line.get(line_addr) == done:
                del self._by_line[line_addr]

    def push(self, line_addr: int, now: int, write) -> int:
        """Buffer a store; returns the cycle the core may proceed.

        ``write(line_addr, start_cycle) -> completion_cycle`` performs the
        L1D write access when the store drains.
        """
        self.pushes += 1
        self._expire(now)

        if self.coalescing and line_addr in self._by_line:
            self.coalesced += 1
            return now

        issue = now
        if len(self._fifo) >= self.entries:
            # Stall until the oldest buffered store drains.
            oldest_done = self._fifo[0][1]
            self.full_stalls += 1
            issue = max(now, oldest_done)
            self._expire(issue)

        drain_start = max(issue, self._last_drain_done)
        done = write(line_addr, drain_start)
        self._last_drain_done = done
        self._fifo.append((line_addr, done))
        self._by_line[line_addr] = done
        return issue

    def forward(self, line_addr: int, now: int) -> int:
        """Forwarding snoop for a load: cycle data is available, or -1."""
        self._expire(now)
        if line_addr in self._by_line:
            self.forwards += 1
            return now + self.forward_latency
        return -1

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def reset(self) -> None:
        self._fifo = []
        self._by_line = {}
        self._last_drain_done = 0
        self.pushes = 0
        self.coalesced = 0
        self.full_stalls = 0
        self.forwards = 0
