"""Store buffer with forwarding and optional line coalescing.

Stores retire into the buffer and drain to the L1D in order; a full
buffer back-pressures the core. Loads snoop the buffer for
store-to-load forwarding — the behaviour the load/store-dependence
micro-benchmarks stress. Line coalescing (merging a store into an
already-buffered line) is one of the undisclosed behaviours the
ground-truth hardware enables.
"""

from __future__ import annotations

from collections import deque


class StoreBuffer:
    """In-order draining store buffer.

    ``push`` returns the cycle at which the store can occupy a buffer slot
    (its visible issue stall); the actual L1D write is scheduled through
    the ``write`` callable handed in by the hierarchy.
    """

    __slots__ = ("entries", "coalescing", "forward_latency", "_fifo", "_by_line",
                 "_last_drain_done", "pushes", "coalesced", "full_stalls", "forwards")

    def __init__(self, entries: int, coalescing: bool = False, forward_latency: int = 1) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if forward_latency < 0:
            raise ValueError("forward_latency must be non-negative")
        self.entries = entries
        self.coalescing = coalescing
        self.forward_latency = forward_latency
        #: FIFO of (line_addr, drain_completion_cycle).
        self._fifo: deque = deque()
        #: line_addr -> newest drain completion (forwarding snoop).
        self._by_line: dict = {}
        self._last_drain_done = 0
        self.pushes = 0
        self.coalesced = 0
        self.full_stalls = 0
        self.forwards = 0

    def _expire(self, now: int) -> None:
        fifo = self._fifo
        if not fifo or fifo[0][1] > now:
            return
        by_line = self._by_line
        while fifo and fifo[0][1] <= now:
            line_addr, done = fifo.popleft()
            if by_line.get(line_addr) == done:
                del by_line[line_addr]

    def push(self, line_addr: int, now: int, write) -> int:
        """Buffer a store; returns the cycle the core may proceed.

        ``write(line_addr, start_cycle) -> completion_cycle`` performs the
        L1D write access when the store drains.
        """
        self.pushes += 1
        fifo = self._fifo
        by_line = self._by_line
        if fifo and fifo[0][1] <= now:
            self._expire(now)

        if self.coalescing and line_addr in by_line:
            self.coalesced += 1
            return now

        issue = now
        if len(fifo) >= self.entries:
            # Stall until the oldest buffered store drains.
            oldest_done = fifo[0][1]
            self.full_stalls += 1
            if oldest_done > issue:
                issue = oldest_done
            self._expire(issue)

        last = self._last_drain_done
        done = write(line_addr, issue if issue > last else last)
        self._last_drain_done = done
        fifo.append((line_addr, done))
        by_line[line_addr] = done
        return issue

    def forward(self, line_addr: int, now: int) -> int:
        """Forwarding snoop for a load: cycle data is available, or -1."""
        if not self._by_line:
            # Empty buffer (no line can be newer in the FIFO than in the
            # snoop map, so an empty map means an empty FIFO): nothing
            # to expire, nothing to forward.
            return -1
        self._expire(now)
        if line_addr in self._by_line:
            self.forwards += 1
            return now + self.forward_latency
        return -1

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def reset(self) -> None:
        # In place: the hierarchy fast-path closure aliases these.
        self._fifo.clear()
        self._by_line.clear()
        self._last_drain_done = 0
        self.pushes = 0
        self.coalesced = 0
        self.full_stalls = 0
        self.forwards = 0
