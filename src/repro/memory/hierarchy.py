"""Full memory hierarchy assembled from a :class:`SimConfig`.

L1I and L1D in front of a unified L2 backed by DRAM, plus the store
buffer. The optional ``effects`` hook is how the "real hardware" board
injects behaviours the simulator model does not have (TLB walks, OS page
warm-up) — see :mod:`repro.hardware.effects`.
"""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.prefetcher import build_prefetcher
from repro.memory.storebuffer import StoreBuffer


def _build_cache(name: str, cfg, next_level) -> Cache:
    prefetcher = build_prefetcher(
        cfg.prefetcher,
        degree=cfg.prefetch_degree,
        table_entries=cfg.prefetch_table_entries,
        on_hit=cfg.prefetch_on_hit,
    )
    return Cache(
        name=name,
        size=cfg.size,
        assoc=cfg.assoc,
        line_size=cfg.line_size,
        hit_latency=cfg.hit_latency,
        serial_tag_data=cfg.serial_tag_data,
        ports=cfg.ports,
        mshr_entries=cfg.mshr_entries,
        hashing=cfg.hashing,
        replacement=cfg.replacement,
        victim_entries=cfg.victim_entries,
        prefetcher=prefetcher,
        next_level=next_level,
    )


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM + store buffer."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        line_sizes = {config.l1i.line_size, config.l1d.line_size, config.l2.line_size}
        if len(line_sizes) != 1:
            raise ValueError(f"all cache levels must share one line size, got {line_sizes}")
        self.line_size = config.l1i.line_size
        self.effects = effects

        mem = config.memsys
        self.dram = DramModel(
            latency=mem.dram_latency,
            page_hit_latency=mem.dram_page_hit_latency,
            banks=mem.dram_banks,
            bandwidth=mem.dram_bandwidth,
            page_policy=mem.dram_page_policy,
            line_size=self.line_size,
        )
        self.l2 = _build_cache("L2", config.l2, self.dram)
        self.l1i = _build_cache("L1I", config.l1i, self.l2)
        self.l1d = _build_cache("L1D", config.l1d, self.l2)
        self.store_buffer = StoreBuffer(
            entries=mem.store_buffer_entries,
            coalescing=mem.store_coalescing,
            forward_latency=mem.store_forward_latency,
        )
        self._l1d_write = self._make_l1d_write()

    def _make_l1d_write(self):
        l1d = self.l1d

        def write(line_addr: int, start: int) -> int:
            return l1d.access_line(line_addr, start, is_write=True, is_prefetch=False)

        return write

    # ------------------------------------------------------------------
    def ifetch(self, pc: int, now: int) -> int:
        """Fetch the instruction line holding ``pc``; returns ready cycle."""
        line_addr = pc // self.line_size
        done = self.l1i.access_line(line_addr, now, is_write=False, pc=pc)
        if self.effects is not None:
            done += self.effects.ifetch_extra(pc, now)
        return done

    def load(self, addr: int, pc: int, now: int) -> int:
        """Load from ``addr``; returns the data-ready cycle."""
        line_addr = addr // self.line_size
        forwarded = self.store_buffer.forward(line_addr, now)
        if forwarded >= 0:
            return forwarded
        if self.effects is not None:
            override = self.effects.load_override(addr, now)
            if override >= 0:
                # Zero-page service: the OS backs the untouched page with
                # the shared zero page, so the access behaves like a hit.
                return now + override
        done = self.l1d.access_line(line_addr, now, is_write=False, pc=pc)
        if self.effects is not None:
            done += self.effects.load_extra(addr, now)
        return done

    def store(self, addr: int, pc: int, now: int) -> int:
        """Issue a store; returns the cycle the core may move on."""
        line_addr = addr // self.line_size
        issue = self.store_buffer.push(line_addr, now, self._l1d_write)
        if self.effects is not None:
            issue += self.effects.store_extra(addr, now)
        return issue

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.dram.reset()
        self.store_buffer.reset()
        if self.effects is not None:
            self.effects.reset()
