"""Full memory hierarchy assembled from a :class:`SimConfig`.

L1I and L1D in front of a unified L2 backed by DRAM, plus the store
buffer. The optional ``effects`` hook is how the "real hardware" board
injects behaviours the simulator model does not have (TLB walks, OS page
warm-up) — see :mod:`repro.hardware.effects`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.memory.prefetcher import build_prefetcher
from repro.memory.storebuffer import StoreBuffer

if TYPE_CHECKING:  # annotation-only: keeps repro.memory import-cycle-free
    from repro.core.config import SimConfig


def _build_cache(name: str, cfg, next_level) -> Cache:
    prefetcher = build_prefetcher(
        cfg.prefetcher,
        degree=cfg.prefetch_degree,
        table_entries=cfg.prefetch_table_entries,
        on_hit=cfg.prefetch_on_hit,
    )
    return Cache(
        name=name,
        size=cfg.size,
        assoc=cfg.assoc,
        line_size=cfg.line_size,
        hit_latency=cfg.hit_latency,
        serial_tag_data=cfg.serial_tag_data,
        ports=cfg.ports,
        mshr_entries=cfg.mshr_entries,
        hashing=cfg.hashing,
        replacement=cfg.replacement,
        victim_entries=cfg.victim_entries,
        prefetcher=prefetcher,
        next_level=next_level,
    )


class MemoryHierarchy:
    """L1I + L1D + unified L2 + DRAM + store buffer."""

    def __init__(self, config: SimConfig, effects=None) -> None:
        line_sizes = {config.l1i.line_size, config.l1d.line_size, config.l2.line_size}
        if len(line_sizes) != 1:
            raise ValueError(f"all cache levels must share one line size, got {line_sizes}")
        self.line_size = config.l1i.line_size
        self.effects = effects

        mem = config.memsys
        self.dram = DramModel(
            latency=mem.dram_latency,
            page_hit_latency=mem.dram_page_hit_latency,
            banks=mem.dram_banks,
            bandwidth=mem.dram_bandwidth,
            page_policy=mem.dram_page_policy,
            line_size=self.line_size,
        )
        self.l2 = _build_cache("L2", config.l2, self.dram)
        self.l1i = _build_cache("L1I", config.l1i, self.l2)
        self.l1d = _build_cache("L1D", config.l1d, self.l2)
        self.store_buffer = StoreBuffer(
            entries=mem.store_buffer_entries,
            coalescing=mem.store_coalescing,
            forward_latency=mem.store_forward_latency,
        )
        self._l1d_write = self._make_l1d_write()
        if effects is None:
            # The pure-simulator case (every tuning trial): shadow the
            # effect-aware methods with closures that skip the hook
            # checks and bind the per-level access functions once.
            self._bind_fast_paths()

    def _make_l1d_write(self):
        l1d = self.l1d

        def write(line_addr: int, start: int) -> int:
            return l1d.access_line(line_addr, start, True, False)

        return write

    def _bind_fast_paths(self) -> None:
        """Install effect-free ``ifetch``/``load``/``store`` instance shims.

        Timing-identical to the method path with ``effects=None``; the
        closures only pre-resolve the attribute chains the hot loop would
        otherwise walk on every dynamic instruction.
        """
        line_size = self.line_size
        l1i_access = self.l1i.access_line
        l1d_access = self.l1d.access_line
        sb = self.store_buffer
        forward = sb.forward
        sb_fifo = sb._fifo
        sb_by_line = sb._by_line
        sb_entries = sb.entries
        sb_coalescing = sb.coalescing
        sb_expire = sb._expire

        def ifetch(pc: int, now: int) -> int:
            return l1i_access(pc // line_size, now, False, False, pc)

        def load(addr: int, pc: int, now: int) -> int:
            line_addr = addr // line_size
            if sb_by_line:
                # Store-buffer snoop only when something is buffered (an
                # empty snoop map implies an empty FIFO — see forward()).
                forwarded = forward(line_addr, now)
                if forwarded >= 0:
                    return forwarded
            return l1d_access(line_addr, now, False, False, pc)

        def store(addr: int, pc: int, now: int) -> int:
            # Inlined StoreBuffer.push with the L1D write bound directly
            # (state-identical to push(); spares two calls per store).
            line_addr = addr // line_size
            sb.pushes += 1
            if sb_fifo and sb_fifo[0][1] <= now:
                sb_expire(now)
            if sb_coalescing and line_addr in sb_by_line:
                sb.coalesced += 1
                return now
            issue = now
            if len(sb_fifo) >= sb_entries:
                # Stall until the oldest buffered store drains.
                oldest_done = sb_fifo[0][1]
                sb.full_stalls += 1
                if oldest_done > issue:
                    issue = oldest_done
                sb_expire(issue)
            last = sb._last_drain_done
            done = l1d_access(line_addr, issue if issue > last else last,
                              True, False)
            sb._last_drain_done = done
            sb_fifo.append((line_addr, done))
            sb_by_line[line_addr] = done
            return issue

        self.ifetch = ifetch
        # The effect-free instruction fetch IS a plain L1I access; bind
        # it with no wrapper at all (same signature as access_line).
        self.ifetch_line = l1i_access
        self.load = load
        self.store = store

    # ------------------------------------------------------------------
    def ifetch(self, pc: int, now: int) -> int:
        """Fetch the instruction line holding ``pc``; returns ready cycle."""
        line_addr = pc // self.line_size
        done = self.l1i.access_line(line_addr, now, is_write=False, pc=pc)
        if self.effects is not None:
            done += self.effects.ifetch_extra(pc, now)
        return done

    def ifetch_line(
        self,
        line_addr: int,
        now: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        pc: int = 0,
    ) -> int:
        """Like :meth:`ifetch` with the L1I line address precomputed.

        The core loops already derive the fetch line per instruction;
        this variant spares the hot path a second division and, in the
        effect-free case, binds straight to the L1I's ``access_line``
        (whose signature it mirrors — all arguments are forwarded, so
        both forms behave identically). All cache levels share one line
        size, so the caller's line is the L1I's.
        """
        done = self.l1i.access_line(line_addr, now, is_write, is_prefetch, pc)
        if self.effects is not None:
            done += self.effects.ifetch_extra(pc, now)
        return done

    def load(self, addr: int, pc: int, now: int) -> int:
        """Load from ``addr``; returns the data-ready cycle."""
        line_addr = addr // self.line_size
        forwarded = self.store_buffer.forward(line_addr, now)
        if forwarded >= 0:
            return forwarded
        if self.effects is not None:
            override = self.effects.load_override(addr, now)
            if override >= 0:
                # Zero-page service: the OS backs the untouched page with
                # the shared zero page, so the access behaves like a hit.
                return now + override
        done = self.l1d.access_line(line_addr, now, is_write=False, pc=pc)
        if self.effects is not None:
            done += self.effects.load_extra(addr, now)
        return done

    def store(self, addr: int, pc: int, now: int) -> int:
        """Issue a store; returns the cycle the core may move on."""
        line_addr = addr // self.line_size
        issue = self.store_buffer.push(line_addr, now, self._l1d_write)
        if self.effects is not None:
            issue += self.effects.store_extra(addr, now)
        return issue

    # ------------------------------------------------------------------
    def reset(self) -> None:
        # Downstream first: each cache's reset rebinds its fast access
        # path, and the L1 paths capture the L2's current one.
        self.dram.reset()
        self.l2.reset()
        self.l1i.reset()
        self.l1d.reset()
        self.store_buffer.reset()
        self._l1d_write = self._make_l1d_write()
        if self.effects is not None:
            self.effects.reset()
        else:
            self._bind_fast_paths()
