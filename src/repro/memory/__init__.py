"""Memory hierarchy: caches, prefetchers, store buffer, DRAM.

Implements the cache-side configuration space the paper tunes: address
hashing (mask, xor-fold, Mersenne-prime modulo — §IV-A), serial vs.
parallel tag/data access, victim cache entries, MSHR counts, cache
bandwidth, prefetcher selection (none / next-line / stride / GHB) and
per-prefetcher parameters, plus main-memory latency and bandwidth.
"""

from repro.memory.hashing import (
    AddressHash,
    MaskHash,
    MersenneHash,
    SkewHash,
    XorHash,
    build_hash,
)
from repro.memory.replacement import (
    ClockPLRU,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    build_replacement,
)
from repro.memory.cache import Cache, CacheStats
from repro.memory.victim import VictimCache
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import (
    GHBPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    Prefetcher,
    StreamPrefetcher,
    StridePrefetcher,
    build_prefetcher,
)
from repro.memory.storebuffer import StoreBuffer
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "AddressHash",
    "MaskHash",
    "XorHash",
    "MersenneHash",
    "SkewHash",
    "build_hash",
    "ReplacementPolicy",
    "LRUPolicy",
    "ClockPLRU",
    "RandomPolicy",
    "SRRIPPolicy",
    "build_replacement",
    "Cache",
    "CacheStats",
    "VictimCache",
    "MSHRFile",
    "Prefetcher",
    "NullPrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "GHBPrefetcher",
    "StreamPrefetcher",
    "build_prefetcher",
    "StoreBuffer",
    "DramModel",
    "MemoryHierarchy",
]
