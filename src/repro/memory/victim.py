"""Victim cache.

A small fully-associative buffer holding recently evicted L1 lines;
"victim cache entries" is one of the tunable parameters listed in §IV-A.
Conflict-miss kernels (MC/MCS) are the workloads that expose whether the
modelled processor has one.
"""

from __future__ import annotations


class VictimCache:
    """Fully-associative FIFO buffer of evicted lines."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        #: line_addr -> dirty flag, insertion-ordered (oldest first).
        self._lines: dict = {}
        self.hits = 0
        self.misses = 0

    def probe(self, line_addr: int) -> bool:
        """Check for ``line_addr`` and remove it on hit (swap into L1)."""
        if line_addr in self._lines:
            del self._lines[line_addr]
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line_addr: int, dirty: bool) -> tuple:
        """Insert an evicted L1 line.

        Returns ``(evicted_line_addr, dirty)`` when the insertion pushes
        out the oldest victim, else ``(None, False)``.
        """
        evicted = (None, False)
        if line_addr in self._lines:
            self._lines[line_addr] = self._lines[line_addr] or dirty
            return evicted
        if len(self._lines) >= self.entries:
            old_addr = next(iter(self._lines))
            evicted = (old_addr, self._lines.pop(old_addr))
        self._lines[line_addr] = dirty
        return evicted

    def __len__(self) -> int:
        return len(self._lines)

    def reset(self) -> None:
        self._lines = {}
        self.hits = 0
        self.misses = 0
