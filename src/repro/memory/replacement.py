"""Replacement policies.

Policies operate on the per-set tag dictionaries maintained by
:class:`repro.memory.cache.Cache`. A set is a ``dict`` whose insertion
order the cache keeps as recency order (oldest first), which gives LRU
for free and provides the scan order for the clock policy.
"""

from __future__ import annotations

import random


class ReplacementPolicy:
    """Chooses an eviction victim among the tags of a full set."""

    kind = "abstract"

    def on_hit(self, entries: dict, tag: int) -> None:
        """Update recency state after a hit on ``tag``."""
        raise NotImplementedError

    def choose_victim(self, entries: dict) -> int:
        """Return the tag to evict from the full set ``entries``."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via dict insertion order."""

    kind = "lru"

    def on_hit(self, entries: dict, tag: int) -> None:
        line = entries.pop(tag)
        entries[tag] = line

    def choose_victim(self, entries: dict) -> int:
        return next(iter(entries))


class ClockPLRU(ReplacementPolicy):
    """Pseudo-LRU approximated with a second-chance (clock) scheme.

    Each line carries a reference bit (set on hit). The victim is the
    first line, in insertion order, whose bit is clear; bits are cleared
    as the scan passes. This is a standard single-bit approximation of
    tree-PLRU behaviour and, like real PLRU, can evict a recently used
    line that true LRU would keep.
    """

    kind = "plru"

    def on_hit(self, entries: dict, tag: int) -> None:
        entries[tag].referenced = True

    def choose_victim(self, entries: dict) -> int:
        # Up to two passes: the first pass may clear every bit.
        for _ in range(2):
            for tag, line in entries.items():
                if line.referenced:
                    line.referenced = False
                else:
                    return tag
        return next(iter(entries))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (seeded; many embedded L2s ship this)."""

    kind = "random"

    def __init__(self, seed: int = 0xCAC4E) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, entries: dict, tag: int) -> None:
        pass

    def choose_victim(self, entries: dict) -> int:
        keys = list(entries)
        return keys[self._rng.randrange(len(keys))]


_POLICIES = {"lru": LRUPolicy, "plru": ClockPLRU, "random": RandomPolicy}


def build_replacement(kind: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry ``kind``."""
    try:
        cls = _POLICIES[kind]
    except KeyError:
        raise ValueError(f"unknown replacement {kind!r}; choose from {sorted(_POLICIES)}") from None
    return cls()
