"""Replacement policies.

Policies operate on the per-set tag dictionaries maintained by
:class:`repro.memory.cache.Cache`. A set is a ``dict`` whose insertion
order the cache keeps as recency order (oldest first), which gives LRU
for free and provides the scan order for the clock policy.
"""

from __future__ import annotations

import random


class ReplacementPolicy:
    """Chooses an eviction victim among the tags of a full set."""

    kind = "abstract"

    def on_hit(self, entries: dict, tag: int) -> None:
        """Update recency state after a hit on ``tag``."""
        raise NotImplementedError

    def choose_victim(self, entries: dict) -> int:
        """Return the tag to evict from the full set ``entries``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget per-line state (most policies keep none).

        Deliberately *not* reseeding :class:`RandomPolicy`'s RNG: resets
        never re-randomised it before this hook existed, and the golden
        stats pin that behaviour.
        """


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via dict insertion order."""

    kind = "lru"

    def on_hit(self, entries: dict, tag: int) -> None:
        line = entries.pop(tag)
        entries[tag] = line

    def choose_victim(self, entries: dict) -> int:
        return next(iter(entries))


class ClockPLRU(ReplacementPolicy):
    """Pseudo-LRU approximated with a second-chance (clock) scheme.

    Each line carries a reference bit (set on hit). The victim is the
    first line, in insertion order, whose bit is clear; bits are cleared
    as the scan passes. This is a standard single-bit approximation of
    tree-PLRU behaviour and, like real PLRU, can evict a recently used
    line that true LRU would keep.
    """

    kind = "plru"

    def on_hit(self, entries: dict, tag: int) -> None:
        entries[tag].referenced = True

    def choose_victim(self, entries: dict) -> int:
        # Up to two passes: the first pass may clear every bit.
        for _ in range(2):
            for tag, line in entries.items():
                if line.referenced:
                    line.referenced = False
                else:
                    return tag
        return next(iter(entries))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (seeded; many embedded L2s ship this)."""

    kind = "random"

    def __init__(self, seed: int = 0xCAC4E) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, entries: dict, tag: int) -> None:
        pass

    def choose_victim(self, entries: dict) -> int:
        keys = list(entries)
        return keys[self._rng.randrange(len(keys))]


class SRRIPPolicy(ReplacementPolicy):
    """Static Re-Reference Interval Prediction (Jaleel et al., ISCA'10).

    Each line carries a 2-bit re-reference prediction value (RRPV):
    inserted lines predict a *long* interval (RRPV ``2``), hits promote
    to *near-immediate* (``0``), and the victim is the first line — in
    insertion order — predicting a *distant* interval (``3``), ageing
    every line when none does. Scan-resistant where LRU thrashes:
    streaming lines never get promoted and are evicted first.

    Line tags are full line addresses (globally unique across sets), so
    one policy-owned RRPV map serves every set; tags absent from the map
    carry the insertion value, which is how lines installed directly by
    the cache's fill path join the policy without an insertion hook.
    """

    kind = "srrip"

    _MAX_RRPV = 3
    _INSERT_RRPV = 2

    def __init__(self) -> None:
        self._rrpv: dict = {}

    def on_hit(self, entries: dict, tag: int) -> None:
        self._rrpv[tag] = 0

    def choose_victim(self, entries: dict) -> int:
        rrpv = self._rrpv
        insert = self._INSERT_RRPV
        maximum = self._MAX_RRPV
        while True:
            for tag in entries:
                if rrpv.get(tag, insert) >= maximum:
                    rrpv.pop(tag, None)
                    return tag
            for tag in entries:
                rrpv[tag] = rrpv.get(tag, insert) + 1

    def reset(self) -> None:
        self._rrpv = {}


def build_replacement(kind: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry ``kind``.

    Dispatches through the component registry
    (:mod:`repro.components`): the same declaration that builds the
    policy also drives config validation, the tuning space and the CLI.
    """
    from repro.components import build_component

    return build_component("replacement", kind, {})
