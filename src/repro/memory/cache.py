"""Set-associative cache timing model.

One :class:`Cache` instance models one level (L1I, L1D or L2). Timing is
timestamp-based, matching the Sniper philosophy: an access returns the
absolute cycle at which its data is available, accounting for port
bandwidth, serial vs. parallel tag/data access, MSHR occupancy and miss
merging, victim-cache probes, downstream latency, dirty writebacks and
in-flight prefetch fills.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.memory.hashing import AddressHash, MaskHash, build_hash
from repro.memory.mshr import MSHRFile
from repro.memory.prefetcher import NullPrefetcher, Prefetcher
from repro.memory.replacement import LRUPolicy, ReplacementPolicy, build_replacement
from repro.memory.victim import VictimCache


class _Line:
    """Per-line metadata (tag lives as the dict key)."""

    __slots__ = ("dirty", "ready", "referenced", "prefetched")

    def __init__(self, dirty: bool = False, ready: int = 0, prefetched: bool = False) -> None:
        self.dirty = dirty
        #: Absolute cycle at which the fill completes (in-flight lines).
        self.ready = ready
        #: Reference bit for the clock pseudo-LRU policy.
        self.referenced = False
        self.prefetched = prefetched


@dataclass(slots=True)
class CacheStats:
    """Demand-access counters for one cache level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    victim_hits: int = 0
    writebacks: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    late_prefetch_hits: int = 0
    mshr_merges: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of the cache hierarchy.

    Parameters mirror the tunable list of §IV-A: geometry (``size``,
    ``assoc``, ``line_size``), ``hit_latency``, ``serial_tag_data`` (serial
    access adds a cycle to hits but saves tag-array energy — some cores
    ship it), ``ports`` (bandwidth), ``mshr_entries``, address ``hashing``,
    ``replacement`` policy, ``victim_entries`` (0 disables the victim
    buffer) and an attached ``prefetcher``.

    ``next_level`` must expose ``access_line(line_addr, now, is_write,
    is_prefetch) -> completion_cycle`` (another Cache or the DRAM model).
    """

    __slots__ = ("name", "size", "assoc", "line_size", "n_sets", "hit_latency",
                 "serial_tag_data", "ports", "hash", "policy", "victim",
                 "prefetcher", "mshrs", "next_level", "stats", "_sets",
                 "_port_free", "_hit_time", "_tag_time", "_index",
                 "_single_port", "_lru", "_no_prefetch", "access_line")

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        line_size: int = 64,
        hit_latency: int = 2,
        serial_tag_data: bool = False,
        ports: int = 1,
        mshr_entries: int = 4,
        hashing: str = "mask",
        replacement: str = "lru",
        victim_entries: int = 0,
        prefetcher: Prefetcher = None,
        next_level=None,
    ) -> None:
        if size <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("size, assoc and line_size must be positive")
        if size % (assoc * line_size):
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*line_size ({assoc * line_size})"
            )
        if hit_latency <= 0 or ports <= 0:
            raise ValueError("hit_latency and ports must be positive")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size // (assoc * line_size)
        self.hit_latency = hit_latency
        self.serial_tag_data = serial_tag_data
        self.ports = ports
        self.hash: AddressHash = build_hash(hashing, self.n_sets)
        self.policy: ReplacementPolicy = build_replacement(replacement)
        self.victim = VictimCache(victim_entries) if victim_entries else None
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.mshrs = MSHRFile(mshr_entries)
        self.next_level = next_level
        self.stats = CacheStats()
        # Set dicts materialise lazily (most runs touch a fraction of
        # the sets; building hundreds of dicts per run is pure overhead).
        self._sets = [None] * self.n_sets
        self._port_free = [0] * ports
        # Effective latencies: serial tag->data access adds one cycle to
        # hits; the miss determination needs only the tag array.
        self._hit_time = hit_latency + (1 if serial_tag_data else 0)
        self._tag_time = 2 if serial_tag_data else 1
        # Hot-path shortcuts resolved once: the set-index function, the
        # common single-ported geometry, LRU recency maintenance (dict
        # pop/reinsert, inlined to skip a method call per hit) and the
        # no-op prefetcher (skips the observe call entirely).
        self._index = self.hash.index
        self._single_port = ports == 1
        self._lru = isinstance(self.policy, LRUPolicy)
        self._no_prefetch = isinstance(self.prefetcher, NullPrefetcher)
        self._install_access_path()

    # ------------------------------------------------------------------
    def _claim_port(self, now: int) -> int:
        ports = self._port_free
        best = 0
        best_free = ports[0]
        for i in range(1, len(ports)):
            if ports[i] < best_free:
                best_free = ports[i]
                best = i
        start = now if now > best_free else best_free
        ports[best] = start + 1
        return start

    def _fill(self, line_addr: int, ready: int, dirty: bool, prefetched: bool) -> None:
        """Install ``line_addr``; evict (and maybe write back) a victim."""
        idx = self._index(line_addr)
        entries = self._sets[idx]
        if entries is None:
            entries = self._sets[idx] = {}
        existing = entries.get(line_addr)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if ready < existing.ready:
                existing.ready = ready
            return
        if len(entries) >= self.assoc:
            victim_tag = self.policy.choose_victim(entries)
            victim_line = entries.pop(victim_tag)
            self._handle_eviction(victim_tag, victim_line, ready)
        entries[line_addr] = _Line(dirty=dirty, ready=ready, prefetched=prefetched)

    def _handle_eviction(self, line_addr: int, line: _Line, now: int) -> None:
        if self.victim is not None:
            overflow_addr, overflow_dirty = self.victim.insert(line_addr, line.dirty)
            if overflow_addr is not None and overflow_dirty:
                self._writeback(overflow_addr, now)
        elif line.dirty:
            self._writeback(line_addr, now)

    def _writeback(self, line_addr: int, now: int) -> None:
        self.stats.writebacks += 1
        if self.next_level is not None:
            self.next_level.access_line(line_addr, now, True, False)

    # ------------------------------------------------------------------
    def _install_access_path(self) -> None:
        """Bind ``access_line`` to the fastest applicable implementation.

        For the common geometry — single-ported, LRU, victimless, no
        prefetcher — a monomorphic closure with every per-access
        attribute pre-resolved replaces the general method. The closure
        is timing- and stats-identical to :meth:`_access_line_general`
        (whose code paths it specialises); anything fancier falls back
        to the general method. Re-installed by :meth:`reset`, which
        replaces the bound state objects.
        """
        if not (self._single_port and self._lru and self._no_prefetch
                and self.victim is None):
            self.access_line = self._access_line_general
            return

        stats = self.stats
        sets = self._sets
        index = self._index
        # Power-of-two mask indexing (the default) inlines to one AND.
        mask = -1
        if isinstance(self.hash, MaskHash) and self.hash._pow2:
            mask = self.hash._mask
        ports = self._port_free
        hit_time = self._hit_time
        tag_time = self._tag_time
        assoc = self.assoc
        mshrs = self.mshrs
        mshr_entries = mshrs.entries
        mshr_heap = mshrs._heap
        mshr_inflight = mshrs._inflight
        mshr_expire = mshrs._expire
        fill = self._fill
        next_level = self.next_level
        next_access = next_level.access_line if next_level is not None else None
        heappush = heapq.heappush
        line_cls = _Line

        def access_line(
            line_addr: int,
            now: int,
            is_write: bool = False,
            is_prefetch: bool = False,
            pc: int = 0,
        ) -> int:
            """Access one line; returns the absolute data-ready cycle."""
            if not is_prefetch:
                stats.accesses += 1
            free = ports[0]
            start = now if now > free else free
            ports[0] = start + 1

            idx = line_addr & mask if mask >= 0 else index(line_addr)
            entries = sets[idx]
            if entries is None:
                entries = sets[idx] = {}
                line = None
            else:
                line = entries.get(line_addr)

            if line is not None:
                done = start + hit_time
                if line.ready > done:
                    # In-flight line: a delayed hit (merged into the
                    # outstanding miss).
                    done = line.ready
                    if not is_prefetch:
                        if line.prefetched:
                            stats.late_prefetch_hits += 1
                        else:
                            stats.mshr_merges += 1
                if not is_prefetch:
                    stats.hits += 1
                    if line.prefetched:
                        stats.prefetch_hits += 1
                        line.prefetched = False
                # Inlined LRUPolicy.on_hit: move to the recency tail.
                entries[line_addr] = entries.pop(line_addr)
                if is_write:
                    line.dirty = True
                return done

            # -------------------------------------------------- miss path
            tag_done = start + tag_time
            if not is_prefetch:
                stats.misses += 1

            # Inlined MSHRFile lookup + allocate: one expiry sweep serves
            # both (identical state evolution — lookup's sweep is what
            # allocate would repeat at the same cycle).
            if mshr_inflight:
                if mshr_heap[0][0] <= tag_done:
                    mshr_expire(tag_done)
                inflight = mshr_inflight.get(line_addr, -1)
                if inflight >= 0:
                    if not is_prefetch:
                        stats.mshr_merges += 1
                    if is_write:
                        fill(line_addr, inflight, True, False)
                    return tag_done if tag_done > inflight else inflight
                if len(mshr_inflight) < mshr_entries:
                    issue = tag_done
                else:
                    earliest = mshr_heap[0][0]
                    mshr_expire(earliest)
                    issue = tag_done if tag_done > earliest else earliest
            else:
                issue = tag_done

            if next_access is not None:
                done = next_access(line_addr, issue, False, is_prefetch)
            else:
                done = issue  # no backing level configured (unit tests)
            # Inlined MSHRFile.record.
            mshr_inflight[line_addr] = done
            heappush(mshr_heap, (done, line_addr))

            # Inlined _fill for the victimless-LRU fast path.
            existing = entries.get(line_addr)
            if existing is not None:
                existing.dirty = existing.dirty or is_write
                if done < existing.ready:
                    existing.ready = done
            else:
                if len(entries) >= assoc:
                    victim_tag = next(iter(entries))  # LRU victim
                    victim_line = entries.pop(victim_tag)
                    if victim_line.dirty:
                        # Inlined _writeback.
                        stats.writebacks += 1
                        if next_access is not None:
                            next_access(victim_tag, done, True, False)
                entries[line_addr] = line_cls(is_write, done, is_prefetch)
            return done

        self.access_line = access_line

    def _access_line_general(
        self,
        line_addr: int,
        now: int,
        is_write: bool = False,
        is_prefetch: bool = False,
        pc: int = 0,
    ) -> int:
        """Access one line; returns the absolute data-ready cycle."""
        stats = self.stats
        if not is_prefetch:
            stats.accesses += 1
        if self._single_port:
            # Inlined single-port claim (the overwhelmingly common
            # geometry): same arithmetic as _claim_port for one port.
            ports = self._port_free
            free = ports[0]
            start = now if now > free else free
            ports[0] = start + 1
        else:
            start = self._claim_port(now)

        idx = self._index(line_addr)
        entries = self._sets[idx]
        if entries is None:
            entries = self._sets[idx] = {}
            line = None
        else:
            line = entries.get(line_addr)

        if line is not None:
            done = start + self._hit_time
            if line.ready > done:
                # In-flight line: a delayed hit. A demand fill in flight
                # means this access merged into the outstanding miss.
                done = line.ready
                if not is_prefetch:
                    if line.prefetched:
                        stats.late_prefetch_hits += 1
                    else:
                        stats.mshr_merges += 1
            if not is_prefetch:
                stats.hits += 1
                if line.prefetched:
                    stats.prefetch_hits += 1
                    line.prefetched = False
            if self._lru:
                # Inlined LRUPolicy.on_hit: move to the recency tail.
                entries[line_addr] = entries.pop(line_addr)
            else:
                self.policy.on_hit(entries, line_addr)
            if is_write:
                line.dirty = True
            if not self._no_prefetch:
                self._maybe_prefetch(line_addr, pc, True, done, not is_prefetch)
            return done

        # ------------------------------------------------------ miss path
        tag_done = start + self._tag_time

        if self.victim is not None and self.victim.probe(line_addr):
            if not is_prefetch:
                stats.hits += 1
                stats.victim_hits += 1
            done = tag_done + self.hit_latency  # swap takes an extra access
            self._fill(line_addr, done, is_write, False)
            if not self._no_prefetch:
                self._maybe_prefetch(line_addr, pc, True, done, not is_prefetch)
            return done

        if not is_prefetch:
            stats.misses += 1

        inflight = self.mshrs.lookup(line_addr, tag_done)
        if inflight >= 0:
            if not is_prefetch:
                stats.mshr_merges += 1
            if is_write:
                self._fill(line_addr, inflight, True, False)
            return max(tag_done, inflight)

        issue = self.mshrs.allocate(line_addr, tag_done)
        if self.next_level is not None:
            done = self.next_level.access_line(line_addr, issue, False, is_prefetch)
        else:
            done = issue  # no backing level configured (unit tests)
        self.mshrs.record(line_addr, done)
        self._fill(line_addr, done, is_write, is_prefetch)
        if not self._no_prefetch:
            self._maybe_prefetch(line_addr, pc, False, tag_done, not is_prefetch)
        return done

    def _maybe_prefetch(self, line_addr: int, pc: int, hit: bool, now: int, is_demand: bool) -> None:
        if not is_demand:
            return
        candidates = self.prefetcher.observe(line_addr, pc, hit)
        if not candidates:
            return
        for pf_addr in candidates:
            if pf_addr < 0:
                continue
            pf_set = self._sets[self._index(pf_addr)]
            if pf_set is not None and pf_addr in pf_set:
                continue
            if self.mshrs.lookup(pf_addr, now) >= 0:
                continue
            if self.mshrs.outstanding >= self.mshrs.entries:
                break  # never stall demand traffic for prefetches
            self.stats.prefetches_issued += 1
            if self.next_level is not None:
                done = self.next_level.access_line(pf_addr, now, False, True)
            else:
                done = now
            self.mshrs.record(pf_addr, done)
            self._fill(pf_addr, done, dirty=False, prefetched=True)

    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """Tag-array probe without timing side effects (for tests)."""
        entries = self._sets[self.hash.index(line_addr)]
        return entries is not None and line_addr in entries

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets if s is not None)

    def reset(self) -> None:
        self._sets = [None] * self.n_sets
        self._port_free = [0] * self.ports
        self.mshrs.reset()
        self.policy.reset()
        self.prefetcher.reset()
        if self.victim is not None:
            self.victim.reset()
        self.stats = CacheStats()
        # Rebind the fast path to the fresh stats/sets/ports objects.
        self._install_access_path()
