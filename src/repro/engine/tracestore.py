"""Memoising trace store.

The paper's SIFT workflow records each workload once and replays the
trace for every candidate configuration. The :class:`TraceStore` is that
recording step made explicit and shared: every layer (tuning, validation,
CLI, sweeps) asks the store, and the store builds each trace at most once
per ``(workload, scale, overrides)`` — the telemetry counters prove it.

With a ``cache_dir`` the store additionally persists each trace's
*columnar* form (:mod:`repro.trace.columnar`) as a content-addressed
binary blob on disk and memory-maps it back on request. That turns
"once per engine" into "once per host": recording a trace costs ~3x its
simulation time, and every fabric worker on a host used to pay it
independently — with the blob cache the first worker records and
persists, every other worker attaches the same pages in microseconds.
"""

from __future__ import annotations

import hashlib
import mmap
import os

from repro.engine.keys import trace_key
from repro.isa.decoder import decoder_library


class TraceStore:
    """Builds and memoises workload traces for one engine.

    Parameters
    ----------
    workloads:
        The :class:`~repro.workloads.base.Workload` objects this store
        can record.
    scale:
        Default trace scale (1.0 = the workload's nominal length).
    cache_dir:
        Optional directory for persisted columnar blobs. ``None`` keeps
        everything in-process (the default for plain engines); fabric
        workers point every engine at one directory next to the store
        file so traces are recorded once per host, not once per worker.
    """

    def __init__(self, workloads, scale: float = 1.0, cache_dir: str = None) -> None:
        self._by_name = {wl.name: wl for wl in workloads}
        self.scale = scale
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self._traces: dict = {}
        self._columns: dict = {}
        #: Number of traces actually recorded (cache misses).
        self.builds = 0
        #: Number of store lookups served from the cache.
        self.hits = 0
        #: Columnar blobs attached from the on-disk cache (recordings
        #: this process skipped because another process already paid).
        self.column_attaches = 0
        #: Columnar blobs this process recorded and persisted.
        self.column_persists = 0

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def workload(self, name: str):
        """The registered :class:`~repro.workloads.base.Workload`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown workload {name!r} in this trace store") from None

    def names(self) -> list:
        """Every workload name this store can record."""
        return list(self._by_name)

    def key(self, name: str, overrides: dict = None, scale: float = None) -> tuple:
        """The content-addressed trace key (see :func:`~repro.engine.keys.trace_key`)."""
        return trace_key(name, self.scale if scale is None else scale, overrides or {})

    def get(self, name: str, overrides: dict = None, scale: float = None):
        """The trace of ``name`` at ``scale`` with kwargs ``overrides``.

        Recorded on first request, replayed from the cache afterwards.
        """
        key = self.key(name, overrides, scale)
        cached = self._traces.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        wl = self.workload(name)
        use_scale = self.scale if scale is None else scale
        trace = wl.trace(scale=use_scale, **(overrides or {}))
        self._traces[key] = trace
        self.builds += 1
        return trace

    def items(self):
        """``(trace_key, trace)`` pairs for every memoised recording."""
        return self._traces.items()

    # ------------------------------------------------------------------
    # Columnar blob cache
    # ------------------------------------------------------------------
    def _blob_path(self, name: str, library: tuple, overrides: dict, scale: float) -> str:
        from repro.trace.columnar import BLOB_VERSION

        token = repr(("columnar", BLOB_VERSION, name, scale,
                      tuple(sorted((overrides or {}).items())), library))
        digest = hashlib.sha256(token.encode("utf-8")).hexdigest()
        return os.path.join(self.cache_dir, f"{digest}.rcol")

    def columns(self, name: str, decoder, overrides: dict = None, scale: float = None):
        """Columnar form of workload ``name`` for ``decoder``.

        Without a ``cache_dir`` this is ``columns_with`` on the memoised
        trace (built in-process, once per decoder library). With one,
        the blob file is the source of truth: an existing blob is
        memory-mapped and attached zero-copy — **no recording happens in
        this process** — while a missing blob is recorded, built and
        persisted atomically (write-to-temp + rename) so concurrent
        workers racing on the same key each publish a complete,
        byte-identical file. The returned object is trace-like and goes
        anywhere a recorded trace goes (see
        :class:`repro.trace.columnar.ColumnarTrace`).
        """
        if self.cache_dir is None:
            return self.get(name, overrides, scale).columns_with(decoder)
        from repro.trace.columnar import ColumnarTrace

        library = tuple(str(part) for part in decoder_library(decoder))
        use_scale = self.scale if scale is None else scale
        memo_key = (self.key(name, overrides, scale), library)
        cached = self._columns.get(memo_key)
        if cached is not None:
            return cached
        path = self._blob_path(name, library, overrides, use_scale)
        if os.path.exists(path):
            with open(path, "rb") as fh:
                buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            cols = ColumnarTrace.from_blob(buf)
            self.column_attaches += 1
        else:
            cols = self.get(name, overrides, scale).columns_with(decoder)
            os.makedirs(self.cache_dir, exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                fh.write(cols.to_blob())
            os.replace(tmp, path)
            self.column_persists += 1
        self._columns[memo_key] = cols
        return cols
