"""Memoising trace store.

The paper's SIFT workflow records each workload once and replays the
trace for every candidate configuration. The :class:`TraceStore` is that
recording step made explicit and shared: every layer (tuning, validation,
CLI, sweeps) asks the store, and the store builds each trace at most once
per ``(workload, scale, overrides)`` — the telemetry counters prove it.
"""

from __future__ import annotations

from repro.engine.keys import trace_key


class TraceStore:
    """Builds and memoises workload traces for one engine.

    Parameters
    ----------
    workloads:
        The :class:`~repro.workloads.base.Workload` objects this store
        can record.
    scale:
        Default trace scale (1.0 = the workload's nominal length).
    """

    def __init__(self, workloads, scale: float = 1.0) -> None:
        self._by_name = {wl.name: wl for wl in workloads}
        self.scale = scale
        self._traces: dict = {}
        #: Number of traces actually recorded (cache misses).
        self.builds = 0
        #: Number of store lookups served from the cache.
        self.hits = 0

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def workload(self, name: str):
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown workload {name!r} in this trace store") from None

    def names(self) -> list:
        return list(self._by_name)

    def key(self, name: str, overrides: dict = None, scale: float = None) -> tuple:
        return trace_key(name, self.scale if scale is None else scale, overrides or {})

    def get(self, name: str, overrides: dict = None, scale: float = None):
        """The trace of ``name`` at ``scale`` with kwargs ``overrides``.

        Recorded on first request, replayed from the cache afterwards.
        """
        key = self.key(name, overrides, scale)
        cached = self._traces.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        wl = self.workload(name)
        use_scale = self.scale if scale is None else scale
        trace = wl.trace(scale=use_scale, **(overrides or {}))
        self._traces[key] = trace
        self.builds += 1
        return trace

    def items(self):
        return self._traces.items()
