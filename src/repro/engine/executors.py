"""Pluggable batch executors for the evaluation engine.

A batch is a list of *groups*, each group pairing one recorded trace
with the configurations to simulate on it. Two executors are provided:

- :class:`SerialExecutor` — runs everything in-process, in order;
- :class:`ProcessExecutor` — fans groups out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Simulation is pure — a run is fully determined by (config, trace,
decoder library) and the driver owns all randomness — so both executors
return bit-identical results; only wall-clock differs. The engine relies
on that to make ``jobs`` a pure throughput knob.

On fork-capable platforms the process executor avoids re-pickling traces
on every task: whenever the trace registry has grown it refreshes its
pool, first snapshotting the registry into a module global that the
forked workers inherit copy-on-write; tasks then carry only the trace
key. The engine records a batch's traces while grouping it — before the
executor runs — so steady-state batches (the tuning loop) reuse one
pool and send keys only. On spawn platforms the snapshot never reaches
the workers, so the pool is created once and traces ship inline.
"""

from __future__ import annotations

import itertools
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.isa.decoder import decoder_library
from repro.simulator.simulator import SnipeSim

#: Per-executor trace snapshots inherited by forked workers.
_TRACE_SNAPSHOTS: dict = {}

_executor_ids = itertools.count(1)


def _simulate_chunk(payload):
    """Worker entry point: simulate one chunk of configs on one trace."""
    configs, snapshot_token, key, trace, decoder_cls = payload
    if trace is None:
        trace = _TRACE_SNAPSHOTS[snapshot_token][key]
    decoder = decoder_cls()
    return [SnipeSim(config, decoder=decoder).run(trace) for config in configs]


class SerialExecutor:
    """In-process, in-order execution (the ``jobs=1`` path)."""

    name = "serial"
    jobs = 1

    def run(self, groups, decoder, registry_items=None) -> list:
        out = []
        for configs, _key, trace in groups:
            out.append([SnipeSim(config, decoder=decoder).run(trace) for config in configs])
        return out

    def close(self) -> None:
        pass


class ProcessExecutor:
    """Parallel execution over a process pool (the ``jobs>1`` path)."""

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self._pool = None
        self._token = next(_executor_ids)
        self._snapshot_keys: frozenset = frozenset()
        try:
            self._ctx = multiprocessing.get_context("fork")
            self._fork = True
        except ValueError:
            self._ctx = multiprocessing.get_context()
            self._fork = False

    # ------------------------------------------------------------------
    def _ensure_pool(self, registry_items) -> None:
        """(Re)create the pool when new traces appeared since the snapshot.

        The snapshot global must be updated *before* the pool exists:
        workers fork lazily at first submit and inherit whatever the
        module global holds at that moment.
        """
        if self._pool is not None:
            if not self._fork:
                return  # workers never see the snapshot; nothing to refresh
            if frozenset(dict(registry_items or [])) == self._snapshot_keys:
                return
        registry = dict(registry_items or [])
        self.close()
        if self._fork:
            _TRACE_SNAPSHOTS[self._token] = registry
        self._snapshot_keys = frozenset(registry)
        self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=self._ctx)

    def _chunks(self, configs: list) -> list:
        n = min(self.jobs, len(configs))
        base, extra = divmod(len(configs), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            out.append(configs[start:start + size])
            start += size
        return out

    def run(self, groups, decoder, registry_items=None) -> list:
        self._ensure_pool(registry_items)
        decoder_cls = type(decoder)
        # Workers rebuild the decoder as decoder_cls(); prove parent-side
        # that this reproduces the same library, so a stateful/parameterised
        # decoder fails loudly here instead of silently diverging from the
        # serial path.
        try:
            reconstructible = decoder_library(decoder_cls()) == decoder_library(decoder)
        except TypeError:
            reconstructible = False
        if not reconstructible:
            raise ValueError(
                f"{decoder_cls.__name__} is not reconstructible as "
                f"{decoder_cls.__name__}(); the process executor needs "
                "stateless per-class decoders — use jobs=1"
            )
        futures = []  # (group_index, future)
        for gi, (configs, key, trace) in enumerate(groups):
            in_snapshot = self._fork and key in self._snapshot_keys
            ship = None if in_snapshot else trace
            for chunk in self._chunks(list(configs)):
                payload = (chunk, self._token, key, ship, decoder_cls)
                futures.append((gi, self._pool.submit(_simulate_chunk, payload)))
        out = [[] for _ in groups]
        # Collect in submission order: deterministic regardless of which
        # worker finishes first.
        for gi, future in futures:
            out[gi].extend(future.result())
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Unpin the snapshot traces; _ensure_pool re-registers on reuse.
        _TRACE_SNAPSHOTS.pop(self._token, None)

    def __del__(self):  # best-effort; engines call close() explicitly
        try:
            self.close()
        except Exception:
            pass


def make_executor(jobs: int = 1, kind: str = None):
    """Executor factory: ``kind`` overrides the jobs-derived default."""
    if kind is None:
        kind = "serial" if jobs <= 1 else "process"
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(jobs)  # raises for jobs < 2
    raise ValueError(f"unknown executor kind {kind!r}; use 'serial' or 'process'")
